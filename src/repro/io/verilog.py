"""Structural Verilog reader/writer for mapped and unmapped netlists.

Mapped gates become cell instances (pins ``a, b, ... -> o``, matching
the built-in genlib convention); unmapped gates become Verilog primitive
instantiations (``and``, ``nand``, ``xor``, ``not``, ...).  The reader
accepts the same structural subset the writer emits — primitive and
cell instances, constant/ternary/AOI-form ``assign`` statements, and
escaped identifiers — so netlists round-trip and the optimization
service can accept Verilog submissions alongside BLIF/.bench.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist

_PRIMITIVE: Dict[str, str] = {
    "AND": "and", "NAND": "nand", "OR": "or", "NOR": "nor",
    "XOR": "xor", "XNOR": "xnor", "INV": "not", "BUF": "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped identifier when necessary)."""
    if _ID_RE.match(name):
        return name
    return "\\" + name + " "


class VerilogError(Exception):
    """The netlist contains something inexpressible (for the chosen
    mode)."""


def write_verilog(
    net: Netlist,
    mapped: bool = False,
    library: Optional[TechLibrary] = None,
    module_name: Optional[str] = None,
) -> str:
    """Serialize the netlist as a structural Verilog module."""
    name = module_name or re.sub(r"[^A-Za-z0-9_]", "_", net.name) or "top"
    pis = [_escape(p) for p in net.pis]
    pos = []
    po_nets: List[str] = []
    for idx, po in enumerate(net.pos):
        pos.append(f"po{idx}")
        po_nets.append(po)
    lines = [f"module {name} ("]
    ports = [f"  input  {p}" for p in pis] + [f"  output {p}" for p in pos]
    lines.append(",\n".join(ports))
    lines.append(");")
    wires = [
        _escape(sig) for sig in net.topo_order() if sig not in net.pis
    ]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    for k, out in enumerate(net.topo_order()):
        gate = net.gates[out]
        fname = gate.func.name
        ins = ", ".join(_escape(s) for s in gate.inputs)
        if mapped and gate.cell and library is not None \
                and gate.cell in library:
            conns = ", ".join(
                f".{pin}({_escape(sig)})"
                for pin, sig in zip("abcdefgh", gate.inputs)
            )
            lines.append(
                f"  {gate.cell} u{k} ({conns}, .o({_escape(out)}));"
            )
        elif fname in _PRIMITIVE:
            lines.append(
                f"  {_PRIMITIVE[fname]} u{k} ({_escape(out)}, {ins});"
            )
        elif fname == "CONST0":
            lines.append(f"  assign {_escape(out)} = 1'b0;")
        elif fname == "CONST1":
            lines.append(f"  assign {_escape(out)} = 1'b1;")
        elif fname == "MUX21":
            a, b, s = (_escape(x) for x in gate.inputs)
            lines.append(
                f"  assign {_escape(out)} = {s} ? {b} : {a};"
            )
        elif fname in ("AOI21", "OAI21", "AOI22", "OAI22", "MAJ3",
                       "ANDN", "ORN"):
            lines.append(
                f"  assign {_escape(out)} = {_complex_expr(fname, gate)};"
            )
        else:
            raise VerilogError(f"gate {out!r}: no Verilog form for {fname}")
    for idx, po in enumerate(po_nets):
        lines.append(f"  assign po{idx} = {_escape(po)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _complex_expr(fname: str, gate) -> str:
    ins = [_escape(s) for s in gate.inputs]
    if fname == "AOI21":
        return f"~(({ins[0]} & {ins[1]}) | {ins[2]})"
    if fname == "OAI21":
        return f"~(({ins[0]} | {ins[1]}) & {ins[2]})"
    if fname == "AOI22":
        return (f"~(({ins[0]} & {ins[1]}) | ({ins[2]} & {ins[3]}))")
    if fname == "OAI22":
        return (f"~(({ins[0]} | {ins[1]}) & ({ins[2]} | {ins[3]}))")
    if fname == "MAJ3":
        a, b, c = ins
        return f"(({a} & {b}) | ({a} & {c}) | ({b} & {c}))"
    if fname == "ANDN":
        return f"({ins[0]} & ~{ins[1]})"
    if fname == "ORN":
        return f"({ins[0]} | ~{ins[1]})"
    raise VerilogError(fname)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------

_PRIMITIVE_FUNC: Dict[str, str] = {v: k for k, v in _PRIMITIVE.items()}

_TOKEN_RE = re.compile(
    r"""\\(?P<esc>\S+)\s?        # escaped identifier
      | (?P<num>1'b[01])         # constant literal
      | (?P<id>[A-Za-z_][A-Za-z0-9_$]*)
      | (?P<sym>[().,;=?:~&|])
      | (?P<ws>\s+)
      | (?P<bad>.)
    """,
    re.VERBOSE,
)

# assign-expression templates for the complex gate functions, as token
# tuples; uppercase single letters are identifier placeholders and the
# tuple order is the gate's input order.
_EXPR_TEMPLATES: List[Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = [
    ("AOI21", ("~", "(", "(", "A", "&", "B", ")", "|", "C", ")"),
     ("A", "B", "C")),
    ("OAI21", ("~", "(", "(", "A", "|", "B", ")", "&", "C", ")"),
     ("A", "B", "C")),
    ("AOI22",
     ("~", "(", "(", "A", "&", "B", ")", "|",
      "(", "C", "&", "D", ")", ")"),
     ("A", "B", "C", "D")),
    ("OAI22",
     ("~", "(", "(", "A", "|", "B", ")", "&",
      "(", "C", "|", "D", ")", ")"),
     ("A", "B", "C", "D")),
    ("MAJ3",
     ("(", "(", "A", "&", "B", ")", "|", "(", "A", "&", "C", ")",
      "|", "(", "B", "&", "C", ")", ")"),
     ("A", "B", "C")),
    ("ANDN", ("(", "A", "&", "~", "B", ")"), ("A", "B")),
    ("ORN", ("(", "A", "|", "~", "B", ")"), ("A", "B")),
    # MUX21: writer emits "s ? b : a" for inputs (d0=a, d1=b, s).
    ("MUX21", ("S", "?", "B", ":", "A"), ("A", "B", "S")),
]

_PLACEHOLDER = frozenset("ABCDS")

_GATE_PINS = "abcdefgh"


def _tokenize(text: str) -> List[Tuple[str, str]]:
    """``(kind, value)`` tokens; kind is ``id``/``num``/``sym``.

    Escaped identifiers (``\\name ``) become plain ``id`` tokens whose
    value is the unescaped name, so downstream matching is uniform.
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    out: List[Tuple[str, str]] = []
    for m in _TOKEN_RE.finditer(text):
        if m.lastgroup == "ws":
            continue
        if m.lastgroup == "bad":
            raise VerilogError(
                f"unexpected character {m.group()!r} in Verilog input")
        if m.lastgroup == "esc":
            out.append(("id", m.group("esc")))
        else:
            out.append((m.lastgroup or "", m.group()))
    return out


def _match_expr(tokens: Sequence[Tuple[str, str]]):
    """Match an assign RHS against the writer's expression templates.

    Returns ``(func_name, input_signals)`` or ``None``.
    """
    for fname, template, order in _EXPR_TEMPLATES:
        if len(tokens) != len(template):
            continue
        binding: Dict[str, str] = {}
        ok = True
        for (kind, value), want in zip(tokens, template):
            if want in _PLACEHOLDER:
                if kind != "id":
                    ok = False
                    break
                if want in binding:
                    if binding[want] != value:  # MAJ3 repeats A/B/C
                        ok = False
                        break
                else:
                    binding[want] = value
            elif kind != "sym" or value != want:
                ok = False
                break
        if ok:
            return fname, [binding[p] for p in order]
    return None


class _TokenStream:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._toks = tokens
        self._pos = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._toks):
            return self._toks[self._pos]
        return None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise VerilogError("unexpected end of Verilog input")
        self._pos += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise VerilogError(
                f"expected {value or kind!r}, got {v!r}")
        return v

    def until(self, sym: str) -> List[Tuple[str, str]]:
        """Consume tokens up to (and including) the symbol ``sym`` at
        paren depth zero; the terminator itself is not returned."""
        out: List[Tuple[str, str]] = []
        depth = 0
        while True:
            k, v = self.next()
            if k == "sym" and v == sym and depth == 0:
                return out
            if k == "sym" and v == "(":
                depth += 1
            elif k == "sym" and v == ")":
                depth -= 1
            out.append((k, v))


def parse_verilog(
    text: str,
    library: Optional[TechLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Parse the structural Verilog subset :func:`write_verilog` emits.

    Handles primitive instantiations, named-pin cell instances (looked
    up in ``library``), constant/alias/ternary/AOI-form ``assign``
    statements, and escaped identifiers.  Output-port aliases
    (``assign poN = sig;``) are folded back into the PO list, so a
    written-then-parsed netlist keeps its original PO signals.
    """
    ts = _TokenStream(_tokenize(text))
    ts.expect("id", "module")
    module = ts.next()[1]
    net = Netlist(name or module)

    outputs: List[str] = []
    ts.expect("sym", "(")
    while True:
        kind, value = ts.next()
        if kind == "sym" and value == ")":
            break
        if kind == "sym" and value == ",":
            continue
        if kind != "id" or value not in ("input", "output"):
            raise VerilogError(f"bad port declaration near {value!r}")
        port = ts.next()
        if port[0] != "id":
            raise VerilogError(f"bad port name {port[1]!r}")
        if value == "input":
            net.add_pi(port[1])
        else:
            outputs.append(port[1])
    ts.expect("sym", ";")

    aliases: Dict[str, str] = {}
    counter = 0
    while True:
        kind, value = ts.next()
        if kind == "id" and value == "endmodule":
            break
        if kind == "id" and value == "wire":
            ts.until(";")
            continue
        if kind == "id" and value == "assign":
            lhs = ts.next()
            if lhs[0] != "id":
                raise VerilogError(f"bad assign target {lhs[1]!r}")
            ts.expect("sym", "=")
            rhs = ts.until(";")
            _read_assign(net, lhs[1], rhs, aliases)
            continue
        if kind != "id":
            raise VerilogError(f"unexpected token {value!r}")
        counter += 1
        _read_instance(net, value, ts, library)

    pos = [aliases.get(p, p) for p in outputs]
    net.set_pos(pos)
    return net


def _read_assign(
    net: Netlist,
    out: str,
    rhs: Sequence[Tuple[str, str]],
    aliases: Dict[str, str],
) -> None:
    if len(rhs) == 1:
        kind, value = rhs[0]
        if kind == "num":
            net.add_gate(out, "CONST0" if value == "1'b0" else "CONST1",
                         [])
            return
        if kind == "id":
            # Writer-style PO alias (assign poN = sig) — resolve the
            # port back to its driving signal rather than adding a BUF.
            aliases[out] = value
            return
        raise VerilogError(f"bad assign RHS near {value!r}")
    matched = _match_expr(rhs)
    if matched is None:
        raise VerilogError(
            f"unrecognized assign expression for {out!r}")
    fname, inputs = matched
    net.add_gate(out, fname, inputs)


def _read_instance(
    net: Netlist,
    head: str,
    ts: _TokenStream,
    library: Optional[TechLibrary],
) -> None:
    inst = ts.next()
    if inst[0] == "sym" and inst[1] == "(":
        # Anonymous instance: "and (out, a, b);" — tolerated.
        pass
    else:
        if inst[0] != "id":
            raise VerilogError(f"bad instance name {inst[1]!r}")
        ts.expect("sym", "(")
    body = ts.until(")")
    ts.expect("sym", ";")

    if body and body[0] == ("sym", "."):
        # Named-pin mapped cell: .a(x), .b(y), .o(out)
        if library is None or head not in library:
            raise VerilogError(
                f"cell {head!r} not in the provided library")
        cell = library[head]
        conns: Dict[str, str] = {}
        i = 0
        while i < len(body):
            if body[i] == ("sym", ","):
                i += 1
                continue
            if body[i] != ("sym", ".") or i + 4 > len(body):
                raise VerilogError(
                    f"bad pin connection in instance of {head!r}")
            pin = body[i + 1]
            if pin[0] != "id" or body[i + 2] != ("sym", "("):
                raise VerilogError(
                    f"bad pin connection in instance of {head!r}")
            sig = body[i + 3]
            if sig[0] != "id" or body[i + 4] != ("sym", ")"):
                raise VerilogError(
                    f"bad pin connection in instance of {head!r}")
            conns[pin[1]] = sig[1]
            i += 5
        out_pin = next(
            (p for p in ("o", "O", "out", "Y", "y") if p in conns), None)
        if out_pin is None:
            raise VerilogError(
                f"instance of {head!r} has no output pin")
        pins = _GATE_PINS[: cell.nin]
        missing = [p for p in pins if p not in conns]
        if missing:
            raise VerilogError(
                f"instance of {head!r} missing pins {missing}")
        net.add_gate(conns[out_pin], cell.func,
                     [conns[p] for p in pins], cell=cell.name)
        return

    # Positional primitive: "and u0 (out, a, b);"
    func = _PRIMITIVE_FUNC.get(head)
    if func is None:
        raise VerilogError(f"unknown primitive or cell {head!r}")
    signals = [v for k, v in body if k == "id"]
    expected = sum(1 for t in body if t != ("sym", ","))
    if len(signals) != expected or not signals:
        raise VerilogError(f"bad operand list for {head!r}")
    net.add_gate(signals[0], func, signals[1:])


def load_verilog(
    path: str,
    library: Optional[TechLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Read a structural Verilog file (the writer's subset)."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_verilog(fh.read(), library=library, name=name)
