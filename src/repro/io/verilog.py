"""Structural Verilog writer for mapped and unmapped netlists.

Mapped gates become cell instances (pins ``a, b, ... -> o``, matching
the built-in genlib convention); unmapped gates become Verilog primitive
instantiations (``and``, ``nand``, ``xor``, ``not``, ...).  There is no
reader — BLIF/.bench are the interchange formats; the writer exists so
optimized netlists can flow into downstream tools.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist

_PRIMITIVE: Dict[str, str] = {
    "AND": "and", "NAND": "nand", "OR": "or", "NOR": "nor",
    "XOR": "xor", "XNOR": "xnor", "INV": "not", "BUF": "buf",
}

_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _escape(name: str) -> str:
    """Verilog-legal identifier (escaped identifier when necessary)."""
    if _ID_RE.match(name):
        return name
    return "\\" + name + " "


class VerilogError(Exception):
    """The netlist contains something inexpressible (for the chosen
    mode)."""


def write_verilog(
    net: Netlist,
    mapped: bool = False,
    library: Optional[TechLibrary] = None,
    module_name: Optional[str] = None,
) -> str:
    """Serialize the netlist as a structural Verilog module."""
    name = module_name or re.sub(r"[^A-Za-z0-9_]", "_", net.name) or "top"
    pis = [_escape(p) for p in net.pis]
    pos = []
    po_nets: List[str] = []
    for idx, po in enumerate(net.pos):
        pos.append(f"po{idx}")
        po_nets.append(po)
    lines = [f"module {name} ("]
    ports = [f"  input  {p}" for p in pis] + [f"  output {p}" for p in pos]
    lines.append(",\n".join(ports))
    lines.append(");")
    wires = [
        _escape(sig) for sig in net.topo_order() if sig not in net.pis
    ]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    for k, out in enumerate(net.topo_order()):
        gate = net.gates[out]
        fname = gate.func.name
        ins = ", ".join(_escape(s) for s in gate.inputs)
        if mapped and gate.cell and library is not None \
                and gate.cell in library:
            conns = ", ".join(
                f".{pin}({_escape(sig)})"
                for pin, sig in zip("abcdefgh", gate.inputs)
            )
            lines.append(
                f"  {gate.cell} u{k} ({conns}, .o({_escape(out)}));"
            )
        elif fname in _PRIMITIVE:
            lines.append(
                f"  {_PRIMITIVE[fname]} u{k} ({_escape(out)}, {ins});"
            )
        elif fname == "CONST0":
            lines.append(f"  assign {_escape(out)} = 1'b0;")
        elif fname == "CONST1":
            lines.append(f"  assign {_escape(out)} = 1'b1;")
        elif fname == "MUX21":
            a, b, s = (_escape(x) for x in gate.inputs)
            lines.append(
                f"  assign {_escape(out)} = {s} ? {b} : {a};"
            )
        elif fname in ("AOI21", "OAI21", "AOI22", "OAI22", "MAJ3",
                       "ANDN", "ORN"):
            lines.append(
                f"  assign {_escape(out)} = {_complex_expr(fname, gate)};"
            )
        else:
            raise VerilogError(f"gate {out!r}: no Verilog form for {fname}")
    for idx, po in enumerate(po_nets):
        lines.append(f"  assign po{idx} = {_escape(po)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _complex_expr(fname: str, gate) -> str:
    ins = [_escape(s) for s in gate.inputs]
    if fname == "AOI21":
        return f"~(({ins[0]} & {ins[1]}) | {ins[2]})"
    if fname == "OAI21":
        return f"~(({ins[0]} | {ins[1]}) & {ins[2]})"
    if fname == "AOI22":
        return (f"~(({ins[0]} & {ins[1]}) | ({ins[2]} & {ins[3]}))")
    if fname == "OAI22":
        return (f"~(({ins[0]} | {ins[1]}) & ({ins[2]} | {ins[3]}))")
    if fname == "MAJ3":
        a, b, c = ins
        return f"(({a} & {b}) | ({a} & {c}) | ({b} & {c}))"
    if fname == "ANDN":
        return f"({ins[0]} & ~{ins[1]})"
    if fname == "ORN":
        return f"({ins[0]} | ~{ins[1]})"
    raise VerilogError(fname)
