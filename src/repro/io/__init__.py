"""Netlist I/O: BLIF and ISCAS .bench formats."""

from .bench import BenchError, load_bench, parse_bench, write_bench
from .blif import BlifError, load_blif, parse_blif, write_blif
from .verilog import VerilogError, write_verilog

__all__ = [
    "BenchError", "load_bench", "parse_bench", "write_bench",
    "BlifError", "load_blif", "parse_blif", "write_blif",
    "VerilogError", "write_verilog",
]
