"""Netlist I/O: BLIF, ISCAS .bench, and structural Verilog.

:func:`parse_netlist` / :func:`load_netlist` are the format-dispatching
front door — the optimization service (``repro.service``) accepts job
payloads in any of the three formats through them.
"""

from __future__ import annotations

import os
from typing import Optional

from ..faults import fault, register_point
from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from .bench import BenchError, load_bench, parse_bench, write_bench
from .blif import BlifError, load_blif, parse_blif, write_blif
from .verilog import (
    VerilogError, load_verilog, parse_verilog, write_verilog,
)

#: fault point: the netlist source arrives truncated (torn read).  The
#: torn prefix is still fed to the parser — parsers must reject, not
#: mis-parse, torn input — and the read then fails with ``OSError`` so
#: the caller sees a transient I/O failure, never a silent wrong parse.
FP_PARSE_TRUNCATED = register_point(
    "io.parse.truncated",
    "netlist source text truncated mid-file before parsing "
    "(transient OSError after exercising the parser on the torn text)")

#: Formats understood by :func:`parse_netlist`, with the file
#: extensions :func:`load_netlist` maps onto them.
FORMATS = ("blif", "bench", "verilog")

_EXTENSIONS = {
    ".blif": "blif",
    ".bench": "bench",
    ".v": "verilog",
    ".verilog": "verilog",
}


class FormatError(Exception):
    """Unknown or undetectable netlist format."""


#: what a parser raises on malformed input — *permanent* failures (the
#: input will never parse), unlike I/O errors, which are transient.
#: The service's retry policy splits on exactly this tuple.
PARSE_ERRORS = (FormatError, BenchError, BlifError, VerilogError)


def format_from_path(path: str) -> str:
    """Infer a :data:`FORMATS` entry from a file extension."""
    ext = os.path.splitext(path)[1].lower()
    try:
        return _EXTENSIONS[ext]
    except KeyError:
        raise FormatError(
            f"cannot infer netlist format from {path!r} "
            f"(known extensions: {sorted(_EXTENSIONS)})"
        ) from None


def parse_netlist(
    text: str,
    fmt: str,
    library: Optional[TechLibrary] = None,
    name: Optional[str] = None,
) -> Netlist:
    """Parse netlist source text in the named format.

    ``library`` is consulted for mapped-cell constructs (BLIF ``.gate``
    lines, Verilog cell instances) and ignored by ``.bench``.
    """
    if fault(FP_PARSE_TRUNCATED):
        torn = text[:max(1, len(text) // 2)]
        try:
            _parse_dispatch(torn, fmt, library, name)
        except PARSE_ERRORS:
            pass  # torn input must reject cleanly, never mis-parse
        raise OSError("injected truncated netlist read")
    return _parse_dispatch(text, fmt, library, name)


def _parse_dispatch(
    text: str,
    fmt: str,
    library: Optional[TechLibrary],
    name: Optional[str],
) -> Netlist:
    if fmt == "blif":
        net = parse_blif(text, library=library)
        if name:
            net.name = name
        return net
    if fmt == "bench":
        return parse_bench(text, name=name or "bench")
    if fmt == "verilog":
        return parse_verilog(text, library=library, name=name)
    raise FormatError(f"unknown netlist format {fmt!r} "
                      f"(expected one of {FORMATS})")


def load_netlist(
    path: str,
    fmt: Optional[str] = None,
    library: Optional[TechLibrary] = None,
) -> Netlist:
    """Read a netlist file, inferring the format from the extension
    unless ``fmt`` is given."""
    fmt = fmt or format_from_path(path)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.splitext(os.path.basename(path))[0]
    return parse_netlist(text, fmt, library=library, name=base)


__all__ = [
    "BenchError", "load_bench", "parse_bench", "write_bench",
    "BlifError", "load_blif", "parse_blif", "write_blif",
    "VerilogError", "load_verilog", "parse_verilog", "write_verilog",
    "FormatError", "FORMATS", "PARSE_ERRORS", "format_from_path",
    "parse_netlist", "load_netlist",
]
