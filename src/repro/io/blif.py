"""Reader/writer for (a combinational subset of) the BLIF format.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(SOP covers), ``.gate`` (mapped cells from a supplied library), ``.end``,
line continuation with ``\\``, and comments.  Latches and hierarchy are
out of scope — the paper optimizes combinational netlists.

``.names`` covers are decomposed into primitive AND/OR/INV gates (one
AND per cube, an OR collecting the cubes), so any SOP is readable even
though netlist gates are primitives.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..library.cells import TechLibrary
from ..netlist.gatefunc import AND, BUF, CONST0, CONST1, INV, OR
from ..netlist.netlist import Netlist


class BlifError(Exception):
    """Malformed BLIF input."""


def parse_blif(text: str, library: Optional[TechLibrary] = None) -> Netlist:
    """Parse BLIF text into a :class:`Netlist`.

    ``library`` is required to resolve ``.gate`` lines; pin connections
    are given as ``pin=signal`` pairs with ``o``/``O``/last formula
    variable as the output pin.
    """
    net = Netlist("blif")
    lines = _logical_lines(text)
    idx = 0
    outputs: List[str] = []
    while idx < len(lines):
        tokens = lines[idx].split()
        idx += 1
        key = tokens[0]
        if key == ".model":
            net.name = tokens[1] if len(tokens) > 1 else "blif"
        elif key == ".inputs":
            for name in tokens[1:]:
                net.add_pi(name)
        elif key == ".outputs":
            outputs.extend(tokens[1:])
        elif key == ".names":
            idx = _parse_names(net, tokens[1:], lines, idx)
        elif key == ".gate":
            _parse_gate(net, tokens[1:], library)
        elif key == ".end":
            break
        elif key.startswith("."):
            raise BlifError(f"unsupported BLIF construct {key!r}")
        else:
            raise BlifError(f"unexpected line {lines[idx - 1]!r}")
    net.set_pos(outputs)
    net.validate()
    return net


def load_blif(path: str, library: Optional[TechLibrary] = None) -> Netlist:
    with open(path) as handle:
        return parse_blif(handle.read(), library=library)


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        lines.append((buffer + line).strip())
        buffer = ""
    if buffer.strip():
        lines.append(buffer.strip())
    return lines


def _parse_names(net: Netlist, signals: Sequence[str],
                 lines: List[str], idx: int) -> int:
    """Parse one ``.names`` block starting at ``lines[idx]``."""
    if not signals:
        raise BlifError(".names without signals")
    *ins, out = signals
    cubes: List[Tuple[str, str]] = []
    while idx < len(lines) and not lines[idx].startswith("."):
        parts = lines[idx].split()
        if len(ins) == 0:
            if len(parts) != 1:
                raise BlifError(f"bad constant cover line {lines[idx]!r}")
            cubes.append(("", parts[0]))
        else:
            if len(parts) != 2:
                raise BlifError(f"bad cover line {lines[idx]!r}")
            cubes.append((parts[0], parts[1]))
        idx += 1
    _build_sop(net, out, ins, cubes)
    return idx


def _build_sop(net: Netlist, out: str, ins: Sequence[str],
               cubes: List[Tuple[str, str]]) -> None:
    """Instantiate primitive gates computing the SOP cover."""
    if not cubes:
        net.add_gate(out, CONST0, [])
        return
    out_vals = {c[1] for c in cubes}
    if out_vals == {"0"}:
        # Offset cover: complement of the OR of the cubes.
        _build_sop_phase(net, out, ins, [c[0] for c in cubes], invert=True)
        return
    if out_vals != {"1"}:
        raise BlifError(f".names {out}: mixed cover polarities")
    _build_sop_phase(net, out, ins, [c[0] for c in cubes], invert=False)


def _build_sop_phase(net: Netlist, out: str, ins: Sequence[str],
                     masks: List[str], invert: bool) -> None:
    if not ins:
        value = 0 if invert else 1
        net.add_gate(out, CONST1 if value else CONST0, [])
        return
    terms: List[str] = []
    for mask in masks:
        if len(mask) != len(ins):
            raise BlifError(f".names {out}: cube width mismatch")
        lits: List[str] = []
        for sig, bit in zip(ins, mask):
            if bit == "-":
                continue
            if bit == "1":
                lits.append(sig)
            elif bit == "0":
                lits.append(_inverted(net, sig, hint=out))
            else:
                raise BlifError(f".names {out}: bad cube char {bit!r}")
        if not lits:
            # Tautological cube.
            terms = []
            net.add_gate(out, CONST0 if invert else CONST1, [])
            return
        if len(lits) == 1:
            terms.append(lits[0])
        else:
            terms.append(net.add_gate(net.fresh_name(f"{out}_c"), AND, lits))
    if len(terms) == 1:
        net.add_gate(out, INV if invert else BUF, [terms[0]])
    else:
        net.add_gate(out, "NOR" if invert else "OR", terms)


def _inverted(net: Netlist, signal: str, hint: str) -> str:
    for branch in net.fanouts(signal):
        gate = net.gates[branch.gate]
        if gate.func is INV:
            return gate.output
    return net.add_gate(net.fresh_name(f"{hint}_n"), INV, [signal])


def _parse_gate(net: Netlist, tokens: Sequence[str],
                library: Optional[TechLibrary]) -> None:
    if library is None:
        raise BlifError(".gate requires a technology library")
    if not tokens:
        raise BlifError(".gate without cell name")
    cellname = tokens[0]
    if cellname not in library:
        raise BlifError(f".gate references unknown cell {cellname!r}")
    cell = library[cellname]
    conns: Dict[str, str] = {}
    for pair in tokens[1:]:
        if "=" not in pair:
            raise BlifError(f"bad .gate connection {pair!r}")
        pin, sig = pair.split("=", 1)
        conns[pin] = sig
    out_pin = next((p for p in ("o", "O", "out", "Y", "y") if p in conns), None)
    if out_pin is None:
        raise BlifError(f".gate {cellname}: no output connection")
    pin_names = [p for p in _cell_pin_names(cell) if p in conns]
    if len(pin_names) != cell.nin:
        raise BlifError(f".gate {cellname}: expected {cell.nin} input pins")
    net.add_gate(conns[out_pin], cell.func,
                 [conns[p] for p in pin_names], cell=cell.name)


def _cell_pin_names(cell) -> List[str]:
    # Builtin-library convention: pins are named a, b, c, ...
    return list("abcdefgh"[: cell.nin])


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def write_blif(net: Netlist, mapped: bool = False,
               library: Optional[TechLibrary] = None) -> str:
    """Serialize a netlist to BLIF.

    With ``mapped=True`` gates bound to library cells are emitted as
    ``.gate`` lines (pins named a, b, c...); otherwise every gate becomes
    a ``.names`` cover derived from its truth table.
    """
    lines = [f".model {net.name}"]
    lines.append(".inputs " + " ".join(net.pis))
    lines.append(".outputs " + " ".join(net.pos))
    for out in net.topo_order():
        gate = net.gates[out]
        if mapped and gate.cell and library is not None and gate.cell in library:
            conns = " ".join(
                f"{pin}={sig}" for pin, sig in
                zip(_cell_pin_names(library[gate.cell]), gate.inputs)
            )
            lines.append(f".gate {gate.cell} {conns} o={out}")
        else:
            lines.append(".names " + " ".join(gate.inputs + [out]))
            lines.extend(_cover_lines(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _cover_lines(gate) -> List[str]:
    nin = gate.nin
    if nin == 0:
        return ["1"] if gate.func is CONST1 else []
    rows: List[str] = []
    table = gate.func.truth_table(nin)
    if gate.func.name in ("AND",):
        return ["1" * nin + " 1"]
    if gate.func.name in ("OR",):
        return [("-" * k + "1" + "-" * (nin - k - 1)) + " 1" for k in range(nin)]
    for row in range(1 << nin):
        if table[row]:
            mask = "".join("1" if (row >> k) & 1 else "0" for k in range(nin))
            rows.append(mask + " 1")
    return rows
