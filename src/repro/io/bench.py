"""Reader/writer for the ISCAS ``.bench`` netlist format.

The format used to distribute the ISCAS-85/89 benchmark suites::

    INPUT(a)
    OUTPUT(y)
    n1 = NAND(a, b)
    y  = NOT(n1)

Users holding the original benchmark files can load them directly and
run GDO on the real circuits; our test suites use generated equivalents
(see :mod:`repro.circuits`).
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..netlist.gatefunc import (
    AND, BUF, CONST0, CONST1, GateFunc, INV, NAND, NOR, OR, XNOR, XOR,
)
from ..netlist.netlist import Netlist, NetlistError

_FUNC_FROM_BENCH: Dict[str, GateFunc] = {
    "AND": AND, "NAND": NAND, "OR": OR, "NOR": NOR,
    "XOR": XOR, "XNOR": XNOR, "NOT": INV, "INV": INV,
    "BUF": BUF, "BUFF": BUF,
}

_BENCH_FROM_FUNC: Dict[str, str] = {
    "AND": "AND", "NAND": "NAND", "OR": "OR", "NOR": "NOR",
    "XOR": "XOR", "XNOR": "XNOR", "INV": "NOT", "BUF": "BUFF",
}

_LINE_RE = re.compile(
    r"^\s*(?:"
    r"(?P<io>INPUT|OUTPUT)\s*\(\s*(?P<io_name>[^)\s]+)\s*\)"
    r"|(?P<out>\S+)\s*=\s*(?P<func>[A-Za-z]+)\s*\(\s*(?P<args>[^)]*)\)"
    r")\s*$"
)


class BenchError(Exception):
    """Malformed .bench input."""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    XOR/XNOR gates with more than two inputs are expanded into binary
    trees, since the primitive functions are 2-input.
    """
    net = Netlist(name)
    outputs: List[str] = []
    pending: List[tuple] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise BenchError(f"line {lineno}: cannot parse {raw!r}")
        if match.group("io") == "INPUT":
            net.add_pi(match.group("io_name"))
        elif match.group("io") == "OUTPUT":
            outputs.append(match.group("io_name"))
        else:
            fname = match.group("func").upper()
            func = _FUNC_FROM_BENCH.get(fname)
            if func is None:
                raise BenchError(f"line {lineno}: unknown gate {fname!r}")
            args = [a.strip() for a in match.group("args").split(",") if a.strip()]
            pending.append((match.group("out"), func, args, lineno))
    for out, func, args, lineno in pending:
        try:
            if func in (XOR, XNOR) and len(args) > 2:
                _add_xor_tree(net, out, func, args)
            else:
                net.add_gate(out, func, args)
        except (NetlistError, ValueError) as exc:
            raise BenchError(f"line {lineno}: {exc}") from exc
    net.set_pos(outputs)
    try:
        net.validate()
    except NetlistError as exc:
        raise BenchError(str(exc)) from exc
    return net


def _add_xor_tree(net: Netlist, out: str, func: GateFunc, args: List[str]) -> None:
    acc = args[0]
    for sig in args[1:-1]:
        acc = net.add_gate(net.fresh_name(f"{out}_x"), XOR, [acc, sig])
    net.add_gate(out, func, [acc, args[-1]])


def load_bench(path: str) -> Netlist:
    with open(path) as handle:
        return parse_bench(handle.read(), name=path)


def write_bench(net: Netlist) -> str:
    """Serialize a netlist of bench-expressible gates to ``.bench`` text.

    Constants are expressed through a dummy input tied with AND/NAND
    self-loops being illegal, so CONST gates raise; complex cells (AOI,
    MUX, ...) also raise — decompose them first if needed.
    """
    lines: List[str] = [f"# {net.name}"]
    lines += [f"INPUT({pi})" for pi in net.pis]
    lines += [f"OUTPUT({po})" for po in net.pos]
    for out in net.topo_order():
        gate = net.gates[out]
        bench_name = _BENCH_FROM_FUNC.get(gate.func.name)
        if bench_name is None:
            raise BenchError(
                f"gate {out!r} ({gate.func.name}) not expressible in .bench"
            )
        lines.append(f"{out} = {bench_name}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"
