"""Incremental netlist editing primitives.

These are the low-level mutations on which the paper's transformations
(OS2/IS2/OS3/IS3, redundancy removal) are built.  All functions mutate
the netlist in place and keep it structurally valid; none of them checks
*permissibility* — that is the job of :mod:`repro.clauses` and
:mod:`repro.transform`.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Sequence, Set, Tuple

from .gatefunc import (
    AND, BUF, CONST0, CONST1, GateFunc, INV, NAND, NOR, OR, XNOR, XOR,
)
from .netlist import Branch, Gate, Netlist, NetlistError, constant_signal


def replace_input(net: Netlist, branch: Branch, new_signal: str) -> str:
    """Reconnect one gate input pin (a *branch* signal) to ``new_signal``.

    This is the structural move of an IS2/IS3 substitution.  Returns the
    signal previously connected.
    """
    gate = net.gate_of(branch.gate)
    if not (0 <= branch.pin < gate.nin):
        raise NetlistError(f"gate {branch.gate!r} has no pin {branch.pin}")
    if not net.has_signal(new_signal):
        raise NetlistError(f"signal {new_signal!r} does not exist")
    old = gate.inputs[branch.pin]
    gate.inputs[branch.pin] = new_signal
    net.invalidate()
    return old


def substitute_stem(net: Netlist, stem: str, new_signal: str) -> int:
    """Reconnect *every* reader of ``stem`` (gate pins and POs) to
    ``new_signal``.  This is the structural move of an OS2/OS3
    substitution; the freed logic is reclaimed with :func:`prune_dangling`.

    Returns the number of reconnected readers.
    """
    if not net.has_signal(new_signal):
        raise NetlistError(f"signal {new_signal!r} does not exist")
    if stem == new_signal:
        raise NetlistError("cannot substitute a signal by itself")
    count = 0
    for branch in list(net.fanouts(stem)):
        replace_input(net, branch, new_signal)
        count += 1
    for idx, po in enumerate(net.pos):
        if po == stem:
            net.pos[idx] = new_signal
            count += 1
    net.invalidate()
    return count


def insert_gate(
    net: Netlist,
    func: GateFunc | str,
    inputs: Sequence[str],
    cell: Optional[str] = None,
    hint: str = "g",
) -> str:
    """Create a new gate with a fresh output name and return that name."""
    name = net.fresh_name(hint)
    net.add_gate(name, func, inputs, cell=cell)
    return name


def insert_inverter(net: Netlist, signal: str, cell: Optional[str] = None) -> str:
    """Insert an inverter driven by ``signal``; returns the inverted signal."""
    return insert_gate(net, INV, [signal], cell=cell, hint="inv")


def find_inverted(net: Netlist, signal: str) -> Optional[str]:
    """Return an existing signal computing the complement of ``signal``.

    Only structural complements are recognized: an inverter driven by
    ``signal``, or — if ``signal`` is itself an inverter output — its
    input.  Used to realize phase assignments without adding gates.
    """
    for branch in net.fanouts(signal):
        gate = net.gate_of(branch.gate)
        if gate.func is INV:
            return gate.output
    if signal in net.gates and net.gates[signal].func is INV:
        return net.gates[signal].inputs[0]
    return None


def remove_gate(net: Netlist, signal: str) -> Gate:
    """Remove the driver of ``signal``; the signal must be unread."""
    if net.fanout_count(signal):
        raise NetlistError(f"signal {signal!r} still has fanout")
    gate = net.gates.pop(signal)
    net.invalidate()
    return gate


def prune_dangling(
    net: Netlist,
    roots: Optional[Sequence[str]] = None,
    fanout_basis: Optional[Tuple[dict, dict]] = None,
) -> List[Gate]:
    """Iteratively remove gates whose output is unread and not a PO.

    ``roots`` optionally seeds the worklist (signals whose fanout may
    have just disappeared); with ``None`` the whole netlist is swept.
    ``fanout_basis`` optionally supplies ``(fan_map, delta)`` — a fanout
    map of an earlier netlist state plus per-signal reader-count
    adjustments describing the edits since — so an in-place editor can
    avoid the O(netlist) fanout-map rebuild its own mutations forced.
    Returns the removed gates — their area is the reclamation gain of an
    output substitution (Fig. 3b of the paper).
    """
    removed: List[Gate] = []
    po_count = Counter(net.pos)
    if fanout_basis is None:
        fan, delta = net.fanout_map(), {}
    else:
        fan, delta = fanout_basis
    # Live reader counts, maintained locally so each removal is O(pins)
    # instead of invalidating and rebuilding the whole fanout map.
    counts: dict = {}

    def live_fanout(sig: str) -> int:
        c = counts.get(sig)
        if c is None:
            c = len(fan.get(sig, ())) + po_count[sig] + delta.get(sig, 0)
            counts[sig] = c
        return c

    if roots is None:
        work = [s for s in net.gates]
    else:
        work = [s for s in roots if s in net.gates]
    while work:
        batch, work = work, []
        for sig in batch:
            if sig not in net.gates or po_count[sig]:
                continue
            if live_fanout(sig) == 0:
                gate = net.gates.pop(sig)
                removed.append(gate)
                for s in gate.inputs:
                    counts[s] = live_fanout(s) - 1
                    if s in net.gates:
                        work.append(s)
    if removed:
        net.invalidate()
    return removed


def dirty_between(before: Netlist, after: Netlist) -> Tuple[Set[str], Set[str]]:
    """Describe the edit from ``before`` to ``after`` as dirty sets.

    Returns ``(dirty, removed)`` in the form the incremental engines
    (:meth:`repro.timing.incremental.IncrementalSta.refresh`,
    :meth:`repro.sim.bitsim.BitSimulator.incremental`) expect: ``dirty``
    holds every signal whose driving gate changed, every new signal, and
    every signal whose fanout set (gate pins or PO multiplicity)
    changed; ``removed`` every signal that disappeared.
    """
    dirty: Set[str] = set()
    removed: Set[str] = set()
    b_gates, a_gates = before.gates, after.gates
    for out, gate in a_gates.items():
        old = b_gates.get(out)
        if old is None:
            dirty.add(out)
            dirty.update(gate.inputs)
        elif old.func.name != gate.func.name or old.inputs != gate.inputs:
            dirty.add(out)
            dirty.update(gate.inputs)
            dirty.update(old.inputs)
    for out, gate in b_gates.items():
        if out not in a_gates:
            removed.add(out)
            dirty.update(gate.inputs)
    if before.pos != after.pos:
        delta = Counter(before.pos)
        delta.subtract(after.pos)
        dirty.update(s for s, k in delta.items() if k != 0)
    if before.pis != after.pis:
        dirty.update(set(before.pis) ^ set(after.pis))
        removed.update(
            s for s in set(before.pis) - set(after.pis)
            if not after.has_signal(s)
        )
    return {s for s in dirty if after.has_signal(s)}, removed


def would_create_cycle(net: Netlist, reader: str, new_input: str) -> bool:
    """True if connecting ``new_input`` into gate ``reader`` creates a cycle,
    i.e. ``reader`` lies in the transitive fanin of ``new_input``."""
    if new_input == reader:
        return True
    return reader in net.transitive_fanin(new_input, include_self=False)


_DROP_ON_0 = {AND.name, NAND.name}
_DROP_ON_1 = {OR.name, NOR.name}


def set_branch_constant(net: Netlist, branch: Branch, value: int) -> None:
    """Tie one gate input pin to a constant and simplify the gate.

    This realizes redundancy removal: a valid C1-clause ``(~Oa + a)``
    means the branch is stuck-at-1 redundant and may be tied to 1 (dually
    for stuck-at-0).  The gate is simplified in place; downstream
    constant propagation is the caller's concern (see
    :func:`repro.transform.redremoval.remove_redundancy`).
    """
    gate = net.gate_of(branch.gate)
    simplified = _simplify_with_constant(gate, branch.pin, value)
    if simplified is None:
        # No special rule — tie the pin to an explicit constant signal.
        const = constant_signal(net, value)
        gate.inputs[branch.pin] = const
    net.invalidate()


def _simplify_with_constant(gate: Gate, pin: int, value: int) -> Optional[bool]:
    """Try to simplify ``gate`` given input ``pin`` fixed to ``value``.

    Returns True when a simplification was applied, None when the gate
    type has no rule (caller ties the pin to a constant signal instead).
    """
    fname = gate.func.name
    if fname in ("AND", "NAND"):
        if value == 1:
            _drop_pin(gate, pin)
        else:
            _to_constant(gate, 0 if fname == "AND" else 1)
        return True
    if fname in ("OR", "NOR"):
        if value == 0:
            _drop_pin(gate, pin)
        else:
            _to_constant(gate, 1 if fname == "OR" else 0)
        return True
    if fname in ("XOR", "XNOR"):
        other = gate.inputs[1 - pin]
        want_buf = (fname == "XOR") == (value == 0)
        gate.inputs = [other]
        gate.func = BUF if want_buf else INV
        gate.cell = None
        return True
    if fname in ("BUF", "INV"):
        out_val = value if fname == "BUF" else 1 - value
        _to_constant(gate, out_val)
        return True
    return None


_EMPTY_VALUE = {"AND": 1, "NAND": 0, "OR": 0, "NOR": 1}


def _drop_pin(gate: Gate, pin: int) -> None:
    gate.inputs.pop(pin)
    gate.cell = None
    if not gate.inputs:
        # n-ary gate with all inputs dropped evaluates to its neutral value.
        _to_constant(gate, _EMPTY_VALUE[gate.func.name])
    elif len(gate.inputs) == 1:
        if gate.func.name in ("AND", "OR"):
            gate.func = BUF
        elif gate.func.name in ("NAND", "NOR"):
            gate.func = INV


def _to_constant(gate: Gate, value: int) -> None:
    gate.inputs = []
    gate.func = CONST1 if value else CONST0
    gate.cell = None


def propagate_constants(net: Netlist) -> int:
    """Fold constant gate outputs into their readers; returns #folds.

    Runs to fixpoint.  POs driven by constants keep an explicit constant
    gate.  Buffers created by simplification are also collapsed.
    """
    folds = 0
    changed = True
    while changed:
        changed = False
        for out in list(net.topo_order()):
            gate = net.gates.get(out)
            if gate is None:
                continue
            if gate.func in (CONST0, CONST1):
                value = 1 if gate.func is CONST1 else 0
                for branch in list(net.fanouts(out)):
                    reader = net.gates.get(branch.gate)
                    if reader is None or branch.pin >= reader.nin \
                            or reader.inputs[branch.pin] != out:
                        # Stale branch: an earlier simplification of this
                        # reader shifted its pins; retry on the next sweep.
                        changed = True
                        continue
                    if _simplify_with_constant(reader, branch.pin, value):
                        folds += 1
                        changed = True
                net.invalidate()
            elif gate.func is BUF:
                src = gate.inputs[0]
                if src != out and net.fanout_count(out) > 0:
                    substitute_stem(net, out, src)
                    folds += 1
                    changed = True
    prune_dangling(net)
    return folds


def structural_signature(net: Netlist) -> Tuple:
    """Hashable fingerprint of the netlist's observable structure.

    Two netlists compare equal under this signature iff they have the
    same PIs, POs, and gates (function, cell binding, and exact input
    wiring).  Caches (fanout map, topo order) and the fresh-name counter
    are deliberately excluded: a trial edit followed by its undo must
    round-trip to the *same* signature even though it churned both —
    the contract ``tests/analysis/test_edit_roundtrip.py`` asserts.
    """
    return (
        tuple(net.pis),
        tuple(net.pos),
        tuple(sorted(
            (out, g.func.name, g.cell, tuple(g.inputs))
            for out, g in net.gates.items()
        )),
    )
