"""Gate-level netlist data structure.

A :class:`Netlist` is a DAG of library-style gates.  Every gate drives a
single output signal and the gate is keyed by that signal name, so
"signal" and "gate output" are interchangeable.  Primary inputs are
signals without a driving gate.

Following the paper's terminology (Sec. 2):

* the *stem* of a signal is its driver output; a signal driving several
  fanout gates has one stem and several *branch* signals;
* a branch is identified here by the pair ``(sink gate output, pin)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .gatefunc import CONST0, CONST1, GateFunc, func_from_name


@dataclass(frozen=True)
class Branch:
    """One fanout branch of a signal: pin ``pin`` of gate ``gate``."""

    gate: str
    pin: int


@dataclass
class Gate:
    """A single gate: ``output = func(inputs)``.

    ``cell`` optionally names the technology-library cell implementing the
    function (set after mapping; ``None`` for unmapped logic gates).
    """

    output: str
    func: GateFunc
    inputs: List[str] = field(default_factory=list)
    cell: Optional[str] = None

    def __post_init__(self) -> None:
        self.func._check_arity(len(self.inputs))

    @property
    def nin(self) -> int:
        return len(self.inputs)

    def copy(self) -> "Gate":
        return Gate(self.output, self.func, list(self.inputs), self.cell)


class NetlistError(Exception):
    """Structural error in a netlist (cycle, dangling signal, ...)."""


class Netlist:
    """A combinational gate netlist.

    The class maintains derived structures (fanout map, topological
    order) lazily; any structural mutation must go through the editing
    API (or call :meth:`invalidate`) so caches stay consistent.
    """

    def __init__(self, name: str = "netlist"):
        self.name = name
        self.pis: List[str] = []
        self.pos: List[str] = []
        self.gates: Dict[str, Gate] = {}
        self._pi_set: Set[str] = set()
        self._fanouts: Optional[Dict[str, List[Branch]]] = None
        self._topo: Optional[List[str]] = None
        self._name_counter = 0
        # Monotonic structure version: bumped on every invalidate() and
        # by editing paths that patch/restore the derived caches without
        # invalidating (see repro.transform.substitution).  Flat-array
        # views (repro.flat) snapshot it to detect staleness.
        self._struct_version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> str:
        if name in self._pi_set or name in self.gates:
            raise NetlistError(f"signal {name!r} already exists")
        self.pis.append(name)
        self._pi_set.add(name)
        self.invalidate()
        return name

    def add_gate(
        self,
        output: str,
        func: GateFunc | str,
        inputs: Sequence[str],
        cell: Optional[str] = None,
    ) -> str:
        """Add a gate driving ``output``; inputs may be added before their
        drivers exist (checked in :meth:`validate`).

        Arity violations and self-loops are rejected here with a precise
        :class:`NetlistError` instead of surfacing later as an opaque
        cycle/arity failure in ``topo_order`` or simulation.
        """
        if isinstance(func, str):
            func = func_from_name(func)
        if output in self._pi_set or output in self.gates:
            raise NetlistError(f"signal {output!r} already exists")
        inputs = list(inputs)
        if output in inputs:
            raise NetlistError(
                f"gate {output!r} reads its own output "
                f"(combinational self-loop)"
            )
        try:
            gate = Gate(output, func, inputs, cell)
        except ValueError as exc:
            raise NetlistError(
                f"gate {output!r} ({func.name}): {exc}"
            ) from None
        self.gates[output] = gate
        self.invalidate()
        return output

    def set_pos(self, names: Iterable[str]) -> None:
        self.pos = list(names)
        self.invalidate()

    def add_po(self, name: str) -> None:
        self.pos.append(name)
        self.invalidate()

    def fresh_name(self, hint: str = "n") -> str:
        """Generate a signal name not present in the netlist."""
        while True:
            self._name_counter += 1
            name = f"{hint}_{self._name_counter}"
            if name not in self.gates and name not in self._pi_set:
                return name

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_pi(self, signal: str) -> bool:
        return signal in self._pi_set

    def is_po(self, signal: str) -> bool:
        return signal in self.pos

    def has_signal(self, signal: str) -> bool:
        return signal in self._pi_set or signal in self.gates

    def gate_of(self, signal: str) -> Gate:
        try:
            return self.gates[signal]
        except KeyError:
            raise NetlistError(f"signal {signal!r} has no driving gate") from None

    def signals(self) -> Iterator[str]:
        yield from self.pis
        yield from self.gates

    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_literals(self) -> int:
        """Literal count of the mapped netlist = total gate input pins."""
        return sum(g.nin for g in self.gates.values())

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop cached fanout map and topological order."""
        self._fanouts = None
        self._topo = None
        self._struct_version += 1

    def fanouts(self, signal: str) -> List[Branch]:
        return self.fanout_map().get(signal, [])

    def fanout_map(self) -> Dict[str, List[Branch]]:
        if self._fanouts is None:
            fan: Dict[str, List[Branch]] = {}
            for gate in self.gates.values():
                for pin, sig in enumerate(gate.inputs):
                    fan.setdefault(sig, []).append(Branch(gate.output, pin))
            self._fanouts = fan
        return self._fanouts

    def fanout_count(self, signal: str) -> int:
        """Number of gate pins driven, plus 1 if the signal is a PO."""
        return len(self.fanouts(signal)) + self.pos.count(signal)

    def topo_order(self) -> List[str]:
        """Gate outputs in topological order (PIs excluded)."""
        if self._topo is not None:
            return self._topo
        indeg: Dict[str, int] = {}
        for gate in self.gates.values():
            indeg[gate.output] = sum(
                1 for s in gate.inputs if s in self.gates
            )
        ready = deque(sorted(g for g, d in indeg.items() if d == 0))
        fan = self.fanout_map()
        order: List[str] = []
        while ready:
            sig = ready.popleft()
            order.append(sig)
            for branch in fan.get(sig, []):
                indeg[branch.gate] -= 1
                if indeg[branch.gate] == 0:
                    ready.append(branch.gate)
        if len(order) != len(self.gates):
            raise NetlistError("netlist contains a combinational cycle")
        self._topo = order
        return order

    def levels(self) -> Dict[str, int]:
        """Topological level of every signal (PIs are level 0)."""
        level: Dict[str, int] = {pi: 0 for pi in self.pis}
        for out in self.topo_order():
            gate = self.gates[out]
            level[out] = 1 + max(
                (level.get(s, 0) for s in gate.inputs), default=0
            )
        return level

    def depth(self) -> int:
        lv = self.levels()
        return max((lv[po] for po in self.pos if po in lv), default=0)

    # ------------------------------------------------------------------
    # cone traversals
    # ------------------------------------------------------------------
    def transitive_fanout(self, signal: str, include_self: bool = True) -> Set[str]:
        """All gate outputs reachable from ``signal`` (optionally itself)."""
        seen: Set[str] = set()
        stack = [b.gate for b in self.fanouts(signal)]
        while stack:
            sig = stack.pop()
            if sig in seen:
                continue
            seen.add(sig)
            stack.extend(b.gate for b in self.fanouts(sig))
        if include_self and not self.is_pi(signal):
            seen.add(signal)
        return seen

    def transitive_fanin(self, signal: str, include_self: bool = True) -> Set[str]:
        """All signals (including PIs) feeding ``signal``."""
        seen: Set[str] = set()
        stack = [signal] if include_self else list(
            self.gates[signal].inputs
        ) if signal in self.gates else []
        while stack:
            sig = stack.pop()
            if sig in seen:
                continue
            seen.add(sig)
            if sig in self.gates:
                stack.extend(self.gates[sig].inputs)
        return seen

    def support(self, signal: str) -> Set[str]:
        """Primary inputs in the transitive fanin of ``signal``."""
        return {s for s in self.transitive_fanin(signal) if self.is_pi(s)}

    # ------------------------------------------------------------------
    # housekeeping
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Netlist":
        dup = Netlist(name or self.name)
        dup.pis = list(self.pis)
        dup._pi_set = set(self._pi_set)
        dup.pos = list(self.pos)
        dup.gates = {k: g.copy() for k, g in self.gates.items()}
        dup._name_counter = self._name_counter
        return dup

    def validate(self) -> None:
        """Raise :class:`NetlistError` on any structural inconsistency."""
        for gate in self.gates.values():
            for sig in gate.inputs:
                if not self.has_signal(sig):
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven signal {sig!r}"
                    )
            gate.func._check_arity(gate.nin)
        for po in self.pos:
            if not self.has_signal(po):
                raise NetlistError(f"primary output {po!r} is undriven")
        self.topo_order()  # raises on cycles

    def stats(self) -> Dict[str, float]:
        return {
            "pis": len(self.pis),
            "pos": len(self.pos),
            "gates": self.num_gates,
            "literals": self.num_literals,
            "depth": self.depth(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, pis={len(self.pis)}, "
            f"pos={len(self.pos)}, gates={len(self.gates)})"
        )


def constant_signal(net: Netlist, value: int) -> str:
    """Return (creating if needed) a constant-0/1 signal in ``net``."""
    func = CONST1 if value else CONST0
    for gate in net.gates.values():
        if gate.func is func:
            return gate.output
    name = net.fresh_name("const1" if value else "const0")
    net.add_gate(name, func, [])
    return name
