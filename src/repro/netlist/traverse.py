"""Cone-oriented netlist traversals.

Helpers shared by the candidate filters (Sec. 4) and the gain
computations of the transformations (Sec. 5).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from .netlist import Netlist


def mffc(net: Netlist, signal: str) -> Set[str]:
    """Maximum fanout-free cone of ``signal``.

    The set of gate outputs (including ``signal`` itself) that become
    dangling if every reader of ``signal`` disappears — i.e. the logic
    reclaimed by an output substitution OS2/OS3 (Fig. 3b).  POs other
    than ``signal`` pin their drivers in place.
    """
    if net.is_pi(signal) or signal not in net.gates:
        return set()
    po_set = set(net.pos)
    cone: Set[str] = {signal}
    work = [s for s in net.gates[signal].inputs if s in net.gates]
    while work:
        sig = work.pop()
        if sig in cone or sig in po_set:
            continue
        branches = net.fanouts(sig)
        if all(b.gate in cone for b in branches):
            cone.add(sig)
            work.extend(s for s in net.gates[sig].inputs if s in net.gates)
    return cone


def cone_area(net: Netlist, cone: Set[str], area_of) -> float:
    """Total area of the gates in ``cone``; ``area_of(gate)`` supplies
    per-gate areas (see :meth:`repro.library.cells.TechLibrary.gate_area`)."""
    return sum(area_of(net.gates[s]) for s in cone if s in net.gates)


def extract_cone(
    net: Netlist, outputs: Sequence[str], name: str = "cone"
) -> Netlist:
    """Standalone netlist computing ``outputs`` from the PIs they depend on."""
    keep: Set[str] = set()
    for out in outputs:
        keep |= net.transitive_fanin(out)
    sub = Netlist(name)
    for pi in net.pis:
        if pi in keep:
            sub.add_pi(pi)
    for out in net.topo_order():
        if out in keep:
            gate = net.gates[out]
            sub.add_gate(out, gate.func, list(gate.inputs), cell=gate.cell)
    sub.set_pos(list(outputs))
    return sub


def structural_distance_ok(
    levels: Dict[str, int],
    a: str,
    b: str,
    max_skew: Optional[int],
) -> bool:
    """Structural filter of Sec. 4: candidate b/c-signals must be
    level-compatible with the a-signal (|level difference| bounded)."""
    if max_skew is None:
        return True
    return abs(levels.get(a, 0) - levels.get(b, 0)) <= max_skew


def gates_between(net: Netlist, src: str, dst: str) -> Set[str]:
    """Gate outputs lying on some path from ``src`` to ``dst``."""
    tfo = net.transitive_fanout(src, include_self=True)
    tfi = net.transitive_fanin(dst, include_self=True)
    return tfo & tfi
