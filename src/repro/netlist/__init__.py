"""Gate-level netlist substrate: data structure, editing, traversal."""

from .gatefunc import (
    ALL_FUNCS, AND, ANDN, AOI21, AOI22, BUF, CONST0, CONST1, FUNC_BY_NAME,
    GateFunc, INV, MAJ3, MUX21, NAND, NOR, OAI21, OAI22, OR, ORN,
    TwoInputForm, XNOR, XOR, func_from_name, two_input_forms,
)
from .netlist import Branch, Gate, Netlist, NetlistError, constant_signal
from .edit import (
    dirty_between, find_inverted, insert_gate, insert_inverter,
    propagate_constants, prune_dangling, remove_gate, replace_input,
    set_branch_constant, substitute_stem, would_create_cycle,
)
from .traverse import cone_area, extract_cone, gates_between, mffc

__all__ = [
    "ALL_FUNCS", "AND", "ANDN", "AOI21", "AOI22", "BUF", "CONST0", "CONST1",
    "FUNC_BY_NAME", "GateFunc", "INV", "MAJ3", "MUX21", "NAND", "NOR",
    "OAI21", "OAI22", "OR", "ORN", "TwoInputForm", "XNOR", "XOR",
    "func_from_name", "two_input_forms",
    "Branch", "Gate", "Netlist", "NetlistError", "constant_signal",
    "dirty_between", "find_inverted", "insert_gate", "insert_inverter",
    "propagate_constants", "prune_dangling", "remove_gate", "replace_input",
    "set_branch_constant", "substitute_stem", "would_create_cycle",
    "cone_area", "extract_cone", "gates_between", "mffc",
]
