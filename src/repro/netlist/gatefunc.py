"""Primitive logic functions for netlist gates.

Every gate in a :class:`~repro.netlist.netlist.Netlist` computes one of the
functions defined here.  A :class:`GateFunc` provides three views of the same
boolean function:

* ``eval_words`` — bit-parallel evaluation on numpy ``uint64`` words (the
  engine behind bit-parallel fault simulation, Sec. 4 of the paper),
* ``eval_bits`` — scalar evaluation on 0/1 integers (truth tables, PODEM),
* ``cnf`` — characteristic clauses relating output and input variables
  (the per-gate formulas of Sec. 2, after Larrabee).

Functions are singletons; compare them with ``is`` or by ``name``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

Clause = Tuple[int, ...]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class GateFunc:
    """A primitive combinational function of ``arity`` inputs.

    ``arity`` is ``None`` for n-ary functions (AND, OR, NAND, NOR) which
    accept any number of inputs >= 1.
    """

    def __init__(self, name: str, arity: int | None):
        self.name = name
        self.arity = arity

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GateFunc({self.name})"

    def __reduce__(self):
        # Gate functions are module-level singletons compared by
        # identity (FlatView.build asserts ``FUNC_BY_NAME[name] is
        # func``), so unpickling must resolve back to the singleton
        # instead of constructing a lookalike — this is what lets whole
        # netlists and flat region views cross process boundaries
        # (repro.partition's fork workers).
        return (func_from_name, (self.name,))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Evaluate bit-parallel on uint64 word arrays."""
        raise NotImplementedError

    def eval_bits(self, bits: Sequence[int]) -> int:
        """Evaluate on scalar 0/1 values."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # CNF characteristic formula
    # ------------------------------------------------------------------
    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        """Clauses that are satisfied iff ``out`` is consistent with inputs.

        Variables are encoded as positive integers; a negative literal
        denotes the complemented variable (DIMACS convention).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def truth_table(self, nin: int) -> List[int]:
        """Output column of the truth table for ``nin`` inputs.

        Row index ``i`` has input ``k`` equal to bit ``k`` of ``i``
        (input 0 is the least significant bit).
        """
        self._check_arity(nin)
        return [
            self.eval_bits([(row >> k) & 1 for k in range(nin)])
            for row in range(1 << nin)
        ]

    def _check_arity(self, nin: int) -> None:
        if self.arity is not None and nin != self.arity:
            raise ValueError(
                f"{self.name} expects {self.arity} inputs, got {nin}"
            )
        if self.arity is None and nin < 1:
            raise ValueError(f"{self.name} expects at least one input")


def _tt_cnf(func: GateFunc, out: int, ins: Sequence[int]) -> List[Clause]:
    """Generic truth-table CNF: one clause per input row.

    For each assignment of the inputs, add a clause forcing the output to
    the function value under that assignment.  Exponential in arity, used
    only for fixed small-arity functions (<= 4 inputs).
    """
    nin = len(ins)
    clauses: List[Clause] = []
    for row in range(1 << nin):
        bits = [(row >> k) & 1 for k in range(nin)]
        val = func.eval_bits(bits)
        # If inputs match this row, out must equal val:
        # (l1' + l2' + ... + out_lit) where li' opposes bit i.
        lits = [(-ins[k] if bits[k] else ins[k]) for k in range(nin)]
        lits.append(out if val else -out)
        clauses.append(tuple(lits))
    return clauses


class _Const(GateFunc):
    def __init__(self, name: str, value: int):
        super().__init__(name, 0)
        self.value = value

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        raise ValueError("constant gates are evaluated by the simulator")

    def eval_bits(self, bits: Sequence[int]) -> int:
        return self.value

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        return [(out,)] if self.value else [(-out,)]


class _Buf(GateFunc):
    def __init__(self) -> None:
        super().__init__("BUF", 1)

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return inputs[0].copy()

    def eval_bits(self, bits: Sequence[int]) -> int:
        return bits[0]

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        a = ins[0]
        return [(-out, a), (out, -a)]


class _Inv(GateFunc):
    def __init__(self) -> None:
        super().__init__("INV", 1)

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return ~inputs[0]

    def eval_bits(self, bits: Sequence[int]) -> int:
        return 1 - bits[0]

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        a = ins[0]
        return [(-out, -a), (out, a)]


class _And(GateFunc):
    def __init__(self, name: str = "AND", invert: bool = False):
        super().__init__(name, None)
        self.invert = invert

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc &= word
        return ~acc if self.invert else acc

    def eval_bits(self, bits: Sequence[int]) -> int:
        val = int(all(bits))
        return 1 - val if self.invert else val

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        o = -out if self.invert else out
        clauses: List[Clause] = [(-o, a) for a in ins]
        clauses.append(tuple([o] + [-a for a in ins]))
        return clauses


class _Or(GateFunc):
    def __init__(self, name: str = "OR", invert: bool = False):
        super().__init__(name, None)
        self.invert = invert

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        acc = inputs[0].copy()
        for word in inputs[1:]:
            acc |= word
        return ~acc if self.invert else acc

    def eval_bits(self, bits: Sequence[int]) -> int:
        val = int(any(bits))
        return 1 - val if self.invert else val

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        o = -out if self.invert else out
        clauses: List[Clause] = [(o, -a) for a in ins]
        clauses.append(tuple([-o] + list(ins)))
        return clauses


class _Xor(GateFunc):
    def __init__(self, name: str = "XOR", invert: bool = False):
        super().__init__(name, 2)
        self.invert = invert

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        acc = inputs[0] ^ inputs[1]
        return ~acc if self.invert else acc

    def eval_bits(self, bits: Sequence[int]) -> int:
        val = bits[0] ^ bits[1]
        return 1 - val if self.invert else val

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        return _tt_cnf(self, out, ins)


class _TableFunc(GateFunc):
    """Fixed-arity function defined by a python expression over bits."""

    def __init__(self, name: str, arity: int, fn):
        super().__init__(name, arity)
        self._fn = fn

    def eval_words(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return self._fn(*inputs)

    def eval_bits(self, bits: Sequence[int]) -> int:
        full = self._fn(*(np.uint64(_ALL_ONES if b else 0) for b in bits))
        return int(full & np.uint64(1))

    def cnf(self, out: int, ins: Sequence[int]) -> List[Clause]:
        return _tt_cnf(self, out, ins)


# ----------------------------------------------------------------------
# singletons
# ----------------------------------------------------------------------
CONST0 = _Const("CONST0", 0)
CONST1 = _Const("CONST1", 1)
BUF = _Buf()
INV = _Inv()
AND = _And("AND", invert=False)
NAND = _And("NAND", invert=True)
OR = _Or("OR", invert=False)
NOR = _Or("NOR", invert=True)
XOR = _Xor("XOR", invert=False)
XNOR = _Xor("XNOR", invert=True)

# AOI21(a, b, c)  = ~((a & b) | c)
AOI21 = _TableFunc("AOI21", 3, lambda a, b, c: ~((a & b) | c))
# OAI21(a, b, c)  = ~((a | b) & c)
OAI21 = _TableFunc("OAI21", 3, lambda a, b, c: ~((a | b) & c))
# AOI22(a, b, c, d) = ~((a & b) | (c & d))
AOI22 = _TableFunc("AOI22", 4, lambda a, b, c, d: ~((a & b) | (c & d)))
# OAI22(a, b, c, d) = ~((a | b) & (c | d))
OAI22 = _TableFunc("OAI22", 4, lambda a, b, c, d: ~((a | b) & (c | d)))
# MUX21(d0, d1, s) = d1 if s else d0
MUX21 = _TableFunc("MUX21", 3, lambda d0, d1, s: (d0 & ~s) | (d1 & s))
# MAJ3(a, b, c): carry function
MAJ3 = _TableFunc("MAJ3", 3, lambda a, b, c: (a & b) | (a & c) | (b & c))
# ANDN(a, b) = a & ~b   (phase-assigned AND used by OS3/IS3)
ANDN = _TableFunc("ANDN", 2, lambda a, b: a & ~b)
# ORN(a, b) = a | ~b
ORN = _TableFunc("ORN", 2, lambda a, b: a | ~b)

ALL_FUNCS: Tuple[GateFunc, ...] = (
    CONST0, CONST1, BUF, INV, AND, NAND, OR, NOR, XOR, XNOR,
    AOI21, OAI21, AOI22, OAI22, MUX21, MAJ3, ANDN, ORN,
)

FUNC_BY_NAME: Dict[str, GateFunc] = {f.name: f for f in ALL_FUNCS}


def func_from_name(name: str) -> GateFunc:
    """Look up a :class:`GateFunc` by its canonical name."""
    try:
        return FUNC_BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(f"unknown gate function {name!r}") from None


# ----------------------------------------------------------------------
# the 2-input function family used by OS3/IS3 (Sec. 3, Theorem 2)
# ----------------------------------------------------------------------
class TwoInputForm:
    """A 2-input gate type with a phase assignment to its inputs.

    ``base`` is one of AND, OR, XOR, XNOR and ``inv_b``/``inv_c`` record
    whether the b/c driving signals enter inverted.  XOR/XNOR phase
    assignments collapse (inverting one XOR input yields XNOR), so only
    the positive-phase XOR and XNOR forms are enumerated.
    """

    def __init__(self, base: GateFunc, inv_b: bool, inv_c: bool):
        self.base = base
        self.inv_b = inv_b
        self.inv_c = inv_c

    @property
    def name(self) -> str:
        tag_b = "~b" if self.inv_b else "b"
        tag_c = "~c" if self.inv_c else "c"
        return f"{self.base.name}({tag_b},{tag_c})"

    def eval_bits(self, b: int, c: int) -> int:
        if self.inv_b:
            b = 1 - b
        if self.inv_c:
            c = 1 - c
        return self.base.eval_bits([b, c])

    def eval_words(self, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        vb = ~b if self.inv_b else b
        vc = ~c if self.inv_c else c
        return self.base.eval_words([vb, vc])

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TwoInputForm({self.name})"


def two_input_forms(include_xor: bool = True) -> List[TwoInputForm]:
    """All phase-assigned AND/OR (and optionally XOR/XNOR) forms.

    These are the candidate functions for the new gate of an OS3/IS3
    substitution.  AND and OR each come with the four phase assignments of
    Theorem 2's extension; XOR and XNOR are phase-symmetric.
    """
    forms: List[TwoInputForm] = []
    for base in (AND, OR):
        for inv_b, inv_c in itertools.product((False, True), repeat=2):
            forms.append(TwoInputForm(base, inv_b, inv_c))
    if include_xor:
        forms.append(TwoInputForm(XOR, False, False))
        forms.append(TwoInputForm(XNOR, False, False))
    return forms
