"""Pluggable structural-invariant checker for :class:`Netlist`.

The checker validates the invariants the rest of the system silently
relies on — the DAG property, the hand-patched fanout map of in-place
trial edits, cached topological orders, library bindings — and reports
violations as structured :class:`Diagnostic` objects instead of
exploding later inside ``topo_order`` or the simulator.

Two modes:

* **full** (``scope=None``): every rule over the whole netlist, used by
  the lint CLI and by tests;
* **dirty-region** (``scope={signals}``): only facts touching the
  scoped signals are re-checked, O(|scope| * fanin-cone) instead of
  O(net), cheap enough to run after every trial edit, undo and commit
  (the ``GdoConfig.check`` hooks).

Rules never trust the caches they are checking: reader information is
recomputed from ``gate.inputs`` (the ground truth) wherever the cached
fanout map is itself under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import (
    Callable, Dict, Iterable, List, Optional, Set, Tuple, TypeVar,
)

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from .diagnostics import (
    ERROR, WARNING, Diagnostic, DiagnosticReport, InvariantViolation,
)


@dataclass(frozen=True)
class RuleSpec:
    """Catalog entry for one invariant rule."""

    id: str
    severity: str
    description: str
    scoped: bool  # participates in dirty-region mode


RULES: Dict[str, RuleSpec] = {}


_F = TypeVar("_F", bound=Callable[..., None])


def _rule(id: str, severity: str, description: str,
          scoped: bool = True) -> Callable[[_F], _F]:
    """Register a rule in the catalog; the decorated method is found by
    naming convention (``_check_<id>`` with dashes as underscores)."""
    RULES[id] = RuleSpec(id, severity, description, scoped)

    def wrap(fn: _F) -> _F:
        return fn

    return wrap


class InvariantChecker:
    """Runs the rule catalog over a netlist (full or scoped)."""

    def __init__(self, net: Netlist, library: Optional[TechLibrary] = None):
        self.net = net
        self.library = library
        self._fresh_readers: Optional[Dict[str, List[Tuple[str, int]]]] = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def check(
        self,
        scope: Optional[Iterable[str]] = None,
        rules: Optional[Iterable[str]] = None,
    ) -> DiagnosticReport:
        """Run ``rules`` (default: all) and collect diagnostics.

        ``scope`` switches to dirty-region mode: only the given signals
        (and edges incident to them) are examined, and whole-net rules
        that cannot be regionalised are skipped.
        """
        self._fresh_readers = None
        report = DiagnosticReport()
        scope_set = None if scope is None else set(scope)
        wanted = set(rules) if rules is not None else None
        for spec in RULES.values():
            if wanted is not None and spec.id not in wanted:
                continue
            if scope_set is not None and not spec.scoped:
                continue
            getattr(self, "_check_" + spec.id.replace("-", "_"))(
                report, scope_set
            )
        return report

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _emit(
        self,
        report: DiagnosticReport,
        rule: str,
        signals: Iterable[str],
        message: str,
        hint: str = "",
    ) -> None:
        report.add(Diagnostic(
            rule=rule,
            severity=RULES[rule].severity,
            signals=tuple(sorted(set(signals))),
            message=message,
            hint=hint,
        ))

    def _readers(self) -> Dict[str, List[Tuple[str, int]]]:
        """Ground-truth reader map rebuilt from ``gate.inputs`` — never
        the (possibly corrupt) ``_fanouts`` cache."""
        if self._fresh_readers is None:
            readers: Dict[str, List[Tuple[str, int]]] = {}
            for gate in self.net.gates.values():
                for pin, sig in enumerate(gate.inputs):
                    readers.setdefault(sig, []).append((gate.output, pin))
            self._fresh_readers = readers
        return self._fresh_readers

    def _scoped_gates(self, scope: Optional[Set[str]]) -> Iterable[str]:
        if scope is None:
            return self.net.gates.keys()
        return [s for s in scope if s in self.net.gates]

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @_rule("cycle", ERROR,
           "the gate graph must be acyclic (combinational)")
    def _check_cycle(self, report: DiagnosticReport,
                     scope: Optional[Set[str]]) -> None:
        net = self.net
        if scope is not None:
            # A cycle through s exists iff s is in its own transitive
            # fanin; walk gate.inputs backward (cache-free, O(cone)).
            for s in self._scoped_gates(scope):
                stack = list(net.gates[s].inputs)
                seen: Set[str] = set()
                while stack:
                    cur = stack.pop()
                    if cur == s:
                        self._emit(
                            report, "cycle", [s],
                            f"signal {s!r} lies on a combinational cycle",
                            "walk gate.inputs back from the signal",
                        )
                        stack = []
                        break
                    if cur in seen or cur not in net.gates:
                        continue
                    seen.add(cur)
                    stack.extend(net.gates[cur].inputs)
            return
        # Full mode: Kahn's algorithm on raw structures; leftovers with
        # nonzero in-degree are exactly the signals on/behind cycles.
        indeg = {
            out: sum(1 for s in g.inputs if s in net.gates)
            for out, g in net.gates.items()
        }
        ready = [out for out, d in indeg.items() if d == 0]
        readers = self._readers()
        done = 0
        while ready:
            sig = ready.pop()
            done += 1
            for gate_out, _pin in readers.get(sig, []):
                indeg[gate_out] -= 1
                if indeg[gate_out] == 0:
                    ready.append(gate_out)
        if done != len(net.gates):
            cyclic = sorted(out for out, d in indeg.items() if d > 0)
            self._emit(
                report, "cycle", cyclic,
                f"{len(cyclic)} gate(s) on or behind a combinational cycle",
                "Kahn's algorithm could not order these gates",
            )

    @_rule("dangling-input", ERROR,
           "every gate input must be a PI or a driven signal")
    def _check_dangling_input(self, report: DiagnosticReport,
                              scope: Optional[Set[str]]) -> None:
        net = self.net
        for out in self._scoped_gates(scope):
            gate = net.gates[out]
            for pin, sig in enumerate(gate.inputs):
                if not net.has_signal(sig):
                    self._emit(
                        report, "dangling-input", [out, sig],
                        f"gate {out!r} pin {pin} reads undriven "
                        f"signal {sig!r}",
                        "the driver was removed without rewiring readers",
                    )

    @_rule("undriven-po", ERROR,
           "every primary output must name an existing signal")
    def _check_undriven_po(self, report: DiagnosticReport,
                           scope: Optional[Set[str]]) -> None:
        net = self.net
        for po in net.pos:
            if scope is not None and po not in scope:
                continue
            if not net.has_signal(po):
                self._emit(
                    report, "undriven-po", [po],
                    f"primary output {po!r} has no driver",
                    "a stem substitution must retarget POs it removes",
                )

    @_rule("arity", ERROR,
           "gate input count must satisfy the function's arity")
    def _check_arity(self, report: DiagnosticReport,
                     scope: Optional[Set[str]]) -> None:
        net = self.net
        for out in self._scoped_gates(scope):
            gate = net.gates[out]
            try:
                gate.func._check_arity(gate.nin)
            except ValueError as exc:
                self._emit(
                    report, "arity", [out],
                    f"gate {out!r}: {exc}",
                    "Netlist.add_gate rejects this; the gate was mutated "
                    "in place",
                )

    @_rule("cell-binding", ERROR,
           "bound cells must exist in the library")
    def _check_cell_binding(self, report: DiagnosticReport,
                            scope: Optional[Set[str]]) -> None:
        if self.library is None:
            return
        for out in self._scoped_gates(scope):
            gate = self.net.gates[out]
            if gate.cell is not None and gate.cell not in self.library:
                self._emit(
                    report, "cell-binding", [out],
                    f"gate {out!r} bound to unknown cell {gate.cell!r}",
                    f"library {self.library.name!r} has no such cell",
                )

    @_rule("cell-arity", ERROR,
           "bound cell pin count must match the gate input count")
    def _check_cell_arity(self, report: DiagnosticReport,
                          scope: Optional[Set[str]]) -> None:
        if self.library is None:
            return
        for out in self._scoped_gates(scope):
            gate = self.net.gates[out]
            if gate.cell is None or gate.cell not in self.library:
                continue
            cell = self.library[gate.cell]
            if cell.nin != gate.nin:
                self._emit(
                    report, "cell-arity", [out],
                    f"gate {out!r} has {gate.nin} inputs but cell "
                    f"{cell.name!r} has {cell.nin} pins",
                    "rebind after changing gate arity",
                )

    @_rule("cell-function", ERROR,
           "bound cell truth table must match the gate function")
    def _check_cell_function(self, report: DiagnosticReport,
                             scope: Optional[Set[str]]) -> None:
        if self.library is None:
            return
        for out in self._scoped_gates(scope):
            gate = self.net.gates[out]
            if gate.cell is None or gate.cell not in self.library:
                continue
            cell = self.library[gate.cell]
            if cell.nin != gate.nin:
                continue  # reported by cell-arity
            if cell.func.name == gate.func.name:
                continue
            same = gate.nin <= 4 and all(
                cell.func.eval_bits(bits) == gate.func.eval_bits(bits)
                for bits in product((0, 1), repeat=gate.nin)
            )
            if not same:
                self._emit(
                    report, "cell-function", [out],
                    f"gate {out!r} computes {gate.func.name} but cell "
                    f"{cell.name!r} implements {cell.func.name}",
                    "the cell binding is stale; rebind the gate",
                )

    @_rule("pi-overlap", ERROR,
           "PI bookkeeping must be duplicate-free and disjoint from gates")
    def _check_pi_overlap(self, report: DiagnosticReport,
                          scope: Optional[Set[str]]) -> None:
        net = self.net
        if scope is None:
            if len(net.pis) != len(net._pi_set):
                dups = sorted({s for s in net.pis if net.pis.count(s) > 1})
                self._emit(
                    report, "pi-overlap", dups,
                    "duplicate primary input names",
                    "pis list and _pi_set disagree in size",
                )
            if set(net.pis) != net._pi_set:
                diff = set(net.pis) ^ net._pi_set
                self._emit(
                    report, "pi-overlap", diff,
                    "pis list and _pi_set disagree",
                    "PI mutations bypassed add_pi",
                )
            overlap = net._pi_set & set(net.gates)
            signals: Iterable[str] = overlap
        else:
            signals = [s for s in scope
                       if s in net._pi_set and s in net.gates]
        for s in sorted(signals):
            self._emit(
                report, "pi-overlap", [s],
                f"signal {s!r} is both a primary input and a gate output",
                "add_gate/add_pi collision",
            )

    @_rule("fanout-consistency", ERROR,
           "cached fanout map must mirror gate.inputs exactly")
    def _check_fanout_consistency(self, report: DiagnosticReport,
                                  scope: Optional[Set[str]]) -> None:
        net = self.net
        cached = net._fanouts
        if cached is None:
            return  # nothing cached, nothing to be stale
        # Direction 1: every cached branch must be a real edge.
        signals = cached.keys() if scope is None else \
            [s for s in scope if s in cached]
        for sig in signals:
            seen: Set[Tuple[str, int]] = set()
            for br in cached.get(sig, []):
                gate = net.gates.get(br.gate)
                if gate is None or br.pin >= gate.nin \
                        or gate.inputs[br.pin] != sig:
                    self._emit(
                        report, "fanout-consistency", [sig, br.gate],
                        f"cached branch ({br.gate!r}, pin {br.pin}) of "
                        f"{sig!r} does not match gate.inputs",
                        "an in-place edit patched the map incorrectly",
                    )
                elif (br.gate, br.pin) in seen:
                    self._emit(
                        report, "fanout-consistency", [sig, br.gate],
                        f"cached branch ({br.gate!r}, pin {br.pin}) of "
                        f"{sig!r} is duplicated",
                        "a fanout patch appended an existing branch",
                    )
                seen.add((br.gate, br.pin))
        # Direction 2: every real edge must be cached.
        for out in self._scoped_gates(scope):
            gate = net.gates[out]
            for pin, sig in enumerate(gate.inputs):
                if not any(br.gate == out and br.pin == pin
                           for br in cached.get(sig, [])):
                    self._emit(
                        report, "fanout-consistency", [sig, out],
                        f"edge {sig!r} -> ({out!r}, pin {pin}) missing "
                        f"from the cached fanout map",
                        "an in-place edit dropped a branch",
                    )

    @_rule("topo-coherence", ERROR,
           "cached topological order must cover all gates in dependency "
           "order")
    def _check_topo_coherence(self, report: DiagnosticReport,
                              scope: Optional[Set[str]]) -> None:
        net = self.net
        topo = net._topo
        if topo is None:
            return
        pos = {s: i for i, s in enumerate(topo)}
        if scope is None:
            if len(pos) != len(topo):
                dups = sorted({s for s in topo if topo.count(s) > 1})
                self._emit(
                    report, "topo-coherence", dups,
                    "cached topo order contains duplicates", "",
                )
            missing = set(net.gates) - set(pos)
            extra = set(pos) - set(net.gates)
            if missing or extra:
                self._emit(
                    report, "topo-coherence", missing | extra,
                    f"cached topo order out of sync: {len(missing)} gate(s) "
                    f"missing, {len(extra)} stale entr(ies)",
                    "a structural edit forgot to invalidate _topo",
                )
        gates = self._scoped_gates(scope)
        for out in gates:
            if out not in pos:
                if scope is not None:
                    self._emit(
                        report, "topo-coherence", [out],
                        f"gate {out!r} missing from cached topo order",
                        "a structural edit forgot to invalidate _topo",
                    )
                continue
            for sig in net.gates[out].inputs:
                if sig in pos and pos[sig] >= pos[out]:
                    self._emit(
                        report, "topo-coherence", [sig, out],
                        f"cached topo order places {sig!r} at or after "
                        f"its reader {out!r}",
                        "order is stale relative to current edges",
                    )

    @_rule("floating-signal", WARNING,
           "gate outputs should drive a pin or a PO")
    def _check_floating_signal(self, report: DiagnosticReport,
                               scope: Optional[Set[str]]) -> None:
        net = self.net
        po_set = set(net.pos)
        if scope is None:
            readers = self._readers()
            candidates: Iterable[str] = net.gates.keys()
        else:
            cached = net._fanouts
            if cached is None:
                return  # no cheap reader info in scoped mode
            readers = {
                s: [(b.gate, b.pin) for b in cached.get(s, [])]
                for s in scope
            }
            candidates = self._scoped_gates(scope)
        for out in candidates:
            if out in po_set or readers.get(out):
                continue
            if net.gates[out].func.name in ("CONST0", "CONST1"):
                continue  # shared constants may be temporarily unused
            self._emit(
                report, "floating-signal", [out],
                f"gate {out!r} drives no pin and no PO",
                "dead logic; prune_dangling should have removed it",
            )

    @_rule("po-unreachable", WARNING,
           "every gate should reach at least one primary output",
           scoped=False)
    def _check_po_unreachable(self, report: DiagnosticReport,
                              scope: Optional[Set[str]]) -> None:
        net = self.net
        live: Set[str] = set()
        stack = [po for po in net.pos if po in net.gates]
        while stack:
            sig = stack.pop()
            if sig in live:
                continue
            live.add(sig)
            stack.extend(s for s in net.gates[sig].inputs
                         if s in net.gates)
        dead = sorted(set(net.gates) - live)
        # Floating gates are already reported individually; this rule
        # flags the transitively dead region as one diagnostic.
        if dead:
            self._emit(
                report, "po-unreachable", dead,
                f"{len(dead)} gate(s) reach no primary output",
                "dead cone upstream of floating signals",
            )


# ----------------------------------------------------------------------
# convenience wrappers
# ----------------------------------------------------------------------
def check_netlist(
    net: Netlist,
    library: Optional[TechLibrary] = None,
    scope: Optional[Iterable[str]] = None,
    rules: Optional[Iterable[str]] = None,
) -> DiagnosticReport:
    """Run the invariant rules and return the diagnostic report."""
    return InvariantChecker(net, library).check(scope=scope, rules=rules)


def assert_clean(
    net: Netlist,
    library: Optional[TechLibrary] = None,
    scope: Optional[Iterable[str]] = None,
    context: str = "",
) -> DiagnosticReport:
    """Check and raise :class:`InvariantViolation` on any error."""
    report = check_netlist(net, library, scope=scope)
    if not report.ok():
        raise InvariantViolation(report.errors, context=context)
    return report
