"""Structured diagnostics emitted by the invariant checker.

Every violation is a :class:`Diagnostic` — rule id, severity, the
offending signals, a human message and a repro hint — so callers (the
GDO check hooks, the lint CLI, tests) can dispatch on rule ids instead
of parsing prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

ERROR = "error"
WARNING = "warning"

SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation.

    ``rule``     stable kebab-case rule id (see ``invariants.RULES``)
    ``severity`` ``"error"`` (structure unusable / caches poisoned) or
                 ``"warning"`` (suspicious but simulable)
    ``signals``  offending signal names, sorted, possibly empty
    ``message``  one-line description of what is wrong
    ``hint``     how to reproduce / where to look
    """

    rule: str
    severity: str
    signals: Tuple[str, ...]
    message: str
    hint: str = ""

    def format(self) -> str:
        sigs = f" [{', '.join(self.signals)}]" if self.signals else ""
        hint = f"  ({self.hint})" if self.hint else ""
        return f"{self.severity}: {self.rule}{sigs}: {self.message}{hint}"


@dataclass
class DiagnosticReport:
    """Ordered collection of diagnostics from one checker run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def ok(self) -> bool:
        return not self.errors

    def rule_ids(self) -> List[str]:
        return sorted({d.rule for d in self.diagnostics})

    def format(self) -> str:
        if not self.diagnostics:
            return "clean: no diagnostics"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


class InvariantViolation(Exception):
    """Raised by ``assert_clean`` when error-severity diagnostics exist."""

    def __init__(self, diagnostics: Sequence[Diagnostic], context: str = ""):
        self.diagnostics = list(diagnostics)
        self.context = context
        where = f" after {context}" if context else ""
        detail = "\n".join(d.format() for d in self.diagnostics)
        super().__init__(
            f"netlist invariants violated{where}:\n{detail}"
        )
