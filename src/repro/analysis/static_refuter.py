"""Static prove/refute funnel stage for PVCC candidates (Sec. 4's
"other method": global implications instead of BPFS + ATPG).

Given a :class:`~repro.clauses.pvcc.Candidate`, the refuter decides
statically — from circuit structure only, no simulation vectors and no
SAT/BDD call — one of three verdicts:

``proved``
    every clause of the candidate's combination is valid on all input
    vectors.  Established from (a) literals forced by observability
    through single-vertex dominators (``dominators.py``), (b) the
    transitive implication closure (``clauses/implications.py``), and
    (c) joint assumption propagation over a bounded region around the
    clause support.  A proved candidate would be answered ``VALID`` by
    the proof broker, so the broker call is skipped.

``refuted``
    some clause's signal literals are all structurally constant at
    their falsifying values, so the clause reduces to ``~O_target`` and
    the combination fails on any vector observing the target.  Sound
    under the *observable-target* premise (``assume_observable``): GDO
    candidates are only enumerated after the observability engine saw
    at least one observing vector, which is exactly such a witness.

``unknown``
    neither applies; the candidate proceeds to BPFS and the broker.

The stage is a pure function of the netlist: verdicts are deterministic
and identical across serial and parallel runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..clauses.implications import (
    Conflict, ImplicationGraph, Lit, negate, propagate_assumptions,
)
from ..clauses.pvcc import Candidate
from ..clauses.theory import Clause, SigLit
from ..netlist.netlist import Branch, Netlist
from ..sim.observability import SignalRef
from .dominators import _NONCONTROLLING, Dominators, forced_side_literals

PROVED = "proved"
REFUTED = "refuted"
UNKNOWN = "unknown"


class StaticRefuter:
    """Classifies candidates against one (frozen) netlist state.

    Build once per netlist state; the implication graph, dominator
    tree, forced-literal sets and verdicts are all memoized.  After a
    committed modification the instance must be discarded — the
    :class:`~repro.opt.engine.EngineContext` does exactly that.
    """

    def __init__(
        self,
        net: Netlist,
        max_doms: int = 16,
        region_depth: int = 4,
        region_cap: int = 80,
    ):
        self.net = net
        self.max_doms = max_doms
        self.region_depth = region_depth
        self.region_cap = region_cap
        self.graph = ImplicationGraph(net)
        self.doms = Dominators(net)
        self._topo_pos: Dict[str, int] = {
            s: i for i, s in enumerate(net.topo_order())
        }
        self._forced: Dict[SignalRef, Optional[Tuple[Lit, ...]]] = {}
        self._memo: Dict[str, str] = {}
        self.counts: Dict[str, int] = {PROVED: 0, REFUTED: 0, UNKNOWN: 0}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def classify(self, cand: Candidate,
                 assume_observable: bool = True) -> str:
        """Verdict for one candidate (memoized by description)."""
        key = cand.describe()
        verdict = self._memo.get(key)
        if verdict is None:
            verdict = self._classify(cand, assume_observable)
            self._memo[key] = verdict
            self.counts[verdict] += 1
        return verdict

    # ------------------------------------------------------------------
    # verdict computation
    # ------------------------------------------------------------------
    def _classify(self, cand: Candidate, assume_observable: bool) -> str:
        try:
            clauses = cand.clause_combination()
            forced = self._forced_literals(cand.target)
        except (KeyError, ValueError):
            return UNKNOWN  # candidate refers to signals no longer present
        if forced is None:
            # Forced literals contradict each other: the target is
            # structurally unobservable, every ~O_target clause holds.
            return PROVED
        sig_clauses = [self._signal_lits(cl) for cl in clauses]
        if assume_observable and any(
            self._statically_false(lits) for lits in sig_clauses
        ):
            return REFUTED
        if all(self._clause_valid(lits, forced) for lits in sig_clauses):
            return PROVED
        return UNKNOWN

    def _signal_lits(self, cl: Clause) -> List[Lit]:
        lits: List[Lit] = []
        for lit in cl.literals:
            if isinstance(lit, SigLit):
                name = self._signal_name(lit.ref)
                lits.append((name, 1 if lit.positive else 0))
        return lits

    def _signal_name(self, ref: SignalRef) -> str:
        if isinstance(ref, Branch):
            return self.net.gates[ref.gate].inputs[ref.pin]
        return ref

    # ------------------------------------------------------------------
    # observability-forced literals
    # ------------------------------------------------------------------
    def _forced_literals(
        self, target: SignalRef,
    ) -> Optional[Tuple[Lit, ...]]:
        """Literals holding on every vector with ``O_target = 1``;
        ``None`` when they conflict (target never observable)."""
        key = target
        if key in self._forced:
            return self._forced[key]
        lits: List[Lit] = []
        if isinstance(target, Branch):
            gate = self.net.gates[target.gate]
            value = _NONCONTROLLING.get(gate.func.name)
            if value is not None:
                for pin, sig in enumerate(gate.inputs):
                    if pin != target.pin:
                        lits.append((sig, value))
            lits.extend(forced_side_literals(
                self.net, gate.output, self.doms, self.max_doms
            ))
        else:
            lits.extend(forced_side_literals(
                self.net, target, self.doms, self.max_doms
            ))
        values: Dict[str, int] = {}
        result: Optional[Tuple[Lit, ...]] = tuple()
        for sig, val in lits:
            if values.get(sig, val) != val:
                result = None
                break
            values[sig] = val
        if result is not None:
            result = tuple(sorted(values.items()))
        self._forced[key] = result
        return result

    # ------------------------------------------------------------------
    # clause-level rules
    # ------------------------------------------------------------------
    def _statically_false(self, sig_lits: Sequence[Lit]) -> bool:
        """Every signal literal is provably constant at its falsifying
        value, so the clause reduces to ``~O_target``."""
        return bool(sig_lits) and all(
            self.graph.contradiction(lit) for lit in sig_lits
        )

    def _clause_valid(self, sig_lits: Sequence[Lit],
                      forced: Tuple[Lit, ...]) -> bool:
        """``O_target = 1  =>  (l1 + l2 + ...)`` on all vectors."""
        forced_set = set(forced)
        for lit in sig_lits:
            if lit in forced_set:
                return True
            if self.graph.contradiction(negate(lit)):
                return True  # literal is constant-true
        for li in sig_lits:
            impl = self.graph.implications(negate(li))
            for lj in sig_lits:
                if lj != li and lj in impl:
                    return True
        for m in forced:
            impl = self.graph.implications(m)
            for lj in sig_lits:
                if lj in impl:
                    return True
        # Joint propagation: assume every literal false plus the forced
        # context; a conflict proves the clause valid.  Region-limited
        # (sound — restriction only loses consequences).
        assumptions = [negate(lit) for lit in sig_lits] + list(forced)
        region = self._region(sig for sig, _ in assumptions)
        if region:
            try:
                propagate_assumptions(self.net, assumptions, gates=region)
            except Conflict:
                return True
        return False

    # ------------------------------------------------------------------
    def _region(self, signals: Iterable[str]) -> List[str]:
        """Bounded structural neighbourhood of ``signals`` in topological
        order, for region-limited propagation."""
        net = self.net
        fan = net.fanout_map()
        gates: Set[str] = set()
        for root in signals:
            frontier = [root]
            for _ in range(self.region_depth):
                if len(gates) >= self.region_cap:
                    break
                nxt: List[str] = []
                for sig in frontier:
                    g = net.gates.get(sig)
                    if g is not None and sig not in gates:
                        gates.add(sig)
                        nxt.extend(g.inputs)
                    for br in fan.get(sig, []):
                        if br.gate not in gates:
                            gates.add(br.gate)
                            nxt.append(br.gate)
                frontier = nxt
                if not frontier:
                    break
        return sorted(
            (g for g in gates if g in self._topo_pos),
            key=self._topo_pos.__getitem__,
        )
