"""Static analysis: netlist invariant checking and PVCC discharge.

Two cooperating passes (DESIGN.md §8):

* the **invariant checker** (:mod:`.invariants`, :mod:`.diagnostics`)
  validates structural invariants of a :class:`Netlist` — full-netlist
  for the lint CLI, dirty-region scoped behind ``GdoConfig.check`` for
  the GDO trial/commit hooks;
* the **static refuter** (:mod:`.static_refuter`, :mod:`.dominators`)
  proves or refutes candidate clause combinations from structure alone,
  discharging proof obligations before BPFS and the proof broker.

Run the lint CLI with ``python -m repro.analysis circuit.bench``.
"""

from .diagnostics import (
    ERROR, WARNING, Diagnostic, DiagnosticReport, InvariantViolation,
)
from .dominators import Dominators, forced_side_literals
from .invariants import (
    RULES, InvariantChecker, RuleSpec, assert_clean, check_netlist,
)
from .static_refuter import PROVED, REFUTED, UNKNOWN, StaticRefuter

__all__ = [
    "ERROR", "WARNING", "Diagnostic", "DiagnosticReport",
    "InvariantViolation", "Dominators", "forced_side_literals",
    "RULES", "RuleSpec", "InvariantChecker", "assert_clean",
    "check_netlist", "PROVED", "REFUTED", "UNKNOWN", "StaticRefuter",
]
