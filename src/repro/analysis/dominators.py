"""Structural single-vertex dominators toward the primary outputs.

A gate output ``d`` dominates signal ``s`` when every path from ``s``
to *any* primary output passes through ``d``.  Dominators matter for
clause analysis because they localise observability: under ``Os = 1``
(a change of ``s`` is visible at some PO for the current vector), the
output of every dominator of ``s`` must change too — so if the change
enters a dominator gate through exactly one pin, the gate's *other*
pins are forced to their non-controlling values.  Those forced literals
(``side = 1`` for AND/NAND, ``side = 0`` for OR/NOR) are free
assumptions for the static refuter: they hold on every vector where the
candidate's observability literal holds.

Computed with the classic Cooper/Harvey/Kennedy iterative idom
intersection over the fanout DAG extended with a virtual sink that
collects all POs; one reverse-topological sweep suffices on a DAG.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..netlist.netlist import Netlist

Lit = Tuple[str, int]

_SINK = "<po-sink>"

# Pin values that let a change propagate through the gate: the
# non-controlling side-input value per function family.
_NONCONTROLLING = {
    "AND": 1, "NAND": 1,
    "OR": 0, "NOR": 0,
}


class Dominators:
    """Immediate dominators of every signal toward the PO sink."""

    def __init__(self, net: Netlist):
        self.net = net
        self._idom: Dict[str, Optional[str]] = {}
        self._rank: Dict[str, int] = {_SINK: 0}
        self._compute()

    def _compute(self) -> None:
        net = self.net
        fan = net.fanout_map()
        po_set = set(net.pos)
        idom: Dict[str, str] = {_SINK: _SINK}
        rank = self._rank
        # Reverse topological order visits every signal after all of
        # its readers (gate outputs are later in topo than the inputs
        # they read), so successor idoms are final when needed.  PIs go
        # at the *front* so the reversed sweep reaches them last, after
        # every gate that reads them.
        order = [
            pi for pi in net.pis if pi not in net.gates
        ] + list(net.topo_order())
        for signal in reversed(order):
            succs = [br.gate for br in fan.get(signal, [])]
            if signal in po_set:
                succs.append(_SINK)
            known = [s for s in succs if s in idom]
            if not known:
                self._idom[signal] = None  # no path to any PO
                continue
            new = known[0]
            for other in known[1:]:
                new = self._intersect(new, other, idom, rank)
            idom[signal] = new
            rank[signal] = rank[new] + 1
            self._idom[signal] = new

    @staticmethod
    def _intersect(a: str, b: str, idom: Dict[str, str],
                   rank: Dict[str, int]) -> str:
        while a != b:
            if rank[a] > rank[b]:
                a = idom[a]
            else:
                b = idom[b]
        return a

    # ------------------------------------------------------------------
    def idom(self, signal: str) -> Optional[str]:
        """Immediate dominator gate output (``None`` for POs whose only
        dominator is the virtual sink, and for dead signals)."""
        d = self._idom.get(signal)
        return None if d == _SINK else d

    def chain(self, signal: str) -> Iterator[str]:
        """All single-vertex dominator gate outputs of ``signal``,
        nearest first (excluding the signal itself and the sink)."""
        cur = self._idom.get(signal)
        while cur is not None and cur != _SINK:
            yield cur
            cur = self._idom.get(cur)

    def dominates(self, dom: str, signal: str) -> bool:
        return dom == signal or dom in self.chain(signal)


def forced_side_literals(
    net: Netlist,
    root: str,
    doms: Optional[Dominators] = None,
    max_doms: int = 16,
) -> List[Lit]:
    """Literals forced on every vector where a change at ``root`` is
    observable at some PO.

    For each single-vertex dominator gate ``d`` of ``root``: if exactly
    one of ``d``'s pins lies inside the fanout cone of ``root``, the
    change reaches ``d`` only through that pin, and for ``d``'s output
    to change (it must — all PO paths run through ``d``) the remaining
    side pins must sit at the function's non-controlling value.  Only
    the AND/OR families force values; XOR-like and complex cells
    propagate unconditionally and contribute nothing.
    """
    if doms is None:
        doms = Dominators(net)
    cone: Set[str] = net.transitive_fanout(root, include_self=True)
    cone.add(root)
    forced: List[Lit] = []
    for i, dom in enumerate(doms.chain(root)):
        if i >= max_doms:
            break
        gate = net.gates.get(dom)
        if gate is None:
            continue
        value = _NONCONTROLLING.get(gate.func.name)
        if value is None:
            continue
        inside = [sig for sig in gate.inputs if sig in cone]
        if len(inside) != 1:
            continue
        for sig in gate.inputs:
            if sig not in cone:
                forced.append((sig, value))
    return forced
