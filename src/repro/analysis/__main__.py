"""Standalone netlist lint CLI.

Usage::

    python -m repro.analysis circuit.bench [circuit2.v ...]

Parses each circuit through the :mod:`repro.io` format dispatcher
(every registered format — ``.bench``, ``.blif``, ``.v`` — lints
without this module knowing the list), runs the full invariant-rule
catalog, prints every diagnostic, and exits nonzero when any
error-severity diagnostic (or a parse failure) was found.  ``--strict``
also fails on warnings; ``--rules`` restricts the rule set;
``--list-rules`` prints the catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..io import PARSE_ERRORS, load_netlist
from ..library import mcnc_like
from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from .invariants import RULES, check_netlist


def _load(path: str, library: TechLibrary) -> Netlist:
    net: Netlist = load_netlist(path, library=library)
    return net


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint gate-level netlists against the invariant "
                    "rule catalog.",
    )
    parser.add_argument("circuits", nargs="*",
                        help="netlist files to check (any format the "
                             "io dispatcher knows: .bench, .blif, .v)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on warnings too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for spec in RULES.values():
            mode = "scoped" if spec.scoped else "full-only"
            print(f"{spec.id:20s} {spec.severity:8s} [{mode}] "
                  f"{spec.description}")
        return 0
    if not args.circuits:
        parser.error("no circuits given (or use --list-rules)")

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    library = mcnc_like()
    failed = False
    for path in args.circuits:
        try:
            net = _load(path, library)
        except PARSE_ERRORS + (OSError, ValueError) as exc:
            print(f"{path}: parse error: {exc}", file=sys.stderr)
            failed = True
            continue
        report = check_netlist(net, library, rules=rules)
        status = "clean" if not report.diagnostics else (
            f"{len(report.errors)} error(s), "
            f"{len(report.warnings)} warning(s)"
        )
        print(f"{path}: {net.num_gates} gates, {status}")
        for diag in report.diagnostics:
            print(f"  {diag.format()}")
        if report.errors or (args.strict and report.warnings):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
