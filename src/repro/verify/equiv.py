"""Combinational equivalence checking (the safety net).

Strategy: fast random word-parallel simulation to refute, then a SAT
miter (or BDD comparison) to prove.  Used after every GDO run and
heavily in the test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bdd.bdd import BddBudgetExceeded
from ..bdd.circuit_bdd import bdd_equivalent
from ..netlist.netlist import Netlist
from ..sat.miter import miter_counterexample, miter_equivalent
from ..sat.solver import SolverBudgetExceeded
from ..sim.bitsim import BitSimulator
from ..sim.vectors import random_words


def random_sim_refutes(
    left: Netlist, right: Netlist, n_words: int = 32, seed: int = 0
) -> bool:
    """True if random vectors already distinguish the two netlists."""
    if set(left.pis) != set(right.pis) or len(left.pos) != len(right.pos):
        return True
    words = random_words(left.pis, n_words, seed)
    l_state = BitSimulator(left).simulate(words)
    r_state = BitSimulator(right).simulate(words)
    for l_po, r_po in zip(left.pos, right.pos):
        if np.any(l_state.word(l_po) ^ r_state.word(r_po)):
            return True
    return False


def check_equivalence(
    left: Netlist,
    right: Netlist,
    n_words: int = 32,
    seed: int = 0,
    method: str = "sat",
    max_conflicts: Optional[int] = 500_000,
    bdd_max_nodes: int = 1_000_000,
) -> Optional[bool]:
    """Full equivalence check: simulate to refute, then prove.

    ``method`` is ``"sat"``, ``"bdd"``, or ``"auto"`` (BDD with SAT
    fallback on budget exhaustion).  Returns ``None`` — undecided —
    when refutation failed but the formal proof exhausted its budget;
    budget overflows never escape as exceptions.
    """
    if random_sim_refutes(left, right, n_words=n_words, seed=seed):
        return False
    try:
        if method == "bdd":
            return bdd_equivalent(left, right, max_nodes=bdd_max_nodes)
        if method == "auto":
            try:
                return bdd_equivalent(left, right, max_nodes=bdd_max_nodes)
            except BddBudgetExceeded:
                return miter_equivalent(
                    left, right, max_conflicts=max_conflicts)
        return miter_equivalent(left, right, max_conflicts=max_conflicts)
    except (BddBudgetExceeded, SolverBudgetExceeded):
        return None


def find_counterexample(
    left: Netlist, right: Netlist, max_conflicts: Optional[int] = 500_000
):
    """Distinguishing input assignment, or None if equivalent."""
    return miter_counterexample(left, right, max_conflicts=max_conflicts)
