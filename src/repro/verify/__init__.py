"""Equivalence checking utilities."""

from .equiv import check_equivalence, find_counterexample, random_sim_refutes

__all__ = ["check_equivalence", "find_counterexample", "random_sim_refutes"]
