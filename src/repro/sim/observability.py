"""Word-parallel signal observability.

The observability variable ``Oa`` of the paper (Sec. 2) is, per input
vector, 1 iff complementing signal ``a`` changes some primary output.
This module computes ``Oa`` for a whole word batch at once by flipping
the signal's word row and resimulating only its fanout cone — the
bit-parallel fault simulation (BPFS) of Sec. 4 specialized to one fault
site, for both *stem* faults (the signal everywhere) and *branch* faults
(a single fanout pin).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..netlist.netlist import Branch, Netlist
from .bitsim import BitSimulator, SimState

SignalRef = Union[str, Branch]


class ObservabilityEngine:
    """Computes and caches observability word rows over one sim state."""

    def __init__(self, sim: BitSimulator, state: SimState):
        self.sim = sim
        self.state = state
        self._stem_cache: Dict[str, np.ndarray] = {}
        self._branch_cache: Dict[Tuple[str, int], np.ndarray] = {}

    @classmethod
    def from_netlist(
        cls, net: Netlist, n_words: int = 16, seed: int = 0
    ) -> "ObservabilityEngine":
        sim = BitSimulator(net)
        return cls(sim, sim.simulate_random(n_words=n_words, seed=seed))

    # ------------------------------------------------------------------
    def value(self, signal: str) -> np.ndarray:
        """Base simulated value of ``signal``."""
        return self.state.word(signal)

    def observability(self, ref: SignalRef) -> np.ndarray:
        """``Oa`` word row for a stem (str) or branch (:class:`Branch`)."""
        if isinstance(ref, Branch):
            return self.branch_observability(ref)
        return self.stem_observability(ref)

    def signal_of(self, ref: SignalRef) -> str:
        """The signal carrying the value of ``ref`` (branch -> its net)."""
        if isinstance(ref, Branch):
            return self.sim.net.gates[ref.gate].inputs[ref.pin]
        return ref

    def stem_observability(self, signal: str) -> np.ndarray:
        """Vectors on which flipping ``signal`` (everywhere) changes a PO."""
        cached = self._stem_cache.get(signal)
        if cached is not None:
            return cached
        base = self.state.word(signal)
        overrides = self.sim.resimulate_cone(self.state, signal, ~base)
        obs = self.sim.po_difference(self.state, overrides)
        self._stem_cache[signal] = obs
        return obs

    def branch_observability(self, branch: Branch) -> np.ndarray:
        """Vectors on which flipping one fanout pin changes a PO."""
        key = (branch.gate, branch.pin)
        cached = self._branch_cache.get(key)
        if cached is not None:
            return cached
        net = self.sim.net
        signal = net.gates[branch.gate].inputs[branch.pin]
        base = self.state.word(signal)
        sink_idx = self.sim.index_of[branch.gate]
        overrides = self.sim.resimulate_cone(
            self.state, signal, ~base, sink_filter=(sink_idx, branch.pin)
        )
        obs = self.sim.po_difference(self.state, overrides)
        self._branch_cache[key] = obs
        return obs

    # ------------------------------------------------------------------
    # scalar helpers used by the clause-theory layer and tests
    # ------------------------------------------------------------------
    def observability_bit(self, ref: SignalRef, vector: int) -> int:
        word, bit = divmod(vector, 64)
        obs = self.observability(ref)
        return int((obs[word] >> np.uint64(bit)) & np.uint64(1))
