"""Word-parallel signal observability.

The observability variable ``Oa`` of the paper (Sec. 2) is, per input
vector, 1 iff complementing signal ``a`` changes some primary output.
This module computes ``Oa`` for a whole word batch at once by flipping
the signal's word row and resimulating only its fanout cone — the
bit-parallel fault simulation (BPFS) of Sec. 4 specialized to one fault
site, for both *stem* faults (the signal everywhere) and *branch* faults
(a single fanout pin).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np

from ..netlist.netlist import Branch, Netlist
from .bitsim import BitSimulator, SimState

SignalRef = Union[str, Branch]


class ObservabilityEngine:
    """Computes and caches observability word rows over one sim state."""

    def __init__(self, sim: BitSimulator, state: SimState):
        self.sim = sim
        self.state = state
        self._stem_cache: Dict[str, np.ndarray] = {}
        self._branch_cache: Dict[Tuple[str, int], np.ndarray] = {}
        # PO list snapshot: netlists are edited in place, so net.pos at
        # refresh time may not be what this engine's rows were based on.
        self._pos_snapshot = tuple(sim.pos)
        self.computed = 0  # rows derived by cone resimulation
        self.reused = 0    # rows carried over by refreshed()

    @classmethod
    def from_netlist(
        cls, net: Netlist, n_words: int = 16, seed: int = 0
    ) -> "ObservabilityEngine":
        sim = BitSimulator(net)
        return cls(sim, sim.simulate_random(n_words=n_words, seed=seed))

    # ------------------------------------------------------------------
    def value(self, signal: str) -> np.ndarray:
        """Base simulated value of ``signal``."""
        return self.state.word(signal)

    def observability(self, ref: SignalRef) -> np.ndarray:
        """``Oa`` word row for a stem (str) or branch (:class:`Branch`)."""
        if isinstance(ref, Branch):
            return self.branch_observability(ref)
        return self.stem_observability(ref)

    def signal_of(self, ref: SignalRef) -> str:
        """The signal carrying the value of ``ref`` (branch -> its net)."""
        if isinstance(ref, Branch):
            return self.sim.net.gates[ref.gate].inputs[ref.pin]
        return ref

    def stem_observability(self, signal: str) -> np.ndarray:
        """Vectors on which flipping ``signal`` (everywhere) changes a PO."""
        cached = self._stem_cache.get(signal)
        if cached is not None:
            return cached
        base = self.state.word(signal)
        overrides = self.sim.resimulate_cone(self.state, signal, ~base)
        obs = self.sim.po_difference(self.state, overrides)
        self._stem_cache[signal] = obs
        self.computed += 1
        return obs

    def branch_observability(self, branch: Branch) -> np.ndarray:
        """Vectors on which flipping one fanout pin changes a PO."""
        key = (branch.gate, branch.pin)
        cached = self._branch_cache.get(key)
        if cached is not None:
            return cached
        net = self.sim.net
        signal = net.gates[branch.gate].inputs[branch.pin]
        base = self.state.word(signal)
        sink_idx = self.sim.index_of[branch.gate]
        overrides = self.sim.resimulate_cone(
            self.state, signal, ~base, sink_filter=(sink_idx, branch.pin)
        )
        obs = self.sim.po_difference(self.state, overrides)
        self._branch_cache[key] = obs
        self.computed += 1
        return obs

    # ------------------------------------------------------------------
    # incremental refresh
    # ------------------------------------------------------------------
    def refreshed(
        self, sim: BitSimulator, state: SimState, affected: set
    ) -> "ObservabilityEngine":
        """New engine over a refreshed ``(sim, state)`` of an edited
        netlist, retaining every cached observability row the edit
        provably could not change.

        ``affected`` must contain every signal whose word row, driving
        gate, or fanout set changed, plus removed signals — i.e. the
        union of the ``dirty`` input and ``changed`` output of
        :meth:`BitSimulator.incremental`.  A cached row survives only if
        the perturbation site and its fanout cone (gates *and* their
        side inputs, in both the old and the new structure) are disjoint
        from ``affected``; anything else is recomputed on demand.
        """
        # type(self): a subclass (e.g. the flat-kernel engine) survives
        # refreshes instead of silently degrading to the base engine.
        eng = type(self)(sim, state)
        if self._pos_snapshot != eng._pos_snapshot:
            return eng  # observation points moved: every row is suspect
        for sig, row in self._stem_cache.items():
            if sig in affected or sig not in sim.index_of:
                continue
            if self._cone_untouched(self.sim, sig, affected) and \
                    self._cone_untouched(sim, sig, affected):
                eng._stem_cache[sig] = row
                eng.reused += 1
        new_gates = sim.net.gates
        for (gate, pin), row in self._branch_cache.items():
            g = new_gates.get(gate)
            if g is None or pin >= g.nin or gate in affected:
                continue
            if any(s in affected for s in g.inputs):
                continue
            if self._cone_untouched(self.sim, gate, affected) and \
                    self._cone_untouched(sim, gate, affected):
                eng._branch_cache[(gate, pin)] = row
                eng.reused += 1
        return eng

    @staticmethod
    def _cone_untouched(sim: BitSimulator, signal: str, affected: set) -> bool:
        """True if no cone gate of ``signal`` (or side input of one) in
        ``sim``'s structure is in ``affected``."""
        if signal not in sim.index_of:
            return False
        name = sim._signal_name
        for k in sim.cone_ops(signal):
            out_idx, _func, in_idx = sim._ops[k]
            if name(out_idx) in affected:
                return False
            for i in in_idx:
                if name(i) in affected:
                    return False
        return True

    # ------------------------------------------------------------------
    # scalar helpers used by the clause-theory layer and tests
    # ------------------------------------------------------------------
    def observability_bit(self, ref: SignalRef, vector: int) -> int:
        word, bit = divmod(vector, 64)
        obs = self.observability(ref)
        return int((obs[word] >> np.uint64(bit)) & np.uint64(1))
