"""Bit-parallel netlist simulator.

The netlist is compiled once into flat arrays (topological gate order,
per-gate function and operand indices); a simulation then evaluates each
gate on numpy ``uint64`` word rows, i.e. 64 input vectors per word.

Besides full-netlist simulation the compiled form supports *cone
resimulation*: re-evaluating only the transitive fanout of one signal
with an overridden value.  That is the primitive behind word-parallel
observability (fault simulation) in :mod:`repro.sim.observability`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist.gatefunc import CONST0, CONST1
from ..netlist.netlist import Netlist
from ..obs.metrics import NULL_REGISTRY
from .vectors import exhaustive_words, random_words

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: histogram buckets for dirty-set sizes (signals)
_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)


class SimState:
    """Signal values for one batch of vectors: ``values[index_of[sig]]``
    is the uint64 word row of signal ``sig``."""

    def __init__(self, sim: "BitSimulator", values: np.ndarray):
        self.sim = sim
        self.values = values

    @property
    def n_words(self) -> int:
        return self.values.shape[1]

    def word(self, signal: str) -> np.ndarray:
        return self.values[self.sim.index_of[signal]]

    def po_words(self) -> List[np.ndarray]:
        return [self.word(po) for po in self.sim.pos]

    def bit(self, signal: str, vector: int) -> int:
        word, bit = divmod(vector, 64)
        return int((self.word(signal)[word] >> np.uint64(bit)) & np.uint64(1))


class BitSimulator:
    """Compiled bit-parallel simulator for one netlist.

    The simulator holds a snapshot of the netlist structure; after any
    netlist mutation build a fresh ``BitSimulator``.
    """

    def __init__(self, net: Netlist):
        self.net = net
        # PO list at compile time; net.pos may be edited in place later.
        self.pos: List[str] = list(net.pos)
        self.index_of: Dict[str, int] = {}
        for sig in net.pis:
            self.index_of[sig] = len(self.index_of)
        self._order = net.topo_order()
        for sig in self._order:
            self.index_of[sig] = len(self.index_of)
        self.n_signals = len(self.index_of)
        # Compiled gate list: (out_index, func, tuple(in_indices))
        self._ops: List[Tuple[int, object, Tuple[int, ...]]] = []
        for sig in self._order:
            gate = net.gates[sig]
            self._ops.append(
                (self.index_of[sig], gate.func,
                 tuple(self.index_of[s] for s in gate.inputs))
            )
        self._gate_pos = {op[0]: k for k, op in enumerate(self._ops)}
        self._cone_cache: Dict[str, List[int]] = {}
        self._readers: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    def simulate(self, pi_words: Dict[str, np.ndarray]) -> SimState:
        """Full simulation of the packed vectors in ``pi_words``."""
        n_words = len(next(iter(pi_words.values()))) if pi_words else 1
        values = np.zeros((self.n_signals, n_words), dtype=np.uint64)
        for pi in self.net.pis:
            values[self.index_of[pi]] = pi_words[pi]
        for out_idx, func, in_idx in self._ops:
            if func is CONST0:
                values[out_idx] = 0
            elif func is CONST1:
                values[out_idx] = _ALL_ONES
            else:
                values[out_idx] = func.eval_words(
                    [values[i] for i in in_idx]
                )
        return SimState(self, values)

    def simulate_random(self, n_words: int = 16, seed: int = 0) -> SimState:
        return self.simulate(random_words(self.net.pis, n_words, seed))

    @classmethod
    def incremental(
        cls,
        net: Netlist,
        prev_sim: "BitSimulator",
        prev_state: SimState,
        dirty: Sequence[str] | set,
        metrics=NULL_REGISTRY,
    ) -> Tuple["BitSimulator", SimState, set]:
        """Compile ``net`` and derive its state from ``prev_state`` by
        re-evaluating only the dirty fanout cone.

        ``net`` is an edited version of ``prev_sim.net`` with the same
        primary inputs (vectors are carried over, not regenerated);
        ``dirty`` must name every signal whose driving gate changed plus
        every new signal — see :func:`repro.netlist.edit.dirty_between`.
        Same-named signals outside the dirty cone keep their word rows.
        ``metrics`` optionally receives the dirty/changed set sizes.

        Returns ``(sim, state, changed)`` where ``changed`` is the set
        of signal names whose word rows differ from ``prev_state``.
        """
        metrics.histogram("sim_dirty_set",
                          buckets=_SIZE_BUCKETS).observe(len(dirty))
        sim = cls(net)
        n_words = prev_state.n_words
        values = np.zeros((sim.n_signals, n_words), dtype=np.uint64)
        prev_index = prev_sim.index_of
        src, dst = [], []
        fresh = set()
        for name, idx in sim.index_of.items():
            j = prev_index.get(name)
            if j is None:
                fresh.add(idx)
            else:
                dst.append(idx)
                src.append(j)
        if dst:
            values[np.array(dst)] = prev_state.values[np.array(src)]
        pending = {sim.index_of[s] for s in dirty if s in sim.index_of}
        pending |= fresh
        changed: set = set()
        for out_idx, func, in_idx in sim._ops:
            if out_idx not in pending and not any(i in changed for i in in_idx):
                continue
            if func is CONST0:
                new = np.zeros(n_words, dtype=np.uint64)
            elif func is CONST1:
                new = np.full(n_words, _ALL_ONES, dtype=np.uint64)
            else:
                new = func.eval_words([values[i] for i in in_idx])
            if out_idx in fresh or not np.array_equal(new, values[out_idx]):
                values[out_idx] = new
                changed.add(out_idx)
        metrics.histogram("sim_changed_set",
                          buckets=_SIZE_BUCKETS).observe(len(changed))
        state = SimState(sim, values)
        return sim, state, {sim._signal_name(i) for i in changed}

    def simulate_exhaustive(self) -> SimState:
        return self.simulate(exhaustive_words(self.net.pis))

    # ------------------------------------------------------------------
    def cone_ops(self, signal: str) -> List[int]:
        """Indices into the compiled op list of the gates in the
        transitive fanout of ``signal`` (excluding its own driver),
        in topological order."""
        cached = self._cone_cache.get(signal)
        if cached is not None:
            return cached
        readers = self._readers
        if readers is None:
            readers = [[] for _ in range(self.n_signals)]
            for k, (_out_idx, _func, in_idx) in enumerate(self._ops):
                for i in in_idx:
                    readers[i].append(k)
            self._readers = readers
        # Worklist over the reader index: O(cone) instead of a scan of
        # the whole op list; sorting restores topological op order.
        affected = {self.index_of[signal]}
        ops: List[int] = []
        work = [self.index_of[signal]]
        while work:
            i = work.pop()
            for k in readers[i]:
                out_idx = self._ops[k][0]
                if out_idx not in affected:
                    affected.add(out_idx)
                    ops.append(k)
                    work.append(out_idx)
        ops.sort()
        self._cone_cache[signal] = ops
        return ops

    def resimulate_cone(
        self,
        state: SimState,
        signal: str,
        new_value: np.ndarray,
        sink_filter: Optional[Tuple[int, int]] = None,
    ) -> Dict[int, np.ndarray]:
        """Propagate an overridden value of ``signal`` through its cone.

        Returns a dict of signal-index -> new word row for every signal
        whose value changed (always including ``signal`` itself).  Base
        ``state`` is not modified.

        ``sink_filter`` restricts the initial perturbation to a single
        fanout branch ``(gate_out_index, pin)`` — the branch-fault mode:
        only that gate sees ``new_value``; every other reader of
        ``signal`` keeps the base value.
        """
        src = self.index_of[signal]
        overrides: Dict[int, np.ndarray] = {}
        if sink_filter is None:
            overrides[src] = new_value
            for k in self.cone_ops(signal):
                self._reeval(state, overrides, k)
        else:
            sink_idx, pin = sink_filter
            k = self._gate_pos[sink_idx]
            out_idx, func, in_idx = self._ops[k]
            inputs = [
                new_value if (i == src and p == pin) else state.values[i]
                for p, i in enumerate(in_idx)
            ]
            new_out = func.eval_words(inputs)
            if np.array_equal(new_out, state.values[out_idx]):
                return {}
            overrides[out_idx] = new_out
            for k2 in self.cone_ops(self._signal_name(out_idx)):
                self._reeval(state, overrides, k2)
        return overrides

    def _signal_name(self, index: int) -> str:
        # PIs occupy the first len(pis) indices, then gates in topo order.
        n_pi = len(self.net.pis)
        if index < n_pi:
            return self.net.pis[index]
        return self._order[index - n_pi]

    def _reeval(self, state: SimState, overrides: Dict[int, np.ndarray],
                k: int) -> None:
        out_idx, func, in_idx = self._ops[k]
        if not any(i in overrides for i in in_idx):
            return
        inputs = [overrides.get(i, state.values[i]) for i in in_idx]
        new_out = func.eval_words(inputs)
        if not np.array_equal(new_out, state.values[out_idx]):
            overrides[out_idx] = new_out

    # ------------------------------------------------------------------
    def po_difference(
        self, state: SimState, overrides: Dict[int, np.ndarray]
    ) -> np.ndarray:
        """Word row marking the vectors on which any PO changed."""
        diff = np.zeros(state.n_words, dtype=np.uint64)
        for po in self.pos:
            idx = self.index_of[po]
            if idx in overrides:
                diff |= overrides[idx] ^ state.values[idx]
        return diff


def truth_table_of(net: Netlist, po: Optional[str] = None) -> List[int]:
    """Exhaustive truth table of one PO (or the first) — small nets only."""
    sim = BitSimulator(net)
    state = sim.simulate_exhaustive()
    target = po if po is not None else net.pos[0]
    word = state.word(target)
    n_vectors = 1 << len(net.pis)
    return [
        int((word[v // 64] >> np.uint64(v % 64)) & np.uint64(1))
        for v in range(n_vectors)
    ]
