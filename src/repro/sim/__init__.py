"""Bit-parallel simulation: vectors, logic simulation, observability."""

from .bitsim import BitSimulator, SimState, truth_table_of
from .observability import ObservabilityEngine
from .vectors import (
    WORD_BITS, exhaustive_mask, exhaustive_words, random_words,
    vectors_to_words, word_mask_for,
)

__all__ = [
    "BitSimulator", "SimState", "truth_table_of", "ObservabilityEngine",
    "WORD_BITS", "exhaustive_mask", "exhaustive_words", "random_words",
    "vectors_to_words", "word_mask_for",
]
