"""Input vector sources for bit-parallel simulation.

Vectors are packed 64 per numpy ``uint64`` word, as in classic
bit-parallel fault simulation [Waicukauski et al.]: simulating ``W``
words evaluates ``64 * W`` input vectors at once.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

WORD_BITS = 64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

# Within-word exhaustive patterns for input index i < 6: bit k of the
# pattern equals bit i of k.
_INTRA_WORD = [
    np.uint64(0xAAAAAAAAAAAAAAAA),
    np.uint64(0xCCCCCCCCCCCCCCCC),
    np.uint64(0xF0F0F0F0F0F0F0F0),
    np.uint64(0xFF00FF00FF00FF00),
    np.uint64(0xFFFF0000FFFF0000),
    np.uint64(0xFFFFFFFF00000000),
]


def random_words(
    pis: Sequence[str], n_words: int, seed: int = 0
) -> Dict[str, np.ndarray]:
    """Uniform random vectors: ``n_words`` words (64 vectors each) per PI."""
    rng = np.random.default_rng(seed)
    return {
        pi: rng.integers(0, 1 << 64, size=n_words, dtype=np.uint64)
        for pi in pis
    }


def exhaustive_words(pis: Sequence[str]) -> Dict[str, np.ndarray]:
    """All ``2**len(pis)`` input vectors, packed into words.

    Vector ``v`` assigns PI ``i`` the value ``(v >> i) & 1``.  Raises for
    more than 22 inputs (64 MiB of words per signal) to avoid accidents.
    """
    n = len(pis)
    if n > 22:
        raise ValueError(f"exhaustive simulation of {n} inputs is too large")
    n_vectors = 1 << n
    n_words = max(1, n_vectors // WORD_BITS)
    words: Dict[str, np.ndarray] = {}
    for i, pi in enumerate(pis):
        arr = np.empty(n_words, dtype=np.uint64)
        if i < 6:
            pattern = _INTRA_WORD[i]
            if n_vectors < WORD_BITS:
                pattern = pattern & np.uint64((1 << n_vectors) - 1)
            arr[:] = pattern
        else:
            for j in range(n_words):
                arr[j] = _ALL_ONES if (j >> (i - 6)) & 1 else np.uint64(0)
        words[pi] = arr
    return words


def exhaustive_mask(n_inputs: int) -> np.ndarray:
    """Valid-vector mask matching :func:`exhaustive_words` (all bits valid
    except when fewer than 64 vectors exist)."""
    n_vectors = 1 << n_inputs
    if n_vectors >= WORD_BITS:
        return np.full(n_vectors // WORD_BITS, _ALL_ONES, dtype=np.uint64)
    return np.array([np.uint64((1 << n_vectors) - 1)], dtype=np.uint64)


def vectors_to_words(
    pis: Sequence[str], vectors: Sequence[Dict[str, int]]
) -> Dict[str, np.ndarray]:
    """Pack explicit vectors (dicts of 0/1 per PI) into word arrays."""
    n_words = (len(vectors) + WORD_BITS - 1) // WORD_BITS
    words = {pi: np.zeros(max(n_words, 1), dtype=np.uint64) for pi in pis}
    for v_idx, vector in enumerate(vectors):
        word, bit = divmod(v_idx, WORD_BITS)
        for pi in pis:
            if vector.get(pi, 0):
                words[pi][word] |= np.uint64(1) << np.uint64(bit)
    return words


def word_mask_for(n_vectors: int) -> np.ndarray:
    """Mask array with the first ``n_vectors`` bits set."""
    n_words = (n_vectors + WORD_BITS - 1) // WORD_BITS
    mask = np.full(max(n_words, 1), _ALL_ONES, dtype=np.uint64)
    rem = n_vectors % WORD_BITS
    if rem:
        mask[-1] = np.uint64((1 << rem) - 1)
    if n_vectors == 0:
        mask[:] = 0
    return mask
