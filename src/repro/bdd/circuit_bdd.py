"""Building BDDs for netlist signals and BDD-based equivalence.

Variable order is the netlist PI order (callers may pre-permute).  Since
ROBDD nodes are interned, two signals are functionally equivalent iff
their BDDs are the same object — the verification used by the paper's
BDD proof backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netlist.netlist import Netlist
from .bdd import BddBudgetExceeded, BddManager, BddNode

_NARY = {"AND", "NAND", "OR", "NOR", "XOR", "XNOR"}


def build_signal_bdds(
    net: Netlist,
    manager: Optional[BddManager] = None,
    var_order: Optional[Sequence[str]] = None,
    targets: Optional[Sequence[str]] = None,
) -> Dict[str, BddNode]:
    """BDDs for all (or the ``targets``' transitive-fanin) signals.

    Raises :class:`BddBudgetExceeded` if the manager budget is hit.
    """
    mgr = manager if manager is not None else BddManager()
    order = list(var_order) if var_order is not None else list(net.pis)
    if set(order) != set(net.pis):
        raise ValueError("var_order must be a permutation of the PIs")
    var_index = {pi: k for k, pi in enumerate(order)}
    needed = None
    if targets is not None:
        needed = set()
        for t in targets:
            needed |= net.transitive_fanin(t)
    bdds: Dict[str, BddNode] = {}
    for pi in net.pis:
        if needed is None or pi in needed:
            bdds[pi] = mgr.var(var_index[pi])
    for out in net.topo_order():
        if needed is not None and out not in needed:
            continue
        gate = net.gates[out]
        bdds[out] = _gate_bdd(mgr, gate, [bdds[s] for s in gate.inputs])
    return bdds


def _gate_bdd(mgr: BddManager, gate, ins: List[BddNode]) -> BddNode:
    name = gate.func.name
    if name in _NARY:
        return mgr.apply_many(name, ins)
    if name == "INV":
        return mgr.apply_not(ins[0])
    if name == "BUF":
        return ins[0]
    if name == "CONST0":
        return mgr.zero
    if name == "CONST1":
        return mgr.one
    if name == "AOI21":
        return mgr.apply_not(mgr.apply_or(mgr.apply_and(ins[0], ins[1]), ins[2]))
    if name == "OAI21":
        return mgr.apply_not(mgr.apply_and(mgr.apply_or(ins[0], ins[1]), ins[2]))
    if name == "AOI22":
        return mgr.apply_not(mgr.apply_or(
            mgr.apply_and(ins[0], ins[1]), mgr.apply_and(ins[2], ins[3])))
    if name == "OAI22":
        return mgr.apply_not(mgr.apply_and(
            mgr.apply_or(ins[0], ins[1]), mgr.apply_or(ins[2], ins[3])))
    if name == "MUX21":
        return mgr.ite(ins[2], ins[1], ins[0])
    if name == "MAJ3":
        ab = mgr.apply_and(ins[0], ins[1])
        ac = mgr.apply_and(ins[0], ins[2])
        bc = mgr.apply_and(ins[1], ins[2])
        return mgr.apply_or(ab, mgr.apply_or(ac, bc))
    if name == "ANDN":
        return mgr.apply_and(ins[0], mgr.apply_not(ins[1]))
    if name == "ORN":
        return mgr.apply_or(ins[0], mgr.apply_not(ins[1]))
    # Generic fallback: Shannon expansion over the truth table.
    return _table_bdd(mgr, gate.func, ins)


def _table_bdd(mgr: BddManager, func, ins: List[BddNode]) -> BddNode:
    table = func.truth_table(len(ins))

    def expand(prefix: int, k: int) -> BddNode:
        if k == len(ins):
            return mgr.one if table[prefix] else mgr.zero
        low = expand(prefix, k + 1)
        high = expand(prefix | (1 << k), k + 1)
        return mgr.ite(ins[k], high, low)

    return expand(0, 0)


def bdd_equivalent(
    left: Netlist,
    right: Netlist,
    po_indices: Optional[Sequence[int]] = None,
    max_nodes: int = 2_000_000,
) -> bool:
    """BDD verification of (selected) POs of two netlists.

    POs are compared positionally; PIs must agree as sets (the shared
    variable order is the left netlist's PI order).  Raises
    :class:`BddBudgetExceeded` if the node budget is hit.
    """
    if set(left.pis) != set(right.pis):
        raise ValueError("netlists have different PI sets")
    if len(left.pos) != len(right.pos):
        raise ValueError("netlists have different PO counts")
    indices = list(range(len(left.pos))) if po_indices is None else list(po_indices)
    mgr = BddManager(max_nodes=max_nodes)
    order = list(left.pis)
    l_targets = [left.pos[i] for i in indices]
    r_targets = [right.pos[i] for i in indices]
    l_bdds = build_signal_bdds(left, mgr, var_order=order, targets=l_targets)
    r_bdds = build_signal_bdds(right, mgr, var_order=order, targets=r_targets)
    return all(
        l_bdds[left.pos[i]] is r_bdds[right.pos[i]] for i in indices
    )
