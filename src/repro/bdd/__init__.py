"""ROBDD package and BDD-based circuit verification."""

from .bdd import BddBudgetExceeded, BddManager, BddNode
from .circuit_bdd import bdd_equivalent, build_signal_bdds

__all__ = [
    "BddBudgetExceeded", "BddManager", "BddNode",
    "bdd_equivalent", "build_signal_bdds",
]
