"""A reduced ordered binary decision diagram (ROBDD) package.

The paper's alternative PVCC proof backend: "the validity of a PVCC can
be checked by carrying out the circuit modification ... and performing a
BDD-based verification of the original circuit versus the modified
circuit.  For small and medium sized circuits, this method turned out to
consume less CPU time."  (Sec. 4)

Implementation: classic unique-table/computed-table ROBDD with ``ite``;
nodes are interned, so equivalence of functions is pointer equality.
A configurable node budget guards against exponential blowup — the
reason the paper keeps ATPG as the fallback for large circuits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class BddBudgetExceeded(Exception):
    """The node budget was exhausted while building BDDs."""


class BddNode:
    """Internal decision node; terminals are the manager's ZERO/ONE."""

    __slots__ = ("var", "low", "high", "_id")

    def __init__(self, var: int, low: "BddNode", high: "BddNode", _id: int):
        self.var = var
        self.low = low
        self.high = high
        self._id = _id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.var < 0:
            return "BDD(1)" if self is getattr(self, "high", None) else f"BDD(t{self._id})"
        return f"BDD(v{self.var})"


class BddManager:
    """Owns the unique table; all node construction goes through ``node``."""

    def __init__(self, max_nodes: int = 2_000_000):
        self.max_nodes = max_nodes
        self._next_id = 0
        self.zero = BddNode(-1, None, None, self._new_id())  # type: ignore[arg-type]
        self.one = BddNode(-1, None, None, self._new_id())  # type: ignore[arg-type]
        self.zero.low = self.zero.high = self.zero
        self.one.low = self.one.high = self.one
        self._unique: Dict[Tuple[int, int, int], BddNode] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BddNode] = {}
        self._vars: List[BddNode] = []

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @property
    def n_nodes(self) -> int:
        return len(self._unique) + 2

    # ------------------------------------------------------------------
    def var(self, index: int) -> BddNode:
        """BDD of input variable ``index`` (order = index order)."""
        while len(self._vars) <= index:
            v = len(self._vars)
            self._vars.append(self.node(v, self.zero, self.one))
        return self._vars[index]

    def node(self, var: int, low: BddNode, high: BddNode) -> BddNode:
        if low is high:
            return low
        key = (var, low._id, high._id)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self._unique) >= self.max_nodes:
            raise BddBudgetExceeded(self.max_nodes)
        made = BddNode(var, low, high, self._new_id())
        self._unique[key] = made
        return made

    # ------------------------------------------------------------------
    def ite(self, f: BddNode, g: BddNode, h: BddNode) -> BddNode:
        """if-then-else: f·g + f'·h — the universal connective."""
        if f is self.one:
            return g
        if f is self.zero:
            return h
        if g is h:
            return g
        if g is self.one and h is self.zero:
            return f
        key = (f._id, g._id, h._id)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(
            n.var for n in (f, g, h) if n.var >= 0
        )
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self.node(top, low, high)
        self._ite_cache[key] = result
        return result

    @staticmethod
    def _cofactors(f: BddNode, var: int) -> Tuple[BddNode, BddNode]:
        if f.var == var:
            return f.low, f.high
        return f, f

    # ------------------------------------------------------------------
    # boolean connectives
    # ------------------------------------------------------------------
    def apply_not(self, f: BddNode) -> BddNode:
        return self.ite(f, self.zero, self.one)

    def apply_and(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, g, self.zero)

    def apply_or(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, self.one, g)

    def apply_xor(self, f: BddNode, g: BddNode) -> BddNode:
        return self.ite(f, self.apply_not(g), g)

    def apply_many(self, op: str, operands: Iterable[BddNode]) -> BddNode:
        ops = list(operands)
        if not ops:
            raise ValueError("apply_many needs at least one operand")
        if op in ("AND", "NAND"):
            acc = ops[0]
            for nxt in ops[1:]:
                acc = self.apply_and(acc, nxt)
        elif op in ("OR", "NOR"):
            acc = ops[0]
            for nxt in ops[1:]:
                acc = self.apply_or(acc, nxt)
        elif op in ("XOR", "XNOR"):
            acc = ops[0]
            for nxt in ops[1:]:
                acc = self.apply_xor(acc, nxt)
        else:
            raise ValueError(f"unknown n-ary op {op!r}")
        if op in ("NAND", "NOR", "XNOR"):
            acc = self.apply_not(acc)
        return acc

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------
    def evaluate(self, f: BddNode, assignment: Dict[int, int]) -> int:
        node = f
        while node.var >= 0:
            node = node.high if assignment.get(node.var, 0) else node.low
        return 1 if node is self.one else 0

    def sat_count(self, f: BddNode, n_vars: int) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        cache: Dict[int, int] = {}

        def count(node: BddNode) -> Tuple[int, int]:
            # Returns (count, var_level) normalized to the node's level.
            if node is self.zero:
                return 0, n_vars
            if node is self.one:
                return 1, n_vars
            if node._id in cache:
                return cache[node._id], node.var
            c_low, lv_low = count(node.low)
            c_high, lv_high = count(node.high)
            total = (c_low << (lv_low - node.var - 1)) + \
                    (c_high << (lv_high - node.var - 1))
            cache[node._id] = total
            return total, node.var

        total, level = count(f)
        return total << level

    def any_sat(self, f: BddNode) -> Optional[Dict[int, int]]:
        """One satisfying assignment, or None for the zero function."""
        if f is self.zero:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node.var >= 0:
            if node.high is not self.zero:
                assignment[node.var] = 1
                node = node.high
            else:
                assignment[node.var] = 0
                node = node.low
        return assignment

    def size(self, f: BddNode) -> int:
        """Number of decision nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node._id in seen or node.var < 0:
                continue
            seen.add(node._id)
            stack.append(node.low)
            stack.append(node.high)
        return len(seen)
