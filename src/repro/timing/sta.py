"""Static timing analysis on mapped netlists.

Arrival times, required times, slacks, critical gates, and the
NCP (number of critical paths) metric used to rank substitutions in
Sec. 5.  Delays come from the technology library's genlib model:
``delay(pin) = block + drive * load(output)``, where a signal's load is
the sum of the input loads of its fanout pins (the paper maps with
``map -n 1``, i.e. the netlist is used as-is, no buffering).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..library.cells import TechLibrary
from ..netlist.netlist import Branch, Netlist

EPS = 1e-9


class Sta:
    """One timing snapshot of a netlist.  Rebuild after any edit."""

    def __init__(
        self,
        net: Netlist,
        library: TechLibrary,
        po_load: float = 1.0,
        input_arrival: Optional[Dict[str, float]] = None,
        eps: float = 1e-6,
    ):
        self.net = net
        self.library = library
        self.po_load = po_load
        self.eps = eps
        self.input_arrival = dict(input_arrival or {})
        self.load: Dict[str, float] = {}
        self.arrival: Dict[str, float] = {}
        self.required: Dict[str, float] = {}
        self.slack: Dict[str, float] = {}
        self._ncp: Optional[Dict[str, int]] = None
        self._compute()

    # ------------------------------------------------------------------
    def _compute(self) -> None:
        net, lib = self.net, self.library
        for sig in net.signals():
            total = self.po_load * net.pos.count(sig)
            for branch in net.fanouts(sig):
                total += lib.gate_input_load(net.gates[branch.gate], branch.pin)
            self.load[sig] = total
        for pi in net.pis:
            self.arrival[pi] = self.input_arrival.get(pi, 0.0)
        for out in net.topo_order():
            gate = net.gates[out]
            out_load = self.load[out]
            best = 0.0
            for pin, sig in enumerate(gate.inputs):
                d = lib.gate_pin_timing(gate, pin).delay(out_load)
                best = max(best, self.arrival[sig] + d)
            self.arrival[out] = best
        self.delay = max(
            (self.arrival[po] for po in net.pos), default=0.0
        )
        # Required times: POs must meet the current critical delay.
        for sig in net.signals():
            self.required[sig] = float("inf")
        for po in net.pos:
            self.required[po] = min(self.required[po], self.delay)
        for out in reversed(net.topo_order()):
            gate = net.gates[out]
            req_out = self.required[out]
            out_load = self.load[out]
            for pin, sig in enumerate(gate.inputs):
                d = lib.gate_pin_timing(gate, pin).delay(out_load)
                self.required[sig] = min(self.required[sig], req_out - d)
        for sig in net.signals():
            req = self.required[sig]
            self.slack[sig] = (
                req - self.arrival[sig] if req != float("inf") else float("inf")
            )

    # ------------------------------------------------------------------
    def edge_delay(self, branch: Branch) -> float:
        """Delay of the arc through ``branch`` (input pin -> gate output)."""
        gate = self.net.gates[branch.gate]
        return self.library.gate_pin_timing(gate, branch.pin).delay(
            self.load[branch.gate]
        )

    def is_critical(self, signal: str) -> bool:
        return self.slack.get(signal, float("inf")) <= self.eps

    def critical_signals(self) -> Set[str]:
        return {s for s in self.net.signals() if self.is_critical(s)}

    def critical_gates(self) -> List[str]:
        """Gate outputs with (near-)zero slack — the optimization targets."""
        return [s for s in self.net.topo_order() if self.is_critical(s)]

    def is_critical_edge(self, branch: Branch) -> bool:
        """True if the arc lies on some critical path."""
        out = branch.gate
        src = self.net.gates[out].inputs[branch.pin]
        if not (self.is_critical(out) and self.is_critical(src)):
            return False
        return abs(
            self.arrival[src] + self.edge_delay(branch) - self.arrival[out]
        ) <= self.eps

    # ------------------------------------------------------------------
    def ncp(self, signal: str) -> int:
        """Number of critical paths running through ``signal`` (Sec. 5)."""
        if self._ncp is None:
            self._ncp = self._count_critical_paths()
        return self._ncp.get(signal, 0)

    def ncp_edge(self, branch: Branch) -> int:
        """Number of critical paths through one fanout branch."""
        if self._ncp is None:
            self._ncp = self._count_critical_paths()
        if not self.is_critical_edge(branch):
            return 0
        src = self.net.gates[branch.gate].inputs[branch.pin]
        return self._fwd.get(src, 0) * self._bwd.get(branch.gate, 0)

    def ncp_of(self, ref) -> int:
        """NCP for a stem (str) or branch (:class:`Branch`) reference."""
        if isinstance(ref, Branch):
            return self.ncp_edge(ref)
        return self.ncp(ref)

    def _count_critical_paths(self) -> Dict[str, int]:
        net = self.net
        order = net.topo_order()
        fwd: Dict[str, int] = {}
        for pi in net.pis:
            fwd[pi] = 1 if self.is_critical(pi) else 0
        for out in order:
            if not self.is_critical(out):
                fwd[out] = 0
                continue
            gate = net.gates[out]
            total = 0
            for pin, src in enumerate(gate.inputs):
                if self.is_critical_edge(Branch(out, pin)):
                    total += fwd.get(src, 0)
            # A critical gate fed only by non-critical edges starts paths
            # itself only if it is a (constant) source; otherwise 0.
            fwd[out] = total if gate.inputs else (1 if self.is_critical(out) else 0)
        bwd: Dict[str, int] = {s: 0 for s in fwd}
        for po in net.pos:
            if abs(self.arrival.get(po, 0.0) - self.delay) <= self.eps:
                bwd[po] = bwd.get(po, 0) + 1
        for out in reversed(order):
            gate = net.gates[out]
            for pin, src in enumerate(gate.inputs):
                if self.is_critical_edge(Branch(out, pin)):
                    bwd[src] = bwd.get(src, 0) + bwd.get(out, 0)
        self._fwd, self._bwd = fwd, bwd
        return {s: fwd.get(s, 0) * bwd.get(s, 0) for s in fwd}

    # ------------------------------------------------------------------
    def report(self) -> str:
        crit = self.critical_gates()
        lines = [
            f"delay      : {self.delay:.3f}",
            f"gates      : {self.net.num_gates}",
            f"literals   : {self.net.num_literals}",
            f"area       : {self.library.netlist_area(self.net):.2f}",
            f"critical   : {len(crit)} gates",
        ]
        return "\n".join(lines)
