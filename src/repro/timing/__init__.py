"""Static timing analysis with library delays."""

from .paths import enumerate_critical_paths, longest_path, path_delay
from .sta import Sta

__all__ = ["Sta", "enumerate_critical_paths", "longest_path", "path_delay"]
