"""Static timing analysis with library delays."""

from .incremental import IncrementalSta
from .paths import enumerate_critical_paths, longest_path, path_delay
from .sta import Sta

__all__ = ["IncrementalSta", "Sta", "enumerate_critical_paths",
           "longest_path", "path_delay"]
