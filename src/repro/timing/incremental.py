"""Incremental static timing analysis.

GDO's inner loop (Sec. 5 of the paper) re-anchors slacks "after every
accepted modification".  Rebuilding a :class:`~repro.timing.sta.Sta`
from scratch for that walks the whole netlist, although a substitution
only perturbs timing in the transitive fanout of the edited signals
(arrival times) and the fanin side of the perturbed region (required
times).  :class:`IncrementalSta` keeps the annotation of one netlist
consistent across such edits by recomputing exactly those cones.

Invariants (see DESIGN.md, "Incremental engine"):

* ``dirty`` passed to :meth:`IncrementalSta.refresh` must contain every
  signal whose driving gate changed (function or inputs), every newly
  created signal, and every signal whose fanout set changed (gate pins
  reading it, or PO multiplicity).  :func:`repro.netlist.edit.dirty_between`
  derives such a set from a before/after netlist pair.
* All float updates re-run the same expressions :class:`Sta` uses on the
  same operands, and ``min``/``max`` are exact, so a refreshed
  annotation is bitwise identical to a from-scratch one — equality (not
  epsilon) comparisons drive the propagation cut-off.
* The propagation sweeps order their worklist by the topological
  positions of the last full computation.  Edits can put a few signals
  out of that order; the sweeps stay exact regardless because a signal
  whose value changes always re-queues its readers — stale positions
  cost at most a handful of re-evaluations, never correctness.
* The from-scratch fallback triggers when ``dirty`` is ``None`` (unknown
  edit) or covers more than ``scratch_fraction`` of the gates, and when
  the critical delay changed (required times then shift globally; they
  are rebuilt from the cached per-pin delays, which stays cheap).
* Trial edits whose dirty set touches a PI fanout cone root used to be
  invisible: the sweep re-anchors dirty PIs from ``input_arrival`` (and
  their loads feed no edge delay), which is exact but indistinguishable
  from a silent scratch fallback in the counters.
  :meth:`IncrementalSta.trial_event` is now the single classification
  point — ``"pi_root"`` trials stay on the dirty-cone path but are
  counted here and journaled by the GDO engine (``sta_pi_root``
  records); ``"dirty_fraction"`` trials take the from-scratch path and
  are journaled as ``sta_scratch``.
* With ``flat=True`` the from-scratch recomputes run the vectorized
  level-sweep of :mod:`repro.flat.flatsta` and convert the arrays back
  into the annotation dicts; the arrays are bitwise-identical to the
  dict recurrences, so everything downstream is unchanged.  Structures
  the flat view cannot express fall back to the dict pass per call
  (counted in ``flat_fallbacks``).
* Required times and slacks are *lazy*: a refresh invalidates them and
  the first access recomputes them from the cached per-pin delays.  GDO
  trial evaluation reads only arrival/delay, so rejected trials never
  pay for a backward pass.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..library.cells import TechLibrary
from ..netlist.netlist import Branch, Netlist
from ..obs.metrics import NULL_REGISTRY
from .sta import Sta

INF = float("inf")

#: histogram buckets for dirty-set sizes (signals)
_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: sentinel recorded by trial refreshes for keys that did not exist
_MISSING = object()

#: heap position for signals created after the last full computation;
#: they sort last, and change-driven re-queuing keeps the sweep exact
_LATE = float("inf")


class StaTrialUndo:
    """Undo token for one :meth:`IncrementalSta.refresh_trial`.

    Records the annotation entries the trial refresh overwrote (or, on a
    from-scratch fallback, the replaced dict references) so
    :meth:`apply` can restore the pre-trial annotation in O(touched).
    """

    def __init__(self, sta: "IncrementalSta"):
        self.sta = sta
        self.entries: List[Tuple[dict, str, object]] = []
        self.dict_refs: Optional[tuple] = None
        self.delay = sta.delay
        self.required_ref = sta._required
        self.slack_ref = sta._slack
        self.ncp_refs = (
            sta._ncp, getattr(sta, "_fwd", None), getattr(sta, "_bwd", None)
        )

    def record(self, d: dict, key: str) -> None:
        self.entries.append((d, key, d.get(key, _MISSING)))

    def apply(self) -> None:
        sta = self.sta
        if self.dict_refs is not None:
            (sta.load, sta.arrival, sta._pin_delays,
             sta._topo_pos) = self.dict_refs
        else:
            for d, key, old in reversed(self.entries):
                if old is _MISSING:
                    d.pop(key, None)
                else:
                    d[key] = old
        sta.delay = self.delay
        sta._required = self.required_ref
        sta._slack = self.slack_ref
        sta._ncp, sta._fwd, sta._bwd = self.ncp_refs


class IncrementalSta(Sta):
    """A :class:`Sta` that survives netlist edits via dirty-set refresh.

    Construction performs one full timing pass; afterwards
    :meth:`refresh` re-anchors the annotation after an in-place edit,
    :meth:`refresh_trial` does the same *undoably* (GDO's in-place trial
    evaluation), and :meth:`fork` derives the annotation of an edited
    *copy* of the netlist without a full recompute.

    The instance counts its own work in ``scratch_updates``,
    ``incremental_updates`` and ``signals_touched`` so callers can report
    scratch-vs-incremental ratios.
    """

    #: dirty fraction of the netlist above which a full rebuild is cheaper
    scratch_fraction = 0.5

    #: observability hook (re-pointed per run by the GDO engine); the
    #: shared null registry keeps standalone use silent and free
    metrics = NULL_REGISTRY

    def __init__(
        self,
        net: Netlist,
        library: TechLibrary,
        po_load: float = 1.0,
        input_arrival: Optional[Dict[str, float]] = None,
        eps: float = 1e-6,
        flat: bool = False,
    ):
        self.scratch_updates = 0
        self.incremental_updates = 0
        self.signals_touched = 0
        self.flat = flat
        self.flat_hits = 0
        self.flat_fallbacks = 0
        super().__init__(net, library, po_load=po_load,
                         input_arrival=input_arrival, eps=eps)

    # ------------------------------------------------------------------
    # lazy required/slack
    # ------------------------------------------------------------------
    @property
    def required(self) -> Dict[str, float]:
        if self._required is None:
            self._required_full()
        return self._required

    @required.setter
    def required(self, value: Dict[str, float]) -> None:
        self._required = value

    @property
    def slack(self) -> Dict[str, float]:
        if self._slack is None:
            self._required_full()
        return self._slack

    @slack.setter
    def slack(self, value: Dict[str, float]) -> None:
        self._slack = value

    # ------------------------------------------------------------------
    # full computation (overrides Sta._compute to cache per-pin delays)
    # ------------------------------------------------------------------
    def _compute(self) -> None:
        if self.flat and self._compute_flat():
            return
        self.scratch_updates += 1
        net, lib = self.net, self.library
        load: Dict[str, float] = {}
        arrival: Dict[str, float] = {}
        pin_delays: Dict[str, List[float]] = {}
        for sig in net.signals():
            total = self.po_load * net.pos.count(sig)
            for branch in net.fanouts(sig):
                total += lib.gate_input_load(net.gates[branch.gate], branch.pin)
            load[sig] = total
        for pi in net.pis:
            arrival[pi] = self.input_arrival.get(pi, 0.0)
        order = net.topo_order()
        for out in order:
            gate = net.gates[out]
            out_load = load[out]
            pd = [
                lib.gate_pin_timing(gate, pin).delay(out_load)
                for pin in range(gate.nin)
            ]
            pin_delays[out] = pd
            best = 0.0
            for pin, sig in enumerate(gate.inputs):
                t = arrival[sig] + pd[pin]
                if t > best:
                    best = t
            arrival[out] = best
        self.load = load
        self.arrival = arrival
        self._pin_delays = pin_delays
        self._topo_pos = {s: k for k, s in enumerate(order)}
        self.delay = max((arrival[po] for po in net.pos), default=0.0)
        self._required_full()
        self._ncp = None

    def _compute_flat(self) -> bool:
        """Vectorized full recompute via :mod:`repro.flat.flatsta`.

        Returns False (after counting the fallback) when the net has no
        flat representation; the caller then runs the dict pass.  The
        converted dicts are bitwise-identical to the dict pass, so the
        two paths are interchangeable mid-run.
        """
        from ..flat.flatsta import FlatTiming
        from ..flat.view import FlatView, FlatViewError

        try:
            view = FlatView.build(self.net, library=self.library)
            ft = FlatTiming(view, po_load=self.po_load,
                            input_arrival=self.input_arrival)
        except FlatViewError:
            self.flat_fallbacks += 1
            return False
        self.scratch_updates += 1
        self.flat_hits += 1
        self.load = ft.load_dict()
        self.arrival = ft.arrival_dict()
        self._pin_delays = ft.pin_delay_lists()
        self._topo_pos = {s: k for k, s in enumerate(view.gate_names)}
        self.delay = ft.delay
        self._required = ft.required_dict()
        self._slack = ft.slack_dict()
        self._ncp = None
        return True

    def _required_full(self) -> None:
        """Rebuild required/slack from cached pin delays (no library calls)."""
        net = self.net
        required: Dict[str, float] = {s: INF for s in net.signals()}
        for po in net.pos:
            if self.delay < required[po]:
                required[po] = self.delay
        pin_delays = self._pin_delays
        gates = net.gates
        for out in reversed(net.topo_order()):
            req_out = required[out]
            pd = pin_delays[out]
            for pin, sig in enumerate(gates[out].inputs):
                v = req_out - pd[pin]
                if v < required[sig]:
                    required[sig] = v
        arrival = self.arrival
        self._required = required
        self._slack = {
            s: (r - arrival[s]) if r != INF else INF
            for s, r in required.items()
        }

    # ------------------------------------------------------------------
    def edge_delay(self, branch: Branch) -> float:
        pd = self._pin_delays.get(branch.gate)
        if pd is not None and branch.pin < len(pd):
            return pd[branch.pin]
        return super().edge_delay(branch)

    # ------------------------------------------------------------------
    # incremental refresh
    # ------------------------------------------------------------------
    @classmethod
    def trial_event(cls, net: Netlist,
                    dirty: Set[str]) -> Optional[str]:
        """Classify a trial refresh of ``dirty`` (pre-filtered to live
        signals): ``"dirty_fraction"`` when the cone covers too much of
        the net (forces a from-scratch rebuild), ``"pi_root"`` when the
        edit touches a primary-input fanout cone root (handled in-cone
        — PI arrivals re-anchor from ``input_arrival`` inside the sweep
        — but counted and journaled), ``None`` for a plain cone
        refresh.

        Pure function of ``(net, dirty)``, so the GDO engine journals
        the trigger identically under every engine mode and worker
        count (see ``EngineContext.begin_trial``).
        """
        if len(dirty) > cls.scratch_fraction * (len(net.gates) or 1):
            return "dirty_fraction"
        for s in dirty:
            if net.is_pi(s):
                return "pi_root"
        return None

    def refresh(
        self,
        dirty: Optional[Iterable[str]] = None,
        removed: Iterable[str] = (),
    ) -> None:
        """Re-anchor the annotation after an edit of ``self.net``.

        ``dirty``/``removed`` follow the contract in the module
        docstring; ``dirty=None`` forces a from-scratch rebuild.
        """
        net = self.net
        if dirty is None:
            self.metrics.counter("sta_scratch_trigger",
                                 cause="unknown_edit").inc()
            self._compute()
            return
        dirty = {s for s in dirty if net.has_signal(s)}
        removed = [s for s in removed if not net.has_signal(s)]
        if not dirty and not removed:
            return
        self.metrics.histogram("sta_dirty_set",
                               buckets=_SIZE_BUCKETS).observe(len(dirty))
        if len(dirty) > self.scratch_fraction * (len(net.gates) or 1):
            self.metrics.counter("sta_scratch_trigger",
                                 cause="dirty_fraction").inc()
            self._compute()
            return
        self.incremental_updates += 1
        self._ncp = None
        stale = self._required is None
        load, arrival = self.load, self.arrival
        pin_delays = self._pin_delays
        for s in removed:
            load.pop(s, None)
            arrival.pop(s, None)
            pin_delays.pop(s, None)
            if not stale:
                self._required.pop(s, None)
                self._slack.pop(s, None)
        self._update_loads(dirty, None)
        changed_arr = self._forward(dirty, None)
        new_delay = max((arrival[po] for po in net.pos), default=0.0)
        if stale or new_delay != self.delay:
            # Required times shift globally with the critical delay; the
            # cached pin delays keep the full backward pass cheap.
            self.metrics.counter("sta_required_rebuild",
                                 cause="stale" if stale
                                 else "delay_shift").inc()
            self.delay = new_delay
            self._required_full()
            return
        changed_req = self._backward(dirty)
        required, slack = self._required, self._slack
        for s in changed_arr | changed_req:
            r = required.get(s, INF)
            slack[s] = (r - arrival[s]) if r != INF else INF

    def refresh_trial(
        self,
        dirty: Iterable[str],
        removed: Iterable[str] = (),
    ) -> StaTrialUndo:
        """Undoable refresh for an in-place *trial* edit of ``self.net``.

        Runs the forward (arrival) sweep only and invalidates
        required/slack — GDO's accept check reads arrival and delay, so
        most trials never pay for a backward pass (the first
        required/slack access after adoption recomputes them).  Returns
        an undo token restoring the pre-trial annotation exactly.
        """
        net = self.net
        dirty = {s for s in dirty if net.has_signal(s)}
        removed = [s for s in removed if not net.has_signal(s)]
        undo = StaTrialUndo(self)
        self._ncp = None
        self._required = None
        self._slack = None
        self.metrics.histogram("sta_dirty_set",
                               buckets=_SIZE_BUCKETS).observe(len(dirty))
        event = self.trial_event(net, dirty)
        if event == "dirty_fraction":
            self.metrics.counter("sta_scratch_trigger", cause=event).inc()
            undo.dict_refs = (
                self.load, self.arrival, self._pin_delays, self._topo_pos
            )
            self._compute()
            return undo
        if event == "pi_root":
            self.metrics.counter("sta_pi_root_trials").inc()
        self.incremental_updates += 1
        load, arrival, pin_delays = self.load, self.arrival, self._pin_delays
        for s in removed:
            if s in load:
                undo.entries.append((load, s, load.pop(s)))
            if s in arrival:
                undo.entries.append((arrival, s, arrival.pop(s)))
            if s in pin_delays:
                undo.entries.append((pin_delays, s, pin_delays.pop(s)))
        self._update_loads(dirty, undo)
        self._forward(dirty, undo)
        self.delay = max((arrival[po] for po in net.pos), default=0.0)
        return undo

    def _update_loads(self, dirty: Set[str],
                      undo: Optional[StaTrialUndo]) -> None:
        net, lib, load = self.net, self.library, self.load
        for s in dirty:
            total = self.po_load * net.pos.count(s)
            for branch in net.fanouts(s):
                total += lib.gate_input_load(net.gates[branch.gate], branch.pin)
            if undo is not None:
                undo.record(load, s)
            load[s] = total

    def _forward(self, dirty: Set[str],
                 undo: Optional[StaTrialUndo]) -> Set[str]:
        """Arrival sweep over the transitive fanout of ``dirty``."""
        net, lib = self.net, self.library
        load, arrival = self.load, self.arrival
        pin_delays = self._pin_delays
        pos = self._topo_pos
        heap = [(pos.get(s, _LATE), s) for s in dirty]
        heapq.heapify(heap)
        queued = set(dirty)
        changed: Set[str] = set()
        touched = 0
        while heap:
            _, s = heapq.heappop(heap)
            queued.discard(s)
            touched += 1
            gate = net.gates.get(s)
            if gate is None:  # primary input
                new = self.input_arrival.get(s, 0.0)
            else:
                out_load = load[s]
                pd = [
                    lib.gate_pin_timing(gate, pin).delay(out_load)
                    for pin in range(gate.nin)
                ]
                if undo is not None:
                    undo.record(pin_delays, s)
                pin_delays[s] = pd
                new = 0.0
                for pin, sig in enumerate(gate.inputs):
                    t = arrival.get(sig, 0.0) + pd[pin]
                    if t > new:
                        new = t
            if new != arrival.get(s):
                if undo is not None:
                    undo.record(arrival, s)
                arrival[s] = new
                changed.add(s)
                for branch in net.fanouts(s):
                    nxt = branch.gate
                    if nxt not in queued:
                        queued.add(nxt)
                        heapq.heappush(heap, (pos.get(nxt, _LATE), nxt))
        self.signals_touched += touched
        return changed

    def _backward(self, dirty: Set[str]) -> Set[str]:
        """Required sweep over the fanin side of the perturbed region.

        Only called when the critical delay is unchanged; seeds are the
        dirty signals (fanout edges changed) and the inputs of dirty
        gates (their edge delays changed with the output load).
        """
        net = self.net
        required = self._required
        pin_delays = self._pin_delays
        pos = self._topo_pos
        po_set = set(net.pos)
        seeds = set(dirty)
        for s in dirty:
            gate = net.gates.get(s)
            if gate is not None:
                seeds.update(gate.inputs)
        heap = [(-pos.get(s, _LATE), s) for s in seeds if net.has_signal(s)]
        heapq.heapify(heap)
        queued = set(seeds)
        changed: Set[str] = set()
        touched = 0
        while heap:
            _, s = heapq.heappop(heap)
            queued.discard(s)
            touched += 1
            new = INF
            for branch in net.fanouts(s):
                v = required.get(branch.gate, INF)
                if v != INF:
                    v -= pin_delays[branch.gate][branch.pin]
                if v < new:
                    new = v
            if s in po_set and self.delay < new:
                new = self.delay
            if new != required.get(s):
                required[s] = new
                changed.add(s)
                gate = net.gates.get(s)
                if gate is not None:
                    for sig in gate.inputs:
                        if sig not in queued:
                            queued.add(sig)
                            heapq.heappush(
                                heap, (-pos.get(sig, _LATE), sig))
        self.signals_touched += touched
        return changed

    # ------------------------------------------------------------------
    # derivation for trial copies
    # ------------------------------------------------------------------
    def fork(
        self,
        net: Netlist,
        dirty: Iterable[str],
        removed: Iterable[str] = (),
    ) -> "IncrementalSta":
        """Annotation of an edited copy ``net``, derived incrementally.

        The fork shares no mutable timing state with ``self`` (dicts are
        copied; cached pin-delay lists are replaced, never mutated), so
        either view can keep refreshing independently.
        """
        dup = IncrementalSta.__new__(IncrementalSta)
        dup.net = net
        dup.library = self.library
        dup.po_load = self.po_load
        dup.eps = self.eps
        dup.input_arrival = self.input_arrival
        dup.load = dict(self.load)
        dup.arrival = dict(self.arrival)
        dup._required = dict(self._required) if self._required is not None \
            else None
        dup._slack = dict(self._slack) if self._slack is not None else None
        dup._pin_delays = dict(self._pin_delays)
        dup._topo_pos = self._topo_pos
        dup.delay = self.delay
        dup._ncp = None
        dup.scratch_updates = 0
        dup.incremental_updates = 0
        dup.signals_touched = 0
        dup.flat = self.flat
        dup.flat_hits = 0
        dup.flat_fallbacks = 0
        dup.metrics = self.metrics
        dup.refresh(dirty, removed)
        return dup

    def rebind(self, net: Netlist) -> None:
        """Re-point at ``net`` after it adopted this annotation's netlist
        contents wholesale (same gates/PIs/POs objects)."""
        self.net = net
