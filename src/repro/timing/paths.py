"""Critical path extraction and enumeration."""

from __future__ import annotations

from typing import List

from ..netlist.netlist import Branch
from .sta import Sta


def longest_path(sta: Sta) -> List[str]:
    """One topologically-critical path, PO back to PI, returned PI-first."""
    net = sta.net
    end = max(net.pos, key=lambda po: sta.arrival.get(po, 0.0), default=None)
    if end is None:
        return []
    path = [end]
    current = end
    while current in net.gates:
        gate = net.gates[current]
        best_src, best_t = None, -1.0
        for pin, src in enumerate(gate.inputs):
            t = sta.arrival[src] + sta.edge_delay(Branch(current, pin))
            if t > best_t:
                best_src, best_t = src, t
        if best_src is None:
            break
        path.append(best_src)
        current = best_src
    path.reverse()
    return path


def enumerate_critical_paths(sta: Sta, limit: int = 100) -> List[List[str]]:
    """Up to ``limit`` complete critical paths (PI -> PO), DFS order."""
    net = sta.net
    paths: List[List[str]] = []
    ends = [
        po for po in net.pos
        if abs(sta.arrival.get(po, 0.0) - sta.delay) <= sta.eps
    ]

    def walk(sig: str, suffix: List[str]) -> None:
        if len(paths) >= limit:
            return
        suffix = [sig] + suffix
        if sig not in net.gates:
            paths.append(suffix)
            return
        gate = net.gates[sig]
        extended = False
        for pin, src in enumerate(gate.inputs):
            if sta.is_critical_edge(Branch(sig, pin)):
                extended = True
                walk(src, suffix)
                if len(paths) >= limit:
                    return
        if not extended:
            paths.append(suffix)

    for po in dict.fromkeys(ends):
        walk(po, [])
    return paths


def path_delay(sta: Sta, path: List[str]) -> float:
    """Arrival time accumulated along an explicit path."""
    if not path:
        return 0.0
    total = sta.arrival.get(path[0], 0.0) if path[0] in sta.net.pis else 0.0
    for prev, cur in zip(path, path[1:]):
        gate = sta.net.gates[cur]
        pin = gate.inputs.index(prev)
        total += sta.edge_delay(Branch(cur, pin))
    return total
