"""Levelized flat-array view of a netlist.

A :class:`FlatView` freezes one structure version of a
:class:`~repro.netlist.netlist.Netlist` into int-indexed numpy arrays:
signals are numbered PIs-first then gates in topological order (the
exact convention of :class:`~repro.sim.bitsim.BitSimulator`, so word
matrices are interchangeable between the two), gates carry function
code / arity / fanin columns, and evaluation is scheduled per
topological level in ``(code, arity)`` groups so a whole group is one
numpy call.

Staleness is keyed off ``Netlist._struct_version``: every mutator in
:mod:`repro.netlist.edit` runs through ``Netlist.invalidate()`` which
bumps the version, and the in-place trial machinery in
:mod:`repro.transform.substitution` bumps it explicitly on its
cache-patching undo path.  A view whose version no longer matches must
be rebuilt (:meth:`FlatView.is_current`); views are never patched
incrementally — rebuilding is one O(net) pass and edits between passes
are batched.

Structures the array form cannot express (non-singleton gate
functions, dangling inputs, undriven POs) raise :class:`FlatViewError`;
callers treat that as "fall back to the dict engine for this call".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from ..netlist.gatefunc import ALL_FUNCS, FUNC_BY_NAME

#: dense function codes, indexed into by the evaluation kernels
FUNC_CODES: Dict[str, int] = {f.name: i for i, f in enumerate(ALL_FUNCS)}

#: inverse of :data:`FUNC_CODES`
CODE_NAMES: Tuple[str, ...] = tuple(f.name for f in ALL_FUNCS)


class FlatViewError(Exception):
    """The netlist cannot be represented as flat arrays (callers fall
    back to the dict engine for the current call)."""


class FlatView:
    """Immutable flat-array snapshot of one netlist structure version.

    Attributes (``S`` = signals, ``G`` = gates, ``A`` = max arity):

    * ``names`` — signal name per index (PIs first, then topo order);
      ``index_of`` is the inverse map.  ``gate_names`` is
      ``names[n_pis:]`` and equals ``net.topo_order()``.
    * ``code``/``arity`` — ``(G,)`` int32 function code and input count
      per gate (gate ``k`` drives signal ``n_pis + k``).
    * ``fanin`` — ``(G, A)`` int64 signal indices, zero-padded past
      ``arity`` (padding is never read: evaluation slices ``[:, :a]``
      within same-arity groups).
    * ``level`` — ``(S,)`` int32 topological level (PIs are 0).
    * ``schedule`` — per level ``1..n_levels`` a list of
      ``(code, arity, rows)`` groups, ``rows`` being ascending gate
      (topo) positions.
    * CSR fanout: ``fo_ptr``/``fo_gate``/``fo_pin`` — reading gate pins
      per source signal.  Within one source the entries keep
      ``Netlist.fanout_map()`` construction order, so sequential float
      accumulation over them reproduces the dict engine's load sums
      bitwise (see :mod:`repro.flat.flatsta`).
    * ``po_rows`` — PO signal indices with multiplicity;
      ``po_count`` — per-signal PO multiplicity.
    * With a library: ``pin_block``/``pin_drive``/``pin_load`` —
      ``(G, A)`` float64 per-pin genlib constants, zero-padded.
    """

    def __init__(self) -> None:  # populated by build()
        self.net: Optional[Netlist] = None
        self.version = -1
        self.names: List[str] = []
        self.index_of: Dict[str, int] = {}
        self.n_pis = 0
        self.n_signals = 0
        self.n_gates = 0
        self.max_arity = 0
        self.n_levels = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, net: Netlist,
              library: Optional[TechLibrary] = None) -> "FlatView":
        view = cls()
        view.net = net
        view.version = net._struct_version
        index_of: Dict[str, int] = {}
        for pi in net.pis:
            index_of[pi] = len(index_of)
        order = net.topo_order()
        for sig in order:
            index_of[sig] = len(index_of)
        view.index_of = index_of
        view.names = list(net.pis) + order
        view.n_pis = len(net.pis)
        view.n_signals = len(index_of)
        view.n_gates = len(order)
        n_gates = view.n_gates

        max_arity = 0
        for sig in order:
            nin = net.gates[sig].nin
            if nin > max_arity:
                max_arity = nin
        view.max_arity = max_arity

        code = np.zeros(n_gates, dtype=np.int32)
        arity = np.zeros(n_gates, dtype=np.int32)
        fanin = np.zeros((n_gates, max(max_arity, 1)), dtype=np.int64)
        cells: List[Optional[str]] = []
        level = np.zeros(view.n_signals, dtype=np.int32)
        for k, sig in enumerate(order):
            gate = net.gates[sig]
            func = gate.func
            if FUNC_BY_NAME.get(func.name) is not func:
                raise FlatViewError(
                    f"gate {sig!r}: non-singleton function {func!r}")
            code[k] = FUNC_CODES[func.name]
            arity[k] = gate.nin
            lvl = 0
            for pin, s in enumerate(gate.inputs):
                idx = index_of.get(s)
                if idx is None:
                    raise FlatViewError(
                        f"gate {sig!r} reads undriven signal {s!r}")
                fanin[k, pin] = idx
                if level[idx] > lvl:
                    lvl = level[idx]
            level[view.n_pis + k] = lvl + 1
            cells.append(gate.cell)
        view.code = code
        view.arity = arity
        view.fanin = fanin
        view.cells = cells
        view.level = level
        view.n_levels = int(level.max()) if view.n_signals else 0

        # Per-level (code, arity) evaluation groups, rows ascending.
        schedule: List[List[Tuple[int, int, np.ndarray]]] = [
            [] for _ in range(view.n_levels + 1)
        ]
        groups: Dict[Tuple[int, int, int], List[int]] = {}
        for k in range(n_gates):
            key = (int(level[view.n_pis + k]), int(code[k]), int(arity[k]))
            groups.setdefault(key, []).append(k)
        for (lvl, c, a), rows in sorted(groups.items()):
            schedule[lvl].append((c, a, np.asarray(rows, dtype=np.int64)))
        view.schedule = schedule

        # CSR fanout in fanout_map construction order (stable sort keeps
        # each source's entries in gate-dict/pin order).
        src_l: List[int] = []
        gate_l: List[int] = []
        pin_l: List[int] = []
        for gate in net.gates.values():
            out_idx = index_of[gate.output]
            for pin, s in enumerate(gate.inputs):
                src_l.append(index_of[s])
                gate_l.append(out_idx)
                pin_l.append(pin)
        fo_src = np.asarray(src_l, dtype=np.int64)
        perm = np.argsort(fo_src, kind="stable")
        view.fo_src = fo_src[perm]
        view.fo_gate = np.asarray(gate_l, dtype=np.int64)[perm]
        view.fo_pin = np.asarray(pin_l, dtype=np.int64)[perm]
        counts = np.bincount(view.fo_src, minlength=view.n_signals)
        view.fo_ptr = np.concatenate(
            ([0], np.cumsum(counts))).astype(np.int64)

        po_rows_l = []
        for po in net.pos:
            idx = index_of.get(po)
            if idx is None:
                raise FlatViewError(f"primary output {po!r} is undriven")
            po_rows_l.append(idx)
        view.po_rows = np.asarray(po_rows_l, dtype=np.int64)
        view.po_count = np.bincount(
            view.po_rows, minlength=view.n_signals).astype(np.float64)

        if library is not None:
            pin_block = np.zeros((n_gates, max(max_arity, 1)))
            pin_drive = np.zeros((n_gates, max(max_arity, 1)))
            pin_load = np.zeros((n_gates, max(max_arity, 1)))
            for k, sig in enumerate(order):
                gate = net.gates[sig]
                for pin in range(gate.nin):
                    t = library.gate_pin_timing(gate, pin)
                    pin_block[k, pin] = t.block
                    pin_drive[k, pin] = t.drive
                    pin_load[k, pin] = library.gate_input_load(gate, pin)
            view.pin_block = pin_block
            view.pin_drive = pin_drive
            view.pin_load = pin_load
        else:
            view.pin_block = view.pin_drive = view.pin_load = None
        return view

    # ------------------------------------------------------------------
    def is_current(self, net: Optional[Netlist] = None) -> bool:
        """True if the view still describes ``net`` (default: the net it
        was built from) at its current structure version."""
        target = net if net is not None else self.net
        return target is self.net and self.version == target._struct_version

    def gate_row(self, signal: str) -> int:
        """Gate (topo) position of a gate-output signal."""
        return self.index_of[signal] - self.n_pis

    @property
    def gate_names(self) -> List[str]:
        return self.names[self.n_pis:]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FlatView(signals={self.n_signals}, gates={self.n_gates}, "
            f"levels={self.n_levels}, version={self.version})"
        )
