"""Vectorized static timing analysis over a :class:`FlatView`.

:class:`FlatTiming` runs the exact float recurrences of
:class:`~repro.timing.sta.Sta` (genlib ``block + drive * load`` pin
delays, arrival max-fold, required min-fold, slack) as per-level numpy
passes.  Bitwise identity with the dict engine holds because every
individual operation is reproduced on the same operands:

* a pin delay is one multiply then one add (numpy does not fuse);
* arrival is a fold of exact ``max`` — order-independent;
* required is a fold of exact ``min`` via ``np.minimum.at``;
* load sums are order-*dependent* float additions, so they accumulate
  via ``np.add.at`` over the view's CSR fanout entries, which preserve
  the dict engine's ``fanout_map`` construction order per signal.

:class:`~repro.timing.incremental.IncrementalSta` uses the full sweep
for its from-scratch recomputes (construction and scratch triggers);
:meth:`FlatTiming.update_input_arrivals` is the vectorized dirty-cone
path for boundary-condition changes on an unchanged structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .view import FlatView, FlatViewError

INF = float("inf")


class FlatTiming:
    """One timing annotation of a :class:`FlatView` (needs the view to
    be built with a library, for the per-pin delay columns)."""

    def __init__(
        self,
        view: FlatView,
        po_load: float = 1.0,
        input_arrival: Optional[Dict[str, float]] = None,
    ):
        if view.pin_block is None:
            raise FlatViewError(
                "FlatTiming needs a view built with a library")
        self.view = view
        self.po_load = po_load
        self.input_arrival = dict(input_arrival or {})
        self.load: np.ndarray
        self.arrival: np.ndarray
        self.required: np.ndarray
        self.slack: np.ndarray
        self.pin_delay: np.ndarray
        self.delay = 0.0
        self.compute()

    # ------------------------------------------------------------------
    def compute(self) -> None:
        view = self.view
        n_pis = view.n_pis
        # Loads: PO term is one multiply (as in Sta._compute), fanout
        # pin loads accumulate sequentially in CSR order = dict order.
        load = self.po_load * view.po_count
        if len(view.fo_src):
            entry_load = view.pin_load[view.fo_gate - n_pis, view.fo_pin]
            np.add.at(load, view.fo_src, entry_load)
        self.load = load

        arrival = np.zeros(view.n_signals)
        for i in range(n_pis):
            arrival[i] = self.input_arrival.get(view.names[i], 0.0)
        pin_delay = np.zeros_like(view.pin_block)
        for lvl in range(1, view.n_levels + 1):
            for _code, a, rows in view.schedule[lvl]:
                out_rows = rows + n_pis
                if a == 0:
                    arrival[out_rows] = 0.0
                    continue
                pd = view.pin_block[rows, :a] + \
                    view.pin_drive[rows, :a] * load[out_rows, np.newaxis]
                pin_delay[rows, :a] = pd
                t = arrival[view.fanin[rows, :a]] + pd
                arrival[out_rows] = np.maximum(t.max(axis=1), 0.0)
        self.arrival = arrival
        self.pin_delay = pin_delay
        self.delay = (
            float(arrival[view.po_rows].max()) if len(view.po_rows) else 0.0
        )
        self._backward()

    def _backward(self) -> None:
        """Required/slack from the current arrival, delay, pin delays."""
        view = self.view
        n_pis = view.n_pis
        required = np.full(view.n_signals, INF)
        if len(view.po_rows):
            np.minimum.at(required, view.po_rows, self.delay)
        for lvl in range(view.n_levels, 0, -1):
            for _code, a, rows in view.schedule[lvl]:
                if a == 0:
                    continue
                out_rows = rows + n_pis
                contrib = required[out_rows, np.newaxis] - \
                    self.pin_delay[rows, :a]
                np.minimum.at(
                    required, view.fanin[rows, :a].ravel(), contrib.ravel())
        self.required = required
        self.slack = np.where(
            required != INF, required - self.arrival, INF)

    # ------------------------------------------------------------------
    # dirty-cone recompute (unchanged structure, new boundary arrivals)
    # ------------------------------------------------------------------
    def update_input_arrivals(self, changes: Dict[str, float]) -> int:
        """Re-anchor after changing some primary-input arrival times.

        Propagates only through the changed PIs' fanout cone, level by
        level; required/slack are rebuilt from the (unchanged) pin
        delays.  Returns the number of signals whose arrival changed.
        Results are identical to a fresh :meth:`compute` with the new
        ``input_arrival`` because the per-signal expressions are the
        same and untouched signals cannot differ.
        """
        view = self.view
        n_pis = view.n_pis
        arrival = self.arrival
        dirty = np.zeros(view.n_signals, dtype=bool)
        for pi, value in changes.items():
            idx = view.index_of.get(pi)
            if idx is None or idx >= n_pis:
                raise FlatViewError(f"{pi!r} is not a primary input")
            self.input_arrival[pi] = value
            if arrival[idx] != value:
                arrival[idx] = value
                dirty[idx] = True
        touched = int(dirty.sum())
        for lvl in range(1, view.n_levels + 1):
            for _code, a, rows in view.schedule[lvl]:
                if a == 0:
                    continue
                hit = dirty[view.fanin[rows, :a]].any(axis=1)
                if not hit.any():
                    continue
                r = rows[hit]
                out_rows = r + n_pis
                t = arrival[view.fanin[r, :a]] + self.pin_delay[r, :a]
                new = np.maximum(t.max(axis=1), 0.0)
                changed = new != arrival[out_rows]
                arrival[out_rows] = new
                dirty[out_rows[changed]] = True
                touched += int(changed.sum())
        self.delay = (
            float(arrival[view.po_rows].max()) if len(view.po_rows) else 0.0
        )
        self._backward()
        return touched

    # ------------------------------------------------------------------
    # dict-engine interchange
    # ------------------------------------------------------------------
    def arrival_dict(self) -> Dict[str, float]:
        return dict(zip(self.view.names, self.arrival.tolist()))

    def required_dict(self) -> Dict[str, float]:
        return dict(zip(self.view.names, self.required.tolist()))

    def slack_dict(self) -> Dict[str, float]:
        return dict(zip(self.view.names, self.slack.tolist()))

    def load_dict(self) -> Dict[str, float]:
        return dict(zip(self.view.names, self.load.tolist()))

    def pin_delay_lists(self) -> Dict[str, List[float]]:
        """Per-gate pin-delay lists in ``IncrementalSta._pin_delays``
        form (row sliced to the gate's arity)."""
        view = self.view
        table = self.pin_delay.tolist()
        arity = view.arity.tolist()
        return {
            name: table[k][:arity[k]]
            for k, name in enumerate(view.gate_names)
        }
