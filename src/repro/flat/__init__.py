"""Levelized flat-array netlist kernels.

The dict-based :class:`~repro.netlist.netlist.Netlist` is the editing
substrate; this package compiles it into int-indexed numpy arrays (one
:class:`~repro.flat.view.FlatView` per structure version) and runs the
two numerically hottest GDO loops as vectorized matrix passes:

* :mod:`repro.flat.batchsim` — batched bit-parallel simulation and
  fault observability (the BPFS stage), all fault sites of a pass
  against all vectors at once;
* :mod:`repro.flat.flatsta` — the full arrival/required/slack sweep of
  static timing analysis over the level structure.

Every kernel is bitwise-identical to its dict-engine counterpart (the
contract ``tests/flat/test_differential.py`` enforces), so enabling
them (``GdoConfig.flat``) cannot change a single optimizer decision —
only how fast the decisions are computed.  Unsupported structures raise
:class:`~repro.flat.view.FlatViewError` and the callers fall back to
the dict engine per call, counted as ``flat_fallbacks``.
"""

from .view import FlatView, FlatViewError, FUNC_CODES
from .batchsim import FlatObservabilityEngine, batch_observability, flat_simulate
from .flatsta import FlatTiming

__all__ = [
    "FlatView",
    "FlatViewError",
    "FUNC_CODES",
    "FlatObservabilityEngine",
    "batch_observability",
    "flat_simulate",
    "FlatTiming",
]
