"""Batched bit-parallel simulation over a :class:`FlatView`.

Two kernels replace the clause-at-a-time python loops of the BPFS
stage:

* :func:`flat_simulate` — full-netlist simulation, one numpy call per
  ``(level, code, arity)`` group instead of one python iteration per
  gate;
* :func:`batch_observability` — stem/branch fault observability for a
  whole batch of fault sites at once: the base value matrix is
  broadcast per fault, each fault's site is flipped, and the level
  schedule is swept once over the 3-D ``(fault, signal, word)`` block.

Both produce bitwise-identical words to
:class:`~repro.sim.bitsim.BitSimulator` /
:class:`~repro.sim.observability.ObservabilityEngine` — bit operations
are exact, so any grouping/order is equivalent; the differential
harness in ``tests/flat/test_differential.py`` pins this.

:class:`FlatObservabilityEngine` plugs the batch kernel into the GDO
engine: it *prefetches* the observability rows of a pass's target list
in one batch and serves them from the standard row caches; anything
the batch could not cover (stale view, unsupported structure) falls
back to the inherited per-cone dict path, counted in
``flat_fallbacks``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netlist.netlist import Branch
from ..sim.bitsim import BitSimulator, SimState
from ..sim.observability import ObservabilityEngine
from .view import CODE_NAMES, FUNC_CODES, FlatView, FlatViewError

SignalRef = Union[str, Branch]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

_CODE_CONST0 = FUNC_CODES["CONST0"]
_CODE_CONST1 = FUNC_CODES["CONST1"]

#: memory budget for one observability chunk (bytes of uint64 values)
_CHUNK_BYTES = 256 << 20
#: hard cap on faults per chunk
_CHUNK_CAP = 64


def _eval_group(code: int, ins: np.ndarray) -> np.ndarray:
    """Evaluate one ``(code, arity)`` group.

    ``ins`` has shape ``(..., R, a, W)`` — the gathered fanin words of
    ``R`` same-function gates; the result drops the arity axis.  Each
    branch reproduces the corresponding ``GateFunc.eval_words`` with
    the input axis vectorized.
    """
    name = CODE_NAMES[code]
    if name == "BUF":
        return ins[..., 0, :].copy()
    if name == "INV":
        return ~ins[..., 0, :]
    if name == "AND":
        return np.bitwise_and.reduce(ins, axis=-2)
    if name == "NAND":
        return ~np.bitwise_and.reduce(ins, axis=-2)
    if name == "OR":
        return np.bitwise_or.reduce(ins, axis=-2)
    if name == "NOR":
        return ~np.bitwise_or.reduce(ins, axis=-2)
    if name == "XOR":
        return ins[..., 0, :] ^ ins[..., 1, :]
    if name == "XNOR":
        return ~(ins[..., 0, :] ^ ins[..., 1, :])
    a = ins[..., 0, :]
    if name == "AOI21":
        return ~((a & ins[..., 1, :]) | ins[..., 2, :])
    if name == "OAI21":
        return ~((a | ins[..., 1, :]) & ins[..., 2, :])
    if name == "AOI22":
        return ~((a & ins[..., 1, :]) | (ins[..., 2, :] & ins[..., 3, :]))
    if name == "OAI22":
        return ~((a | ins[..., 1, :]) & (ins[..., 2, :] | ins[..., 3, :]))
    if name == "MUX21":
        s = ins[..., 2, :]
        return (a & ~s) | (ins[..., 1, :] & s)
    if name == "MAJ3":
        b, c = ins[..., 1, :], ins[..., 2, :]
        return (a & b) | (a & c) | (b & c)
    if name == "ANDN":
        return a & ~ins[..., 1, :]
    if name == "ORN":
        return a | ~ins[..., 1, :]
    raise FlatViewError(f"no flat kernel for function {name!r}")


def _sweep_level(view: FlatView, values: np.ndarray, lvl: int) -> None:
    """Re-evaluate every gate of one level in ``values`` (last two axes
    are ``(signal, word)``; leading axes broadcast)."""
    n_pis = view.n_pis
    for code, a, rows in view.schedule[lvl]:
        out = rows + n_pis
        if code == _CODE_CONST0:
            values[..., out, :] = 0
        elif code == _CODE_CONST1:
            values[..., out, :] = _ALL_ONES
        else:
            ins = values[..., view.fanin[rows, :a], :]
            values[..., out, :] = _eval_group(code, ins)


def flat_simulate(view: FlatView,
                  pi_words: Dict[str, np.ndarray]) -> np.ndarray:
    """Full simulation; returns the ``(n_signals, n_words)`` uint64
    value matrix in the view's (= ``BitSimulator``'s) index order."""
    n_words = len(next(iter(pi_words.values()))) if pi_words else 1
    values = np.zeros((view.n_signals, n_words), dtype=np.uint64)
    for i in range(view.n_pis):
        values[i] = pi_words[view.names[i]]
    for lvl in range(1, view.n_levels + 1):
        _sweep_level(view, values, lvl)
    return values


def _seed_for(view: FlatView, base: np.ndarray,
              ref: SignalRef) -> Optional[Tuple[int, np.ndarray]]:
    """Fault seed ``(signal index, seeded word row)`` for one ref.

    Stem faults flip the signal's row; branch faults evaluate the sink
    gate with the one pin flipped (via the gate's own ``eval_words``,
    exactly the dict engine's arithmetic) and seed the sink output —
    or return ``None`` when the flip does not change the sink (the
    dict engine's empty-override case: observability is all-zero).
    """
    if isinstance(ref, Branch):
        net = view.net
        gate = net.gates[ref.gate]
        src = view.index_of[gate.inputs[ref.pin]]
        inputs = [
            ~base[src] if (pin == ref.pin) else base[view.index_of[s]]
            for pin, s in enumerate(gate.inputs)
        ]
        out_idx = view.index_of[ref.gate]
        new_out = gate.func.eval_words(inputs)
        if np.array_equal(new_out, base[out_idx]):
            return None
        return out_idx, new_out
    idx = view.index_of[ref]
    return idx, ~base[idx]


def batch_observability(
    view: FlatView,
    base: np.ndarray,
    refs: Sequence[SignalRef],
    chunk_bytes: int = _CHUNK_BYTES,
) -> List[np.ndarray]:
    """Observability word rows for ``refs``, all faults batched.

    ``base`` is the fault-free value matrix (``flat_simulate`` output
    or ``SimState.values`` — same layout).  Faults are sorted by seed
    level before chunking, so every chunk's sweep starts at its *own*
    minimum level — chunks of deep seeds skip the whole lower netlist
    instead of re-evaluating it unchanged (faults are independent, so
    regrouping cannot change a single word).  Per chunk the base matrix
    is broadcast per fault, fault sites are flipped, and levels above
    the chunk's lowest seed are re-swept for all faults at once; a seed
    whose own driver lives on a swept level is re-applied after that
    level so the re-evaluation cannot wash it out.  Returns one
    ``(n_words,)`` row per ref, in input order.
    """
    n_words = base.shape[1]
    per_fault = view.n_signals * n_words * 8
    chunk = max(1, min(_CHUNK_CAP, chunk_bytes // max(per_fault, 1)))
    po_rows = view.po_rows
    rows: List[Optional[np.ndarray]] = [None] * len(refs)
    # (seed level, input position, fault site row, seeded word row)
    seeded: List[Tuple[int, int, int, np.ndarray]] = []
    for pos, ref in enumerate(refs):
        seed = _seed_for(view, base, ref)
        if seed is None:
            # The flip does not change the sink gate: the dict engine's
            # empty-override case, observability identically zero.
            rows[pos] = np.zeros(n_words, dtype=np.uint64)
            continue
        idx, word = seed
        seeded.append((int(view.level[idx]), pos, idx, word))
    seeded.sort(key=lambda t: (t[0], t[1]))
    for lo in range(0, len(seeded), chunk):
        batch = seeded[lo:lo + chunk]
        f = len(batch)
        values3 = np.repeat(base[np.newaxis, :, :], f, axis=0)
        by_level: Dict[int, List[Tuple[int, int, np.ndarray]]] = {}
        for i, (lvl, _, idx, word) in enumerate(batch):
            values3[i, idx] = word
            by_level.setdefault(lvl, []).append((i, idx, word))
        start = batch[0][0]
        for lvl in range(max(start, 1), view.n_levels + 1):
            _sweep_level(view, values3, lvl)
            for i, idx, word in by_level.get(lvl, ()):
                values3[i, idx] = word
        if len(po_rows):
            diff = np.bitwise_or.reduce(
                values3[:, po_rows, :] ^ base[po_rows], axis=1)
        else:
            diff = np.zeros((f, n_words), dtype=np.uint64)
        for i, (_, pos, _, _) in enumerate(batch):
            rows[pos] = diff[i]
    return rows


class FlatObservabilityEngine(ObservabilityEngine):
    """Drop-in :class:`ObservabilityEngine` backed by the batch kernel.

    :meth:`prefetch` computes the rows of a pass's target refs in one
    3-D sweep and installs them in the inherited stem/branch caches;
    subsequent ``observability(ref)`` calls are cache hits.  Refs the
    flat path cannot serve (stale or unbuildable view) fall back to the
    inherited per-cone resimulation, so behaviour — and every word —
    is identical either way.  ``flat_hits``/``flat_fallbacks`` count
    batch-served rows vs. fallback events for the engine report.
    """

    def __init__(self, sim: BitSimulator, state: SimState,
                 view: Optional[FlatView] = None):
        super().__init__(sim, state)
        self._view = view
        self.flat_hits = 0
        self.flat_fallbacks = 0

    def _current_view(self) -> FlatView:
        view = self._view
        net = self.sim.net
        if view is None or not view.is_current(net):
            view = FlatView.build(net)
            if view.names != list(self.sim.index_of):
                # The sim snapshot predates a structural edit; its word
                # matrix no longer lines up with the live structure.
                raise FlatViewError("sim snapshot is stale vs. netlist")
            self._view = view
        return view

    def prefetch(self, refs: Iterable[SignalRef]) -> None:
        """Batch-compute the rows for ``refs`` into the caches."""
        todo: List[SignalRef] = []
        seen = set()
        for ref in refs:
            key = (ref.gate, ref.pin) if isinstance(ref, Branch) else ref
            if key in seen:
                continue
            cache = (self._branch_cache if isinstance(ref, Branch)
                     else self._stem_cache)
            if key not in cache:
                seen.add(key)
                todo.append(ref)
        if not todo:
            return
        try:
            view = self._current_view()
            rows = batch_observability(view, self.state.values, todo)
        except FlatViewError:
            self.flat_fallbacks += 1
            return  # lazy dict path serves the rows instead
        for ref, row in zip(todo, rows):
            if isinstance(ref, Branch):
                self._branch_cache[(ref.gate, ref.pin)] = row
            else:
                self._stem_cache[ref] = row
        # The lazy path would have derived exactly these rows one cone
        # at a time, so count them in ``computed`` as well — engine
        # counters stay comparable between flat on and off.
        self.computed += len(todo)
        self.flat_hits += len(todo)
