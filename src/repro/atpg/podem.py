"""PODEM structural test pattern generation.

A classic path-oriented decision-making ATPG over a composite
(good, faulty) three-valued simulation.  PODEM decides values on primary
inputs only, chosen by backtracing objectives through X-paths, and is
complete: if the PI decision tree is exhausted without a test, the fault
is redundant.

The SAT backend (:mod:`repro.atpg.satatpg`) is the default in GDO; PODEM
is kept as the structural alternative in the spirit of the test-area
techniques the paper builds on, and as a cross-check in the test suite.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..netlist.gatefunc import GateFunc
from ..netlist.netlist import Branch, Netlist
from .faults import Fault
from .satatpg import AtpgResult

X = None  # unknown in the 3-valued domain {0, 1, X}
Val = Optional[int]


class _Composite:
    """Per-signal (good, faulty) 3-valued values."""

    __slots__ = ("good", "faulty")

    def __init__(self) -> None:
        self.good: Dict[str, Val] = {}
        self.faulty: Dict[str, Val] = {}


def _ternary_eval(func: GateFunc, ins: List[Val]) -> Val:
    """Output value set of ``func`` over all completions of X inputs."""
    name = func.name
    if name in ("AND", "NAND"):
        if any(v == 0 for v in ins):
            out = 0
        elif all(v == 1 for v in ins):
            out = 1
        else:
            return X
        return out ^ 1 if name == "NAND" else out
    if name in ("OR", "NOR"):
        if any(v == 1 for v in ins):
            out = 1
        elif all(v == 0 for v in ins):
            out = 0
        else:
            return X
        return out ^ 1 if name == "NOR" else out
    if name == "INV":
        return X if ins[0] is X else ins[0] ^ 1
    if name == "BUF":
        return ins[0]
    if name == "CONST0":
        return 0
    if name == "CONST1":
        return 1
    # Generic: enumerate completions of the X inputs (arity <= 4).
    xs = [k for k, v in enumerate(ins) if v is X]
    seen = set()
    for combo in itertools.product((0, 1), repeat=len(xs)):
        full = list(ins)
        for k, val in zip(xs, combo):
            full[k] = val
        seen.add(func.eval_bits(full))
        if len(seen) == 2:
            return X
    return seen.pop()


_CONTROLLING = {"AND": 0, "NAND": 0, "OR": 1, "NOR": 1}
_INVERTING = {"INV", "NAND", "NOR", "XNOR", "AOI21", "AOI22", "OAI21", "OAI22"}


class PodemEngine:
    """One PODEM run per :meth:`generate` call."""

    def __init__(self, net: Netlist, max_backtracks: int = 10_000):
        self.net = net
        self.max_backtracks = max_backtracks
        self._order = net.topo_order()

    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> AtpgResult:
        """Find a test for ``fault``, prove redundancy, or abort."""
        self.fault = fault
        self.site_signal = fault.signal(self.net)
        self.pi_assign: Dict[str, int] = {}
        backtracks = 0
        # Decision stack: (pi, value, both_tried)
        stack: List[Tuple[str, int, bool]] = []
        while True:
            vals = self._imply()
            status = self._status(vals)
            if status == "test":
                test = {pi: self.pi_assign.get(pi, 0) for pi in self.net.pis}
                return AtpgResult("testable", test=test)
            if status == "open":
                target = self._objective(vals)
                if target is not None:
                    pi, value = self._backtrace(vals, *target)
                    if pi not in self.pi_assign:
                        stack.append((pi, value, False))
                        self.pi_assign[pi] = value
                        continue
                status = "fail"  # no (new) objective reachable
            # status == "fail": undo decisions.
            while stack and stack[-1][2]:
                pi, _value, _ = stack.pop()
                del self.pi_assign[pi]
            if not stack:
                return AtpgResult("redundant")
            pi, value, _ = stack.pop()
            backtracks += 1
            if backtracks > self.max_backtracks:
                return AtpgResult("aborted")
            stack.append((pi, value ^ 1, True))
            self.pi_assign[pi] = value ^ 1

    # ------------------------------------------------------------------
    def _imply(self) -> _Composite:
        """Forward 3-valued simulation of good and faulty machines."""
        vals = _Composite()
        fault = self.fault
        for pi in self.net.pis:
            v = self.pi_assign.get(pi, X)
            vals.good[pi] = v
            vals.faulty[pi] = v
        if not isinstance(fault.site, Branch) and self.net.is_pi(fault.site):
            vals.faulty[fault.site] = fault.value
        for out in self._order:
            gate = self.net.gates[out]
            g_ins = [vals.good[s] for s in gate.inputs]
            f_ins = [vals.faulty[s] for s in gate.inputs]
            if isinstance(fault.site, Branch) and fault.site.gate == out:
                f_ins[fault.site.pin] = fault.value
            vals.good[out] = _ternary_eval(gate.func, g_ins)
            f_out = _ternary_eval(gate.func, f_ins)
            if not isinstance(fault.site, Branch) and fault.site == out:
                f_out = fault.value
            vals.faulty[out] = f_out
        return vals

    def _status(self, vals: _Composite) -> str:
        """'test' (difference at a PO), 'fail' (provably hopeless under
        the current assignment), or 'open'."""
        for po in self.net.pos:
            g, f = vals.good[po], vals.faulty[po]
            if g is not X and f is not X and g != f:
                return "test"
        g_site = vals.good[self.site_signal]
        if g_site is not X and g_site == self.fault.value:
            return "fail"  # fault cannot be excited any more
        if g_site is X:
            return "open"  # still working on activation
        if not self._d_frontier(vals) and not self._po_may_differ(vals):
            return "fail"
        return "open"

    def _po_may_differ(self, vals: _Composite) -> bool:
        return any(
            vals.good[po] is X or vals.faulty[po] is X for po in self.net.pos
        )

    def _d_frontier(self, vals: _Composite) -> List[str]:
        """Gates whose output is X but some input carries the fault
        difference."""
        frontier = []
        for out in self._order:
            if vals.good[out] is not X and vals.faulty[out] is not X:
                continue
            gate = self.net.gates[out]
            for pin, sig in enumerate(gate.inputs):
                g, f = vals.good[sig], vals.faulty[sig]
                if isinstance(self.fault.site, Branch) and \
                        self.fault.site == Branch(out, pin):
                    f = self.fault.value
                if g is not X and f is not X and g != f:
                    frontier.append(out)
                    break
        return frontier

    def _objective(self, vals: _Composite) -> Optional[Tuple[str, int]]:
        g_site = vals.good[self.site_signal]
        if g_site is X:
            return self.site_signal, self.fault.value ^ 1
        for out in self._d_frontier(vals):
            gate = self.net.gates[out]
            ctrl = _CONTROLLING.get(gate.func.name)
            noncontrolling = ctrl ^ 1 if ctrl is not None else 0
            for sig in gate.inputs:
                # An input that is X in either machine can still be
                # driven by PI decisions; good-X preferred.
                if vals.good[sig] is X or vals.faulty[sig] is X:
                    return sig, noncontrolling
        return None

    def _backtrace(self, vals: _Composite, signal: str,
                   value: int) -> Tuple[str, int]:
        """Walk back from an objective to an unassigned PI."""
        current, want = signal, value
        guard = 0
        while not self.net.is_pi(current):
            guard += 1
            if guard > len(self.net.gates) + len(self.net.pis) + 1:
                raise RuntimeError("backtrace did not reach a PI")
            gate = self.net.gates[current]
            if gate.func.name in _INVERTING:
                want ^= 1
            chosen = None
            for sig in gate.inputs:
                if vals.good[sig] is X:
                    chosen = sig
                    break
            if chosen is None:
                for sig in gate.inputs:
                    if vals.faulty[sig] is X:
                        chosen = sig
                        break
            if chosen is None:
                # Shouldn't happen: an X output has an X input.
                chosen = gate.inputs[0]
            current = chosen
        return current, want


def podem_generate(net: Netlist, fault: Fault,
                   max_backtracks: int = 10_000) -> AtpgResult:
    """Convenience wrapper: one PODEM test-generation run."""
    return PodemEngine(net, max_backtracks=max_backtracks).generate(fault)
