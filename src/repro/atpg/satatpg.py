"""SAT-based automatic test pattern generation (after Larrabee [9]).

A test for a stuck-at fault exists iff the miter of the fault-free
circuit against the fault-injected circuit is satisfiable; the satisfying
assignment restricted to the PIs *is* the test.  Untestable = redundant.

Only the primary outputs in the fault's transitive fanout participate in
the miter, which keeps queries local.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..netlist.netlist import Branch, Netlist
from ..sat.miter import build_miter_cnf
from ..sat.solver import Solver, SolverBudgetExceeded
from .faults import Fault, inject_fault


class AtpgResult:
    """Outcome of one test-generation query."""

    def __init__(self, status: str, test: Optional[Dict[str, int]] = None,
                 conflicts: int = 0):
        if status not in ("testable", "redundant", "aborted"):
            raise ValueError(f"bad ATPG status {status!r}")
        self.status = status
        self.test = test
        self.conflicts = conflicts

    @property
    def redundant(self) -> bool:
        return self.status == "redundant"

    @property
    def testable(self) -> bool:
        return self.status == "testable"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtpgResult({self.status})"


def affected_po_indices(net: Netlist, fault: Fault) -> List[int]:
    """Indices of POs reachable from the fault site."""
    if isinstance(fault.site, Branch):
        root = fault.site.gate
    else:
        root = fault.site
    tfo = net.transitive_fanout(root, include_self=True)
    if not isinstance(fault.site, Branch):
        tfo.add(root)
    return [i for i, po in enumerate(net.pos) if po in tfo]


def generate_test(
    net: Netlist,
    fault: Fault,
    max_conflicts: Optional[int] = 200_000,
) -> AtpgResult:
    """Generate a test vector for ``fault`` or prove it redundant."""
    po_idx = affected_po_indices(net, fault)
    if not po_idx:
        return AtpgResult("redundant")
    faulty = inject_fault(net, fault)
    cnf, pi_vars = build_miter_cnf(net, faulty, po_indices=po_idx)
    solver = Solver()
    solver.add_cnf(cnf)
    try:
        result = solver.solve(max_conflicts=max_conflicts)
    except SolverBudgetExceeded:
        return AtpgResult("aborted", conflicts=solver.conflicts)
    if not result.sat:
        return AtpgResult("redundant", conflicts=result.conflicts)
    test = {pi: int(result.value(var)) for pi, var in pi_vars.items()}
    return AtpgResult("testable", test=test, conflicts=result.conflicts)


def is_redundant(net: Netlist, fault: Fault,
                 max_conflicts: Optional[int] = 200_000) -> bool:
    """True iff the fault is provably untestable."""
    return generate_test(net, fault, max_conflicts=max_conflicts).redundant
