"""Redundancy identification and removal.

Valid C1-clauses correspond to stuck-at redundant faults (Sec. 3): the
clause ``(~Oa + a)`` is valid iff ``a`` stuck-at-1 is untestable, in
which case the connection may be tied to 1 and the netlist simplified
[Bryan/Brglez/Lisanke].  This module implements the classic loop:
simulate to drop testable faults cheaply, prove the rest with ATPG,
remove one redundancy, repeat (removals can create new redundancies).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..netlist.edit import propagate_constants, prune_dangling, set_branch_constant
from ..netlist.netlist import Branch, Netlist
from ..sim.bitsim import BitSimulator
from ..sim.observability import ObservabilityEngine
from .faults import Fault
from .satatpg import is_redundant


def candidate_redundancies(
    net: Netlist, n_words: int = 8, seed: int = 0
) -> List[Fault]:
    """Branch faults not refuted by random simulation (potential C1s).

    A branch fault ``a`` stuck-at-v is untestable iff every vector has
    ``Oa = 0`` or ``a = v`` — exactly validity of the C1-clause.  Random
    vectors discard the overwhelming majority of testable faults.
    """
    sim = BitSimulator(net)
    state = sim.simulate_random(n_words=n_words, seed=seed)
    obs = ObservabilityEngine(sim, state)
    survivors: List[Fault] = []
    for sig in net.signals():
        for branch in net.fanouts(sig):
            o_word = obs.branch_observability(branch)
            value = state.word(sig)
            # stuck-at-1 candidate: observable vectors all have a = 1.
            if not np.any(o_word & ~value):
                survivors.append(Fault(branch, 1))
            # stuck-at-0 candidate: observable vectors all have a = 0.
            if not np.any(o_word & value):
                survivors.append(Fault(branch, 0))
    return survivors


def remove_redundancy(net: Netlist, fault: Fault) -> None:
    """Apply one proven redundancy: tie the branch to the stuck value and
    clean up constants and dangling logic."""
    if not isinstance(fault.site, Branch):
        raise ValueError("redundancy removal operates on branch faults")
    set_branch_constant(net, fault.site, fault.value)
    propagate_constants(net)
    prune_dangling(net)


def remove_all_redundancies(
    net: Netlist,
    n_words: int = 8,
    seed: int = 0,
    max_rounds: int = 50,
    max_conflicts: Optional[int] = 50_000,
    on_removal: Optional[Callable[[Fault], None]] = None,
) -> int:
    """Iteratively remove provable redundancies; returns the count.

    One proven redundancy is removed per ATPG round (removals invalidate
    other candidates), then candidates are recomputed — the standard
    redundancy-removal fixpoint.
    """
    removed = 0
    for round_no in range(max_rounds):
        progress = False
        for fault in candidate_redundancies(net, n_words=n_words,
                                            seed=seed + round_no):
            if not isinstance(fault.site, Branch):
                continue
            gate = net.gates.get(fault.site.gate)
            if gate is None or fault.site.pin >= gate.nin:
                continue  # invalidated by a previous removal this round
            if is_redundant(net, fault, max_conflicts=max_conflicts):
                remove_redundancy(net, fault)
                removed += 1
                progress = True
                if on_removal is not None:
                    on_removal(fault)
                break  # recompute candidates after a structural change
        if not progress:
            break
    return removed
