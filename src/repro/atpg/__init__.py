"""ATPG: stuck-at faults, SAT-based and PODEM test generation,
redundancy identification/removal."""

from .campaign import CampaignResult, compact_tests, fault_simulate, run_campaign
from .faults import Fault, full_fault_list, inject_fault
from .podem import PodemEngine, podem_generate
from .redundancy import (
    candidate_redundancies, remove_all_redundancies, remove_redundancy,
)
from .satatpg import AtpgResult, affected_po_indices, generate_test, is_redundant

__all__ = [
    "CampaignResult", "compact_tests", "fault_simulate", "run_campaign",
    "Fault", "full_fault_list", "inject_fault",
    "PodemEngine", "podem_generate",
    "candidate_redundancies", "remove_all_redundancies", "remove_redundancy",
    "AtpgResult", "affected_po_indices", "generate_test", "is_redundant",
]
