"""Full ATPG campaigns: fault coverage, test-set generation, compaction.

The paper "generalizes techniques which originated in the test area";
this module provides the test-area workflow itself: run ATPG over the
complete (collapsed) stuck-at fault list, fault-simulate each new test
word-parallel to drop covered faults, and reverse-order compact the
resulting test set.  Used by the benchmarks to characterize how
redundancy-rich the generated circuits are — the quantity GDO feeds on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..netlist.netlist import Branch, Netlist
from ..sim.bitsim import BitSimulator
from ..sim.vectors import vectors_to_words, word_mask_for
from .faults import Fault, full_fault_list
from .satatpg import generate_test


@dataclass
class CampaignResult:
    """Outcome of one ATPG campaign."""

    total_faults: int = 0
    detected: int = 0
    redundant: int = 0
    aborted: int = 0
    tests: List[Dict[str, int]] = field(default_factory=list)
    redundant_faults: List[Fault] = field(default_factory=list)
    cpu_seconds: float = 0.0

    @property
    def coverage(self) -> float:
        testable = self.total_faults - self.redundant
        return 1.0 if testable == 0 else self.detected / testable

    @property
    def redundancy_ratio(self) -> float:
        return 0.0 if not self.total_faults else \
            self.redundant / self.total_faults


def fault_simulate(
    net: Netlist, tests: List[Dict[str, int]], faults: List[Fault]
) -> List[Fault]:
    """Faults from ``faults`` detected by ``tests`` (bit-parallel).

    All tests are packed into words and simulated once per fault via
    cone resimulation — classic parallel-pattern single-fault
    propagation.
    """
    if not tests or not faults:
        return []
    sim = BitSimulator(net)
    words = vectors_to_words(net.pis, tests)
    state = sim.simulate(words)
    mask = word_mask_for(len(tests))
    detected: List[Fault] = []
    for fault in faults:
        signal = fault.signal(net)
        base = state.word(signal)
        stuck = np.full_like(
            base,
            np.uint64(0xFFFFFFFFFFFFFFFF) if fault.value else np.uint64(0),
        )
        if isinstance(fault.site, Branch):
            sink = (sim.index_of[fault.site.gate], fault.site.pin)
            overrides = sim.resimulate_cone(state, signal, stuck,
                                            sink_filter=sink)
        else:
            if np.array_equal(stuck & mask, base & mask):
                continue  # never activated by these tests
            overrides = sim.resimulate_cone(state, signal, stuck)
        diff = sim.po_difference(state, overrides) & mask
        if diff.any():
            detected.append(fault)
    return detected


def run_campaign(
    net: Netlist,
    faults: Optional[List[Fault]] = None,
    max_conflicts: Optional[int] = 100_000,
    drop_by_simulation: bool = True,
) -> CampaignResult:
    """ATPG for every fault: generate tests, fault-simulate to drop
    covered faults, classify the rest."""
    start = time.perf_counter()
    remaining = list(faults if faults is not None else full_fault_list(net))
    result = CampaignResult(total_faults=len(remaining))
    while remaining:
        fault = remaining.pop(0)
        atpg = generate_test(net, fault, max_conflicts=max_conflicts)
        if atpg.redundant:
            result.redundant += 1
            result.redundant_faults.append(fault)
            continue
        if atpg.status == "aborted":
            result.aborted += 1
            continue
        result.detected += 1
        result.tests.append(atpg.test)
        if drop_by_simulation and remaining:
            covered = set(
                id(f) for f in fault_simulate(net, [atpg.test], remaining)
            )
            if covered:
                kept = []
                for f in remaining:
                    if id(f) in covered:
                        result.detected += 1
                    else:
                        kept.append(f)
                remaining = kept
    result.cpu_seconds = time.perf_counter() - start
    return result


def compact_tests(
    net: Netlist, tests: List[Dict[str, int]],
    faults: Optional[List[Fault]] = None,
) -> List[Dict[str, int]]:
    """Reverse-order test compaction: drop tests whose faults are all
    covered by the kept set."""
    fault_list = list(faults if faults is not None else full_fault_list(net))
    testable = set(
        id(f) for f in fault_simulate(net, tests, fault_list)
    )
    kept: List[Dict[str, int]] = []
    covered: set = set()
    for test in reversed(tests):
        newly = {
            id(f) for f in fault_simulate(net, [test], fault_list)
            if id(f) in testable
        }
        if newly - covered:
            kept.append(test)
            covered |= newly
        if covered >= testable:
            break
    kept.reverse()
    return kept
