"""Stuck-at fault model.

A fault site is either a *stem* (a gate output / PI signal) or a
*branch* (one fanout pin), matching the signal taxonomy of Sec. 2.  A
stuck-at fault that no input vector can test is *redundant* — the
paper's C1-clauses: ``(~Oa + a)`` valid  <=>  ``a`` stuck-at-1 redundant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..netlist.netlist import Branch, Netlist


@dataclass(frozen=True)
class Fault:
    """Stuck-at fault: ``site`` stuck at ``value``.

    ``site`` is a signal name (stem fault) or a :class:`Branch`
    (branch fault on one fanout pin).
    """

    site: Union[str, Branch]
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    @property
    def is_branch(self) -> bool:
        return isinstance(self.site, Branch)

    def signal(self, net: Netlist) -> str:
        """The signal whose value the fault perturbs."""
        if isinstance(self.site, Branch):
            return net.gates[self.site.gate].inputs[self.site.pin]
        return self.site

    def describe(self, net: Optional[Netlist] = None) -> str:
        if isinstance(self.site, Branch):
            where = f"{self.site.gate}.pin{self.site.pin}"
            if net is not None:
                where += f"({self.signal(net)})"
        else:
            where = str(self.site)
        return f"{where} stuck-at-{self.value}"


def full_fault_list(net: Netlist, collapse: bool = True) -> List[Fault]:
    """All stuck-at faults of the netlist.

    Stem faults on every signal; branch faults on every pin of
    multi-fanout signals (single-fanout pins are equivalent to their stem
    fault and skipped when ``collapse``).
    """
    faults: List[Fault] = []
    for sig in net.signals():
        for value in (0, 1):
            faults.append(Fault(sig, value))
        branches = net.fanouts(sig)
        multi = len(branches) + (1 if net.is_po(sig) else 0) > 1
        if multi or not collapse:
            for branch in branches:
                for value in (0, 1):
                    faults.append(Fault(branch, value))
    return faults


def inject_fault(net: Netlist, fault: Fault) -> Netlist:
    """A copy of ``net`` with the fault hard-wired (for fault simulation
    and miter-based test generation)."""
    from ..netlist.netlist import constant_signal

    faulty = net.copy(name=f"{net.name}__{fault.describe()}")
    const = constant_signal(faulty, fault.value)
    if isinstance(fault.site, Branch):
        faulty.gates[fault.site.gate].inputs[fault.site.pin] = const
        faulty.invalidate()
        return faulty
    signal = fault.site
    if faulty.is_pi(signal) or signal in faulty.gates:
        # Redirect all readers (and PO bindings) to the constant.
        for branch in list(faulty.fanouts(signal)):
            faulty.gates[branch.gate].inputs[branch.pin] = const
        faulty.pos = [const if po == signal else po for po in faulty.pos]
        faulty.invalidate()
        return faulty
    raise ValueError(f"fault site {signal!r} not in netlist")
