"""Region extraction and splice-back against the master netlist.

A region travels as a standalone :class:`~repro.netlist.netlist.Netlist`
whose PIs are the region halo and whose POs are the region exports.
The extraction preserves gate names, functions, and cell bindings
verbatim, so a region composes with the master by name and — via
``GateFunc.__reduce__`` — pickles across the fork boundary with its
function singletons intact.

:func:`cone_signature` is the conflict-detection currency: the
order-independent fingerprint of an export's in-region fanin cone,
names included (external readers reference region logic *by name*).
:func:`splice_region` applies an optimized region back into the master
with fully deterministic renaming, so workers=1 and workers=N splice
byte-identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..netlist.netlist import Netlist
from .partitioner import Region


def extract_region(net: Netlist, region: Region,
                   name: Optional[str] = None) -> Netlist:
    """A standalone netlist of the region: halo → PIs, exports → POs."""
    sub = Netlist(name or f"{net.name}.r{region.index}")
    for h in region.halo:
        sub.add_pi(h)
    for sig in region.gates:
        gate = net.gates[sig]
        sub.add_gate(sig, gate.func, list(gate.inputs), cell=gate.cell)
    sub.set_pos(region.exports)
    sub.validate()
    return sub


def cone_signature(net: Netlist, root: str) -> Tuple:
    """Fingerprint of ``root``'s in-netlist transitive fanin cone.

    Two versions of a region compare equal on an export iff the logic
    implementing it — gate functions, cells, exact wiring, *and* signal
    names — is unchanged.  Names matter because other regions and the
    master PO list resolve the export by name; a renamed driver is a
    modification even when functionally identity.
    """
    cone = net.transitive_fanin(root, include_self=True)
    gates = tuple(sorted(
        (out, net.gates[out].func.name, net.gates[out].cell,
         tuple(net.gates[out].inputs))
        for out in cone if out in net.gates
    ))
    return (root, gates)


def splice_region(master: Netlist, region: Region,
                  optimized: Netlist) -> List[str]:
    """Replace the region's gates in ``master`` with ``optimized``'s.

    Naming is deterministic: the driver of export *i* takes the
    export's master name (external readers keep resolving without a
    rewrite), other gates keep their region name when still free, and
    genuine collisions draw from a region-indexed counter — never from
    the master's global fresh-name counter, wall clock, or ``id()``.
    When the optimizer rewired an export onto a halo signal or merged
    it with an earlier export (OS2 can substitute one PO stem for
    another), the *external* readers of the vacated name are patched to
    the surviving driver.  Returns the master names of the spliced
    gates — the region's identity for later merge rounds.
    """
    for sig in region.gates:
        del master.gates[sig]
    master.invalidate()
    mapping: Dict[str, str] = {pi: pi for pi in optimized.pis}
    rewires: Dict[str, str] = {}
    # Export drivers claim the export names first, in canonical export
    # order; a driver feeding several exports keeps the first name and
    # the later exports alias onto it.
    for i, export in enumerate(region.exports):
        driver = optimized.pos[i]
        if driver in mapping:
            if mapping[driver] != export:
                rewires[export] = mapping[driver]
            continue
        mapping[driver] = export
    taken = set(mapping.values())
    counter = 0
    spliced: List[str] = []
    for sig in optimized.topo_order():
        target = mapping.get(sig)
        if target is None:
            if sig not in taken and not master.has_signal(sig):
                target = sig
            else:
                while True:
                    counter += 1
                    cand = f"r{region.index}m_{counter}"
                    if cand not in taken and not master.has_signal(cand):
                        target = cand
                        break
            mapping[sig] = target
            taken.add(target)
        gate = optimized.gates[sig]
        master.add_gate(target, gate.func,
                        [mapping[src] for src in gate.inputs],
                        cell=gate.cell)
        spliced.append(target)
    if rewires:
        for gate in master.gates.values():
            gate.inputs[:] = [rewires.get(s, s) for s in gate.inputs]
        master.pos = [rewires.get(s, s) for s in master.pos]
        master.invalidate()
    master.validate()
    return spliced
