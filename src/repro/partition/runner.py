"""Region-parallel GDO: fork workers, canonical merge, conflict re-queue.

The execution plane behind ``GdoConfig.partition_workers``
(DESIGN.md §12).  One master netlist is cut into low-coupling regions
(:mod:`.partitioner`), each region is optimized as a standalone netlist
by the ordinary serial optimizer in a forked worker process, and a
merge coordinator splices the results back **in canonical region-index
order** with conflict detection on overlapping fanout cones:

* a region's commits are merged only if its halo is disjoint from the
  exports modified by regions merged *earlier in the same round* —
  otherwise the region optimized against timing that is now stale, its
  commits are rejected, and the region is re-queued for the next round
  with a freshly recomputed boundary (the cross-partition
  move/re-queue rule of cgra_pnr's parallel annealer);
* worker processes only decide *when* region results become available,
  never which are merged or in what order, so any worker count —
  including 1 — produces the identical netlist and journal.

Correctness does not ride on the conflict rule: every region commit is
individually proven over the region miter, halos are read-only, and
any subset of proven region results composes (each replaces an export
cone with a proven-equivalent one).  Conflict detection is purely a
*timing-staleness* policy; the master's ``verify_final`` miter remains
the end-to-end safety net.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist, NetlistError
from ..obs import Observability
from ..opt.config import GdoConfig, GdoStats, ModRecord
from ..opt.engine import make_sta
from .partitioner import Region, make_region, partition_netlist, signal_rank
from .region import cone_signature, extract_region, splice_region


@dataclass
class RegionResult:
    """What one region-local GDO run sends back to the coordinator.

    Crosses the fork boundary over a multiprocessing queue, so every
    field pickles: the optimized region netlist travels as a real
    :class:`Netlist` (``GateFunc.__reduce__`` restores the function
    singletons on the parent side), ``modified`` lists the master
    export names whose driving cone changed — the conflict-detection
    currency — and the counters fold into the master ``GdoStats``.
    """

    index: int
    net: Netlist
    commits: int
    modified: List[str]
    delay_after: float
    mods2: int = 0
    mods3: int = 0
    proofs_attempted: int = 0
    proofs_passed: int = 0
    history: List[tuple] = field(default_factory=list)


RegionOptimizer = Callable[[Netlist, TechLibrary, GdoConfig, Region],
                           RegionResult]


def optimize_region(master: Netlist, library: TechLibrary,
                    cfg: GdoConfig, region: Region) -> RegionResult:
    """One region-local GDO run (the default region optimizer).

    Extracts the region into a standalone netlist (halo → PIs,
    exports → POs), runs the serial optimizer on it under
    ``cfg.region_config()`` — its own ``EngineContext``, its own broker
    against the shared verdict store — and fingerprints every export
    cone before/after to report which master signals changed.
    """
    from ..opt.gdo import gdo_optimize

    sub = extract_region(master, region)
    before = [cone_signature(sub, po) for po in sub.pos]
    result = gdo_optimize(sub, library, cfg.region_config())
    opt = result.net
    modified = [
        region.exports[i]
        for i, po in enumerate(opt.pos)
        if cone_signature(opt, po) != before[i]
    ]
    s = result.stats
    return RegionResult(
        index=region.index,
        net=opt,
        commits=len(s.history),
        modified=modified,
        delay_after=s.delay_after,
        mods2=s.mods2,
        mods3=s.mods3,
        proofs_attempted=s.proofs_attempted,
        proofs_passed=s.proofs_passed,
        history=[
            (m.phase, m.description, m.kind, m.delay_before,
             m.delay_after, m.area_before, m.area_after)
            for m in s.history
        ],
    )


def _region_worker(master: Netlist, library: TechLibrary,
                   cfg: GdoConfig, regions: Sequence[Region],
                   optimizer: RegionOptimizer, out) -> None:
    """Fork-worker body: optimize a chunk of regions, ship results."""
    for region in regions:
        out.put((region.index, optimizer(master, library, cfg, region)))
    out.close()
    out.join_thread()


def _optimize_all(master: Netlist, library: TechLibrary, cfg: GdoConfig,
                  regions: List[Region], workers: int,
                  optimizer: RegionOptimizer) -> Dict[int, RegionResult]:
    """Optimize ``regions``; returns ``{region index: result}``.

    Forked workers inherit the master read-only (no argument pickling)
    and return results over a queue; results are keyed by region index,
    so scheduling cannot reorder anything downstream.  Regions whose
    worker died before reporting (crash, OOM-kill) are re-run serially
    in the parent — slower, never wrong.  ``workers <= 1`` (or a single
    region, or a platform without fork) skips the processes entirely;
    both paths call the same optimizer on the same inputs.
    """
    results: Dict[int, RegionResult] = {}
    n = min(workers, len(regions))
    ctx = None
    if n > 1:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = None
    if ctx is not None:
        out = ctx.Queue()
        procs = []
        for w in range(n):
            chunk = regions[w::n]
            proc = ctx.Process(
                target=_region_worker,
                args=(master, library, cfg, chunk, optimizer, out),
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        while len(results) < len(regions):
            try:
                index, res = out.get(timeout=0.2)
                results[index] = res
            except queue_mod.Empty:
                if any(proc.is_alive() for proc in procs):
                    continue
                # All workers exited; drain what their feeder threads
                # flushed, then fall through to the serial fallback.
                try:
                    while True:
                        index, res = out.get(timeout=0.2)
                        results[index] = res
                except queue_mod.Empty:
                    break
        for proc in procs:
            proc.join(5.0)
        out.close()
    for region in regions:
        if region.index not in results:
            results[region.index] = optimizer(master, library, cfg,
                                              region)
    return results


def run_partitioned(
    net: Netlist,
    library: TechLibrary,
    config: GdoConfig,
    broker=None,
    resume: Optional[List[dict]] = None,
    region_optimizer: Optional[RegionOptimizer] = None,
):
    """Region-parallel GDO; the entry ``gdo_optimize`` delegates to
    when ``config.partition_workers > 0``.

    ``resume`` (the service's crash-recovery journal prefix) is
    accepted but unused: a partitioned run is a deterministic re-run,
    and the shared verdict store makes the replayed proofs cheap — the
    recovery contract (identical final result, journal re-emitted from
    seq 0) holds without record-level replay.  A caller-owned
    ``broker`` is likewise unused: region runs build their own brokers
    against ``proof_store_path``, which is how proof work stays shared.

    ``region_optimizer`` injects a replacement for
    :func:`optimize_region` — the merge-conflict tests drive the
    coordinator with crafted region rewrites through this seam.
    """
    from ..opt.gdo import GdoResult

    del broker, resume  # see docstring: determinism makes both moot
    cfg = config
    work = net.copy(name=net.name)
    library.rebind(work)
    stats = GdoStats()
    obs = Observability.from_config(cfg.obs)
    start = time.perf_counter()
    sta = make_sta(work, library, cfg)
    stats.gates_before = work.num_gates
    stats.literals_before = work.num_literals
    stats.area_before = library.netlist_area(work)
    stats.delay_before = sta.delay
    obs.journal.record(
        "run_begin", circuit=work.name, gates=stats.gates_before,
        seed=cfg.seed, n_words=cfg.n_words,
    )
    workers = max(1, cfg.partition_workers)
    k = max(1, cfg.partition_regions)
    if work.num_gates < cfg.partition_min_gates:
        k = 1
    with obs.span("partition.cut"):
        part = partition_netlist(work, k, library=library)
    stats.partition_regions = len(part.regions)
    obs.journal.record(
        "partition_begin", regions=len(part.regions),
        gates=stats.gates_before, cones=part.cones,
        cut_edges=part.cut_edges,
    )
    optimizer = region_optimizer or optimize_region
    region_gates: Dict[int, List[str]] = {
        r.index: list(r.gates) for r in part.regions
    }
    pending = sorted(region_gates)
    merged_total = 0
    rounds = 0
    while pending and rounds < cfg.partition_max_rounds:
        rounds += 1
        rank = signal_rank(work)
        todo = [make_region(work, index, region_gates[index], rank)
                for index in pending]
        for region in todo:
            obs.journal.record(
                "region", region=region.index, round=rounds,
                gates=len(region.gates), halo=len(region.halo),
                exports=len(region.exports),
            )
        with obs.span("partition.optimize", regions=len(todo)):
            results = _optimize_all(work, library, cfg, todo, workers,
                                    optimizer)
        modified_now: set = set()
        next_pending: List[int] = []
        for region in todo:  # canonical index order == merge order
            res = results[region.index]
            obs.journal.record(
                "region_result", region=region.index, round=rounds,
                commits=res.commits, delay_after=res.delay_after,
            )
            if res.commits == 0:
                continue
            overlap = modified_now.intersection(region.halo)
            if overlap:
                # The region optimized against boundary timing a merge
                # earlier in this round's canonical order invalidated:
                # reject its commits and re-queue it — next round it is
                # re-cut against the refreshed master.
                stats.partition_conflicts += 1
                obs.journal.record(
                    "region_reject", region=region.index, round=rounds,
                    overlap=len(overlap), reason="stale-halo",
                )
                obs.journal.record("region_requeue",
                                   region=region.index, round=rounds)
                next_pending.append(region.index)
                continue
            # Splice into a trial copy first: a region rewrite may read
            # a halo signal on a new path to an export — legal inside
            # the region (the halo is just PIs there) but a
            # combinational loop once composed with the master path
            # running the other way.  ``validate`` inside the splice
            # catches it; the master is untouched on rejection.
            trial = work.copy(name=work.name)
            try:
                with obs.span("partition.merge", region=region.index):
                    spliced = splice_region(trial, region, res.net)
            except NetlistError:
                # Not re-queued: the rewrite is deterministic, so the
                # same region would produce the same loop next round —
                # its gates simply stay unoptimized in the master.
                stats.partition_conflicts += 1
                obs.journal.record(
                    "region_reject", region=region.index, round=rounds,
                    overlap=0, reason="cycle",
                )
                continue
            work = trial
            region_gates[region.index] = spliced
            modified_now.update(res.modified)
            merged_total += 1
            stats.mods2 += res.mods2
            stats.mods3 += res.mods3
            stats.proofs_attempted += res.proofs_attempted
            stats.proofs_passed += res.proofs_passed
            for (phase, desc, kind, d0, d1, a0, a1) in res.history:
                stats.history.append(ModRecord(
                    phase=phase, description=f"r{region.index}:{desc}",
                    kind=kind, delay_before=d0, delay_after=d1,
                    area_before=a0, area_after=a1,
                ))
            obs.journal.record(
                "region_merge", region=region.index, round=rounds,
                modified=len(res.modified),
            )
        pending = next_pending
    obs.journal.record(
        "partition_end", rounds=rounds, merged=merged_total,
        rejected=stats.partition_conflicts,
    )
    stats.partition_rounds = rounds
    stats.rounds = rounds
    sta = make_sta(work, library, cfg)
    stats.gates_after = work.num_gates
    stats.literals_after = work.num_literals
    stats.area_after = library.netlist_area(work)
    stats.delay_after = sta.delay
    stats.cpu_seconds = time.perf_counter() - start
    if cfg.verify_final:
        from ..verify.equiv import check_equivalence

        t0 = time.perf_counter()
        with obs.span("partition.verify"):
            stats.equivalent = check_equivalence(
                net, work, n_words=cfg.verify_words, seed=cfg.seed,
                max_conflicts=cfg.max_conflicts,
            )
        stats.phase_seconds["verify"] = time.perf_counter() - t0
    obs.journal.record(
        "run_end", delay_after=stats.delay_after,
        area_after=stats.area_after, mods=len(stats.history),
        rounds=stats.rounds,
    )
    stats.obs = obs.snapshot()
    obs.close()
    return GdoResult(work, stats)
