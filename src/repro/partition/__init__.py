"""Partitioned parallel GDO: region-parallel optimization of one
netlist (DESIGN.md §12).

Three layers:

* :mod:`.partitioner` — cuts the levelized netlist into at most k
  low-coupling regions along dominator cones, with read-only boundary
  halos and explicit export interfaces;
* :mod:`.region` — extracts a region as a standalone netlist, splices
  an optimized region back into the master deterministically, and
  fingerprints export cones for conflict detection;
* :mod:`.runner` — the coordinator behind
  ``GdoConfig.partition_workers``: fork workers optimize regions in
  parallel, results merge in canonical region order, conflicting
  commits are rejected and their regions re-queued with refreshed
  boundaries.

The whole plane is worker-count invariant: the plan, merge order, and
journal depend only on (netlist, config).
"""

from .partitioner import (
    Partition, Region, dominator_cones, make_region, partition_netlist,
    signal_rank,
)
from .region import cone_signature, extract_region, splice_region
from .runner import RegionResult, optimize_region, run_partitioned

__all__ = [
    "Partition", "Region", "RegionResult",
    "cone_signature", "dominator_cones", "extract_region",
    "make_region", "optimize_region", "partition_netlist",
    "run_partitioned", "signal_rank", "splice_region",
]
