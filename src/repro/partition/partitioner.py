"""Dominator-cone partitioning of a levelized netlist.

The partitioner cuts one netlist into at most k regions for
region-parallel GDO (DESIGN.md §12).  The cut unit is the **dominator
cone**: every gate is grouped under the outermost entry of its
dominator chain (:class:`repro.analysis.dominators.Dominators`), i.e.
the gate through which *all* of its paths to the POs pass.  A cone is
exactly the logic only its root exposes downstream, so packing whole
cones keeps region boundaries — and therefore halos — small.

Cones are packed greedily (first-fit-decreasing under a balance cap)
by a **coupling metric over shared fanout**: a cone joins the region it
shares the most boundary signals with, counting signals one side
produces and the other reads plus signals both read (shared fanout of
a common source).  Low cross-coupling is what makes the regions'
halo-frozen timing approximations honest, which is what keeps merge
conflicts (runner.py) rare.

Everything here is a pure function of the netlist: the plan is derived
from the levelized flat view's canonical signal order
(:class:`repro.flat.view.FlatView`) and the dominator tree, never from
worker scheduling — any ``partition_workers`` sees the same plan.

The clustering formulation follows Donovan et al. ("Complexity issues
in some clustering problems in combinatorial circuits", PAPERS.md):
optimal low-coupling clustering is hard, so we take the standard
greedy bin-packing approximation with deterministic tie-breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..analysis.dominators import Dominators
from ..flat.view import FlatView, FlatViewError
from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist


@dataclass
class Region:
    """One partition region: a gate set plus its boundary interface.

    ``gates`` are in canonical (PIs-first topological) master order;
    ``halo`` is every signal the region reads but does not drive — the
    region's PIs, read-only by contract; ``exports`` is every region
    signal visible outside it (read by another region's gate, or a
    master PO) — the region's POs, whose functions a region-local
    optimizer must preserve.
    """

    index: int
    gates: List[str]
    halo: List[str]
    exports: List[str]


@dataclass
class Partition:
    """The partitioner's output: regions plus cut statistics."""

    regions: List[Region]
    cones: int = 0        # dominator cones that were packed
    cut_edges: int = 0    # region-boundary reads of non-PI signals


def signal_rank(net: Netlist) -> Dict[str, int]:
    """Canonical position of every signal: PIs first, then topo order —
    the same order :meth:`FlatView.build` assigns flat indices in."""
    rank = {pi: i for i, pi in enumerate(net.pis)}
    base = len(rank)
    for i, sig in enumerate(net.topo_order()):
        rank[sig] = base + i
    return rank


def dominator_cones(net: Netlist) -> List[List[str]]:
    """Gate outputs grouped by their outermost dominator.

    A gate's cone root is the last entry of its dominator chain — the
    unique gate closest to the POs that every path from the gate
    passes through (the virtual PO sink is excluded, so gates with no
    real dominator root their own cone).  Cones are returned in topo
    order of their roots, members in topo order: fully deterministic.
    """
    doms = Dominators(net)
    order = net.topo_order()
    rank = {s: i for i, s in enumerate(order)}
    cones: Dict[str, List[str]] = {}
    for sig in order:
        root = sig
        for dom in doms.chain(sig):
            root = dom
        cones.setdefault(root, []).append(sig)
    return [cones[root] for root in sorted(cones, key=rank.__getitem__)]


def _cone_interface(net: Netlist, cone: Sequence[str]):
    """(produced, external-reads) signal sets of one cone."""
    produced = set(cone)
    reads: Set[str] = set()
    for sig in cone:
        for src in net.gates[sig].inputs:
            if src not in produced:
                reads.add(src)
    return produced, reads


def _pack_cones(net: Netlist, cones: List[List[str]],
                k: int) -> List[List[str]]:
    """Greedy max-coupling packing of cones into at most k regions.

    First-fit-decreasing under a balance cap of ceil(gates / k): each
    cone (largest first) joins the open region it is most coupled to
    that still has capacity; uncoupled cones open a new region while
    fewer than k exist; when everything is full the smallest region
    absorbs the cone (balance beats coupling at the margin).  Ties
    break toward the lowest region id — deterministic throughout.
    """
    rank = {s: i for i, s in enumerate(net.topo_order())}
    infos = [(cone, *_cone_interface(net, cone)) for cone in cones]
    # Largest first; cones are topo-ordered so cone[0] is the earliest
    # member, giving a stable secondary key.
    infos.sort(key=lambda t: (-len(t[0]), rank[t[0][0]]))
    total = sum(len(cone) for cone, _, _ in infos)
    cap = max(1, -(-total // k))
    members: List[Set[str]] = []
    reads: List[Set[str]] = []
    packed: List[List[str]] = []
    for cone, produced, ext in infos:
        best = -1
        best_score = 0
        for ri in range(len(members)):
            if members[ri] and len(members[ri]) + len(cone) > cap:
                continue
            score = (len(ext & members[ri])
                     + len(reads[ri] & produced)
                     + len(reads[ri] & ext))
            if best < 0 or score > best_score:
                best, best_score = ri, score
        if (best < 0 or best_score == 0) and len(members) < k:
            members.append(set())
            reads.append(set())
            packed.append([])
            best = len(members) - 1
        elif best < 0:
            best = min(range(len(members)),
                       key=lambda ri: (len(members[ri]), ri))
        members[best] |= produced
        reads[best] |= ext
        packed[best].extend(cone)
    return [gates for gates in packed if gates]


def make_region(net: Netlist, index: int, gates: Sequence[str],
                rank: Optional[Dict[str, int]] = None) -> Region:
    """The region interface (halo + exports) of ``gates`` in ``net``.

    Always computed against the *current* master netlist, so a
    re-queued region's boundary reflects every merge applied since it
    was first cut — the "refreshed timing" a conflict re-queue buys.
    ``rank`` (default :func:`signal_rank`) orders the interface lists
    canonically, independent of set-iteration order.
    """
    if rank is None:
        rank = signal_rank(net)
    mem = set(gates)
    halo: Set[str] = set()
    for sig in gates:
        for src in net.gates[sig].inputs:
            if src not in mem:
                halo.add(src)
    exported: Set[str] = set(net.pos) & mem
    for out, gate in net.gates.items():
        if out in mem:
            continue
        for src in gate.inputs:
            if src in mem:
                exported.add(src)
    return Region(
        index=index,
        gates=sorted(mem, key=rank.__getitem__),
        halo=sorted(halo, key=rank.__getitem__),
        exports=sorted(exported, key=rank.__getitem__),
    )


def partition_netlist(net: Netlist, k: int,
                      library: Optional[TechLibrary] = None) -> Partition:
    """Cut ``net`` into at most ``k`` low-coupling regions.

    Builds the levelized flat view first — it validates the netlist is
    flat-kernel clean (singleton functions, no cycles) and its PI-first
    level order is the canonical rank every region interface is sorted
    by.  Falls back to the plain topological rank for structures the
    flat view rejects.
    """
    try:
        view = FlatView.build(net, library)
        rank = dict(view.index_of)
    except FlatViewError:
        rank = signal_rank(net)
    cones = dominator_cones(net)
    packed = _pack_cones(net, cones, max(1, k))
    # Canonical region numbering: by earliest member in master order.
    packed.sort(key=lambda gates: min(rank[s] for s in gates))
    regions = [
        make_region(net, index, gates, rank)
        for index, gates in enumerate(packed)
    ]
    cut = sum(
        1 for region in regions for h in region.halo if h in net.gates
    )
    return Partition(regions=regions, cones=len(cones), cut_edges=cut)
