"""Filesystem-spooled job queue for the optimization service.

Every job is a directory under ``<root>/jobs/``::

    <root>/jobs/<job_id>/
      job.json          # the JobSpec: netlist text, format, overrides
      lease             # claim marker (O_EXCL-created JSON:
                        #   pid, start tick, token, created)
      journal.jsonl     # the run journal (written by the worker)
      attempts.jsonl    # durable retry ledger (start/error events)
      not_before        # retry backoff stamp (skip until this time)
      result.json       # terminal: summary of the finished run
      result.blif       # terminal: the optimized netlist
      error.json        # terminal: what went wrong

    <root>/deadletter/<job_id>/   # quarantined poison jobs

The spool *is* the durable state — there is no in-memory queue to lose.
Submission is a directory rename (tmp + ``os.replace``), claiming is an
``O_EXCL`` lease-file create, so any number of client and worker
processes can share one root without coordination beyond the
filesystem.  Crash recovery (:mod:`repro.service.recovery`) is a pure
function of this layout: a job with a journal but no ``result.json``
was interrupted; a lease naming a dead pid is stale.

Status model::

    queued -> running -> done | failed
                      -> deadlettered   (poison: retry budget spent)
"""

from __future__ import annotations

import fcntl
import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults import fault, register_point

_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")

#: fault points of the spool (DESIGN.md §11)
FP_LEASE_RACE = register_point(
    "queue.lease.race",
    "claim loses the lease race after winning it (another claimant "
    "appears to have taken the job)")
FP_SUBMIT_TORN = register_point(
    "queue.submit.torn",
    "submitter dies between staging and publish, leaving a stale "
    ".staging-* directory")

#: job states surfaced by :meth:`JobQueue.status`
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
DEADLETTERED = "deadlettered"


class QueueError(RuntimeError):
    """Malformed job spec or unusable queue root."""


@dataclass
class JobSpec:
    """What a client submits: one netlist plus how to optimize it.

    ``netlist`` is source text in ``fmt`` (any :data:`repro.io.FORMATS`
    entry); ``config`` holds :class:`~repro.opt.config.GdoConfig` field
    overrides by name (service-owned fields — observability, the store
    path — are set by the worker and rejected here).
    """

    netlist: str
    fmt: str = "blif"
    name: str = "job"
    library: str = "mcnc_like"
    config: Dict[str, object] = field(default_factory=dict)

    _FORBIDDEN = frozenset(
        {"obs", "proof_store_path", "proof_cache_path"})

    def validate(self) -> None:
        from ..io import FORMATS

        if not isinstance(self.netlist, str) or not self.netlist.strip():
            raise QueueError("job has no netlist text")
        if self.fmt not in FORMATS:
            raise QueueError(f"unknown netlist format {self.fmt!r}")
        if self.library not in ("mcnc_like", "unit"):
            raise QueueError(f"unknown library {self.library!r}")
        if not isinstance(self.config, dict):
            raise QueueError("config overrides must be an object")
        from ..opt.config import GdoConfig

        valid = {f for f in GdoConfig.__dataclass_fields__}
        for key in self.config:
            if key in self._FORBIDDEN:
                raise QueueError(
                    f"config override {key!r} is service-owned")
            if key not in valid:
                raise QueueError(f"unknown config override {key!r}")

    def to_json(self) -> dict:
        return {
            "netlist": self.netlist, "fmt": self.fmt, "name": self.name,
            "library": self.library, "config": dict(self.config),
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise QueueError(f"job spec is not an object: {data!r}")
        spec = cls(
            netlist=data.get("netlist", ""),
            fmt=data.get("fmt", "blif"),
            name=str(data.get("name", "job")),
            library=data.get("library", "mcnc_like"),
            config=data.get("config", {}) or {},
        )
        spec.validate()
        return spec


@dataclass
class Job:
    """A claimed job: its id, directory, and parsed spec."""

    job_id: str
    path: str
    spec: JobSpec

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, "journal.jsonl")

    @property
    def result_path(self) -> str:
        return os.path.join(self.path, "result.json")

    @property
    def error_path(self) -> str:
        return os.path.join(self.path, "error.json")

    @property
    def lease_path(self) -> str:
        return os.path.join(self.path, "lease")

    @property
    def attempts_path(self) -> str:
        return os.path.join(self.path, "attempts.jsonl")

    @property
    def not_before_path(self) -> str:
        return os.path.join(self.path, "not_before")

    @property
    def faults_path(self) -> str:
        return os.path.join(self.path, "faults.jsonl")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


def _proc_start(pid: int) -> Optional[int]:
    """The kernel's start tick of ``pid`` (Linux ``/proc``), or None.

    Field 22 of ``/proc/<pid>/stat``, read *after* the closing paren of
    the comm field (which may itself contain spaces/parens).  Two
    processes can share a pid only across a recycle, and a recycled pid
    gets a new start tick — so ``(pid, start)`` identifies a process
    where a bare pid does not.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            data = fh.read()
        fields = data[data.rindex(b")") + 2:].split()
        return int(fields[19])  # stat field 22, 0-indexed after comm
    except (OSError, ValueError, IndexError):
        return None


def _lease_payload() -> dict:
    pid = os.getpid()
    return {
        "pid": pid,
        "start": _proc_start(pid),
        "token": uuid.uuid4().hex[:8],
        "created": time.time(),
    }


def lease_live(info: Optional[dict],
               ttl: Optional[float] = None) -> bool:
    """Is the lease's claimant provably the process that took it?

    * pid dead → stale;
    * pid alive with a recorded start tick that no longer matches →
      the pid was recycled onto an unrelated process → stale;
    * pid alive, start tick unavailable (non-Linux or legacy lease) →
      trust liveness, unless ``ttl`` has expired — the TTL is the
      backstop that keeps reclaim safe when pid recycling cannot be
      ruled out.
    """
    if info is None:
        return False
    pid = info.get("pid")
    if not isinstance(pid, int) or not _pid_alive(pid):
        return False
    recorded = info.get("start")
    if recorded is not None:
        current = _proc_start(pid)
        if current is not None:
            return current == recorded
    if ttl is not None:
        created = info.get("created")
        if not isinstance(created, (int, float)) or \
                time.time() - created > ttl:
            return False
    return True


class JobQueue:
    """Shared filesystem spool of optimization jobs.

    Safe for concurrent submitters and workers: submission publishes a
    complete job directory atomically; :meth:`claim` takes per-job
    ``O_EXCL`` leases, so each job runs exactly once while its claimant
    lives.  ``tick`` orders claims (FIFO by submission counter).
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.deadletter_dir = os.path.join(self.root, "deadletter")
        os.makedirs(self.jobs_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Spool one job; returns its id.  The job directory appears
        atomically (staged in a tmp dir, published by rename)."""
        spec.validate()
        tick = self._next_tick()
        base = "".join(
            c if c in _ID_SAFE else "_" for c in spec.name) or "job"
        job_id = f"{tick:08d}-{base}-{uuid.uuid4().hex[:8]}"
        staging = tempfile.mkdtemp(
            dir=self.jobs_dir, prefix=f".staging-{os.getpid()}-")
        try:
            with open(os.path.join(staging, "job.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(spec.to_json(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            if fault(FP_SUBMIT_TORN):
                # Submitter "dies" before publish: the staged directory
                # stays behind exactly as a crash would leave it
                # (cleared by clean_staging / recovery); the job was
                # never submitted, so the client retries.
                raise QueueError(
                    "injected submit crash before publish")
            os.replace(staging, os.path.join(self.jobs_dir, job_id))
        except OSError:
            for name in os.listdir(staging):
                os.unlink(os.path.join(staging, name))
            os.rmdir(staging)
            raise
        return job_id

    def _next_tick(self) -> int:
        """Monotonic submission counter (lock-free: O_EXCL ticket
        files double as the counter's history)."""
        path = os.path.join(self.root, "ticks")
        os.makedirs(path, exist_ok=True)
        n = len(os.listdir(path))
        while True:
            try:
                fd = os.open(os.path.join(path, f"{n:08d}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return n
            except FileExistsError:
                n += 1

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(self, reclaim_stale: bool = True,
              lease_ttl: Optional[float] = None) -> Optional[Job]:
        """Atomically claim the oldest due queued job, or ``None``.

        Jobs deferred by :meth:`defer` (retry backoff) are skipped
        until their ``not_before`` stamp passes.  A lease whose
        claimant is provably gone — dead pid, recycled pid (start-tick
        mismatch), or ``lease_ttl`` expiry when liveness cannot be
        pinned — is stale: with ``reclaim_stale`` it is replaced and
        the job re-claimed; the new claimant resumes from the journal,
        not from scratch."""
        now = time.time()
        for job_id in sorted(self._job_ids()):
            job = self._load(job_id)
            if job is None or self._terminal(job):
                continue
            if self.deferred_until(job) > now:
                continue
            if self._take_lease(job, reclaim_stale, lease_ttl):
                if fault(FP_LEASE_RACE):
                    # Lost the race after all: another claimant beat us
                    # (from this process's view the claim just fails).
                    self.release(job)
                    continue
                return job
        return None

    def _install_lease(self, job: Job, payload: str) -> bool:
        """Atomically create the lease *with* its payload (tmp write +
        hard link).  A create-then-write would leave an empty lease
        visible between the two steps — empty reads as stale, inviting
        a concurrent reclaim of a job that was just claimed."""
        tmp = (job.lease_path
               + f".claim.{os.getpid()}.{uuid.uuid4().hex[:8]}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
        try:
            os.link(tmp, job.lease_path)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True

    def _take_lease(self, job: Job, reclaim_stale: bool,
                    lease_ttl: Optional[float] = None) -> bool:
        payload = json.dumps(_lease_payload(), sort_keys=True) + "\n"
        if self._install_lease(job, payload):
            return True
        if not reclaim_stale:
            return False
        if lease_live(self._lease_info(job), lease_ttl):
            return False
        # Stale: the whole reclaim cycle — re-check, corpse-rename,
        # re-create — runs under an exclusive flock on the job
        # directory, because the staleness read above is unlocked: a
        # second reclaimer could finish its entire cycle between our
        # read and our rename, and we would rename its *fresh* lease
        # to a corpse and double-claim the job.  Fresh claimants never
        # remove a lease (their link-install only succeeds when none
        # exists), so they cannot steal; one slipping into our
        # rename/install gap just makes our install lose with EEXIST.
        try:
            dirfd = os.open(job.path, os.O_RDONLY)
        except OSError:
            return False
        try:
            try:
                fcntl.flock(dirfd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                return False  # another reclaimer is mid-cycle
            if lease_live(self._lease_info(job), lease_ttl):
                return False  # reclaimed while we took the lock
            corpse = (job.lease_path
                      + f".stale.{os.getpid()}.{uuid.uuid4().hex[:8]}")
            try:
                os.rename(job.lease_path, corpse)
            except OSError:
                pass  # lease released meanwhile: install decides
            else:
                try:
                    os.unlink(corpse)
                except OSError:  # pragma: no cover - harmless debris
                    pass
            return self._install_lease(job, payload)
        finally:
            os.close(dirfd)

    def renew_lease(self, job: Job) -> None:
        """Refresh this claimant's lease stamp (TTL keep-alive)."""
        tmp = job.lease_path + f".renew.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(_lease_payload(),
                                    sort_keys=True) + "\n")
            os.replace(tmp, job.lease_path)
        except OSError:  # pragma: no cover - renewals are best-effort
            if os.path.exists(tmp):
                os.unlink(tmp)

    def release(self, job: Job) -> None:
        """Drop the lease (the job becomes claimable again)."""
        try:
            os.unlink(job.lease_path)
        except OSError:
            pass

    def _lease_info(self, job: Job) -> Optional[dict]:
        """The lease payload; legacy bare-pid leases are adapted."""
        try:
            with open(job.lease_path, "r", encoding="utf-8") as fh:
                text = fh.read().strip()
        except OSError:
            return None
        if not text:
            return None
        try:
            info = json.loads(text)
        except ValueError:
            return None
        if isinstance(info, int):  # legacy bare-pid lease
            return {"pid": info}
        return info if isinstance(info, dict) else None

    def _lease_pid(self, job: Job) -> Optional[int]:
        info = self._lease_info(job)
        pid = info.get("pid") if info else None
        return pid if isinstance(pid, int) else None

    # ------------------------------------------------------------------
    # retry bookkeeping (the supervisor's durable state)
    # ------------------------------------------------------------------
    def record_attempt(self, job: Job, event: str,
                       error: str = "") -> int:
        """Append one attempt event (``start`` | ``error``) to the
        job's ``attempts.jsonl``; returns how many events of that kind
        the job now has.  Durable, append-only — the retry budget
        survives worker crashes."""
        rec = {"event": event, "pid": os.getpid(), "t": time.time()}
        if error:
            rec["error"] = error[:2000]
        line = json.dumps(rec, sort_keys=True) + "\n"
        fd = os.open(job.attempts_path,
                     os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return self.attempt_counts(job).get(event, 0)

    def attempt_counts(self, job: Job) -> Dict[str, int]:
        """``{event: count}`` over the job's attempt history."""
        counts: Dict[str, int] = {}
        try:
            with open(job.attempts_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line).get("event")
                    except ValueError:
                        continue  # torn tail of a killed writer
                    if isinstance(event, str):
                        counts[event] = counts.get(event, 0) + 1
        except OSError:
            pass
        return counts

    def defer(self, job: Job, delay: float) -> float:
        """Back the job off: release the lease and stamp
        ``not_before`` so no worker re-claims it for ``delay``
        seconds.  Returns the stamp."""
        due = time.time() + max(0.0, delay)
        self._write_atomic(job.not_before_path, f"{due:.6f}\n")
        self.release(job)
        return due

    def deferred_until(self, job: Job) -> float:
        """The job's ``not_before`` stamp (0.0 when not deferred)."""
        try:
            with open(job.not_before_path, "r",
                      encoding="utf-8") as fh:
                return float(fh.read().strip() or "0")
        except (OSError, ValueError):
            return 0.0

    # ------------------------------------------------------------------
    # dead-letter quarantine
    # ------------------------------------------------------------------
    def quarantine(self, job: Job, reason: str) -> str:
        """Move a poison job out of the spool into ``deadletter/``.

        Atomic (directory rename); the job keeps its journal, attempt
        history, and fault log for inspection, plus a
        ``deadletter.json`` with the reason.  Returns the new path."""
        os.makedirs(self.deadletter_dir, exist_ok=True)
        self.release(job)
        target = os.path.join(self.deadletter_dir, job.job_id)
        try:
            self._write_atomic(
                os.path.join(job.path, "deadletter.json"),
                json.dumps({
                    "reason": reason[:2000],
                    "attempts": self.attempt_counts(job),
                    "quarantined_at": time.time(),
                }, sort_keys=True))
            os.replace(job.path, target)
        except OSError:
            # Raced another quarantiner (or the dir is otherwise gone):
            # as long as the job landed in deadletter/, the outcome we
            # wanted holds and crashing the worker would help nobody.
            if os.path.isdir(target) and not os.path.isdir(job.path):
                return target
            raise
        return target

    def deadletter_jobs(self) -> Dict[str, dict]:
        """``{job_id: deadletter.json payload}`` for quarantined jobs."""
        try:
            names = sorted(os.listdir(self.deadletter_dir))
        except OSError:
            return {}
        out: Dict[str, dict] = {}
        for name in names:
            if name.startswith("."):
                continue
            info_path = os.path.join(
                self.deadletter_dir, name, "deadletter.json")
            try:
                with open(info_path, "r", encoding="utf-8") as fh:
                    out[name] = json.load(fh)
            except (OSError, ValueError):
                out[name] = {}
        return out

    def requeue(self, job_id: str) -> bool:
        """Move a dead-lettered job back into the spool with a fresh
        retry budget (backoff stamp, lease, and terminal error
        cleared; the durable attempt ledger and the journal move aside
        as ``.prev`` so the fresh budget starts at zero attempts while
        the quarantine history stays auditable)."""
        if "/" in job_id or job_id.startswith("."):
            return False
        source = os.path.join(self.deadletter_dir, job_id)
        if not os.path.isdir(source):
            return False
        for name in ("lease", "not_before", "faults.jsonl",
                     "deadletter.json", "error.json"):
            try:
                os.unlink(os.path.join(source, name))
            except OSError:
                pass
        for name in ("attempts.jsonl", "journal.jsonl"):
            path = os.path.join(source, name)
            if os.path.exists(path):
                os.replace(path, path + ".prev")
        os.replace(source, os.path.join(self.jobs_dir, job_id))
        return True

    def clean_staging(self, max_age: float = 300.0) -> int:
        """Remove ``.staging-*`` directories whose submitter is dead
        (or, failing pid parse, older than ``max_age``) — the debris a
        submitter crash between staging and publish leaves behind."""
        removed = 0
        now = time.time()
        try:
            names = os.listdir(self.jobs_dir)
        except OSError:
            return 0
        for name in names:
            if not name.startswith(".staging-"):
                continue
            path = os.path.join(self.jobs_dir, name)
            pid: Optional[int] = None
            parts = name.split("-")
            if len(parts) >= 2:
                try:
                    pid = int(parts[1])
                except ValueError:
                    pid = None
            if pid is not None and _pid_alive(pid):
                continue  # live submitter mid-publish
            if pid is None:
                try:
                    if now - os.stat(path).st_mtime < max_age:
                        continue
                except OSError:
                    continue
            try:
                for entry in os.listdir(path):
                    os.unlink(os.path.join(path, entry))
                os.rmdir(path)
                removed += 1
            except OSError:  # pragma: no cover - racing cleaner
                pass
        return removed

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def complete(self, job: Job, result: dict,
                 netlist_blif: Optional[str] = None) -> None:
        """Publish a terminal result (atomic: tmp + rename)."""
        if netlist_blif is not None:
            self._write_atomic(
                os.path.join(job.path, "result.blif"), netlist_blif)
        self._write_atomic(job.result_path,
                           json.dumps(result, sort_keys=True))

    def fail(self, job: Job, error: str) -> None:
        self._write_atomic(job.error_path,
                           json.dumps({"error": error}))

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        directory = os.path.dirname(path)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _job_ids(self) -> List[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except FileNotFoundError:
            return []
        return [n for n in names if not n.startswith(".")]

    def _load(self, job_id: str) -> Optional[Job]:
        path = os.path.join(self.jobs_dir, job_id)
        try:
            with open(os.path.join(path, "job.json"), "r",
                      encoding="utf-8") as fh:
                spec = JobSpec.from_json(json.load(fh))
        except (OSError, ValueError, QueueError):
            return None
        return Job(job_id=job_id, path=path, spec=spec)

    def get(self, job_id: str) -> Optional[Job]:
        """The job by id (``None`` when unknown/corrupt)."""
        if "/" in job_id or job_id.startswith("."):
            return None
        return self._load(job_id)

    def _terminal(self, job: Job) -> bool:
        return (os.path.exists(job.result_path)
                or os.path.exists(job.error_path))

    def status(self, job_id: str) -> dict:
        """One job's state: ``{state, ...terminal payload}``."""
        job = self.get(job_id)
        if job is None:
            if job_id in self.deadletter_jobs():
                return {"state": DEADLETTERED,
                        "deadletter": self.deadletter_jobs()[job_id]}
            return {"state": "unknown"}
        if os.path.exists(job.result_path):
            try:
                with open(job.result_path, "r", encoding="utf-8") as fh:
                    result = json.load(fh)
            except (OSError, ValueError):
                result = {}
            return {"state": DONE, "result": result}
        if os.path.exists(job.error_path):
            try:
                with open(job.error_path, "r", encoding="utf-8") as fh:
                    error = json.load(fh).get("error", "")
            except (OSError, ValueError):
                error = ""
            return {"state": FAILED, "error": error}
        if lease_live(self._lease_info(job)):
            return {"state": RUNNING, "pid": self._lease_pid(job)}
        return {"state": QUEUED}

    def jobs(self) -> Dict[str, str]:
        """``{job_id: state}`` for every spooled job."""
        return {
            job_id: self.status(job_id)["state"]
            for job_id in sorted(self._job_ids())
        }

    def depth(self) -> int:
        """Jobs neither terminal nor actively running."""
        return sum(
            1 for state in self.jobs().values()
            if state == QUEUED
        )
