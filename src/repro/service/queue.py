"""Filesystem-spooled job queue for the optimization service.

Every job is a directory under ``<root>/jobs/``::

    <root>/jobs/<job_id>/
      job.json          # the JobSpec: netlist text, format, overrides
      lease             # claim marker: "<pid>\\n" (O_EXCL-created)
      journal.jsonl     # the run journal (written by the worker)
      result.json       # terminal: summary of the finished run
      result.blif       # terminal: the optimized netlist
      error.json        # terminal: what went wrong

The spool *is* the durable state — there is no in-memory queue to lose.
Submission is a directory rename (tmp + ``os.replace``), claiming is an
``O_EXCL`` lease-file create, so any number of client and worker
processes can share one root without coordination beyond the
filesystem.  Crash recovery (:mod:`repro.service.recovery`) is a pure
function of this layout: a job with a journal but no ``result.json``
was interrupted; a lease naming a dead pid is stale.

Status model::

    queued -> running -> done | failed
"""

from __future__ import annotations

import json
import os
import tempfile
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_ID_SAFE = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")

#: job states surfaced by :meth:`JobQueue.status`
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


class QueueError(RuntimeError):
    """Malformed job spec or unusable queue root."""


@dataclass
class JobSpec:
    """What a client submits: one netlist plus how to optimize it.

    ``netlist`` is source text in ``fmt`` (any :data:`repro.io.FORMATS`
    entry); ``config`` holds :class:`~repro.opt.config.GdoConfig` field
    overrides by name (service-owned fields — observability, the store
    path — are set by the worker and rejected here).
    """

    netlist: str
    fmt: str = "blif"
    name: str = "job"
    library: str = "mcnc_like"
    config: Dict[str, object] = field(default_factory=dict)

    _FORBIDDEN = frozenset(
        {"obs", "proof_store_path", "proof_cache_path"})

    def validate(self) -> None:
        from ..io import FORMATS

        if not isinstance(self.netlist, str) or not self.netlist.strip():
            raise QueueError("job has no netlist text")
        if self.fmt not in FORMATS:
            raise QueueError(f"unknown netlist format {self.fmt!r}")
        if self.library not in ("mcnc_like", "unit"):
            raise QueueError(f"unknown library {self.library!r}")
        if not isinstance(self.config, dict):
            raise QueueError("config overrides must be an object")
        from ..opt.config import GdoConfig

        valid = {f for f in GdoConfig.__dataclass_fields__}
        for key in self.config:
            if key in self._FORBIDDEN:
                raise QueueError(
                    f"config override {key!r} is service-owned")
            if key not in valid:
                raise QueueError(f"unknown config override {key!r}")

    def to_json(self) -> dict:
        return {
            "netlist": self.netlist, "fmt": self.fmt, "name": self.name,
            "library": self.library, "config": dict(self.config),
        }

    @classmethod
    def from_json(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise QueueError(f"job spec is not an object: {data!r}")
        spec = cls(
            netlist=data.get("netlist", ""),
            fmt=data.get("fmt", "blif"),
            name=str(data.get("name", "job")),
            library=data.get("library", "mcnc_like"),
            config=data.get("config", {}) or {},
        )
        spec.validate()
        return spec


@dataclass
class Job:
    """A claimed job: its id, directory, and parsed spec."""

    job_id: str
    path: str
    spec: JobSpec

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, "journal.jsonl")

    @property
    def result_path(self) -> str:
        return os.path.join(self.path, "result.json")

    @property
    def error_path(self) -> str:
        return os.path.join(self.path, "error.json")

    @property
    def lease_path(self) -> str:
        return os.path.join(self.path, "lease")


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class JobQueue:
    """Shared filesystem spool of optimization jobs.

    Safe for concurrent submitters and workers: submission publishes a
    complete job directory atomically; :meth:`claim` takes per-job
    ``O_EXCL`` leases, so each job runs exactly once while its claimant
    lives.  ``tick`` orders claims (FIFO by submission counter).
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Spool one job; returns its id.  The job directory appears
        atomically (staged in a tmp dir, published by rename)."""
        spec.validate()
        tick = self._next_tick()
        base = "".join(
            c if c in _ID_SAFE else "_" for c in spec.name) or "job"
        job_id = f"{tick:08d}-{base}-{uuid.uuid4().hex[:8]}"
        staging = tempfile.mkdtemp(
            dir=self.jobs_dir, prefix=".staging-")
        try:
            with open(os.path.join(staging, "job.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(spec.to_json(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(staging, os.path.join(self.jobs_dir, job_id))
        except OSError:
            for name in os.listdir(staging):
                os.unlink(os.path.join(staging, name))
            os.rmdir(staging)
            raise
        return job_id

    def _next_tick(self) -> int:
        """Monotonic submission counter (lock-free: O_EXCL ticket
        files double as the counter's history)."""
        path = os.path.join(self.root, "ticks")
        os.makedirs(path, exist_ok=True)
        n = len(os.listdir(path))
        while True:
            try:
                fd = os.open(os.path.join(path, f"{n:08d}"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                return n
            except FileExistsError:
                n += 1

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def claim(self, reclaim_stale: bool = True) -> Optional[Job]:
        """Atomically claim the oldest queued job, or ``None``.

        A lease whose pid is dead is stale (crashed worker): with
        ``reclaim_stale`` it is replaced and the job re-claimed — the
        new claimant resumes from the journal, not from scratch."""
        for job_id in sorted(self._job_ids()):
            job = self._load(job_id)
            if job is None or self._terminal(job):
                continue
            if self._take_lease(job, reclaim_stale):
                return job
        return None

    def _take_lease(self, job: Job, reclaim_stale: bool) -> bool:
        try:
            fd = os.open(job.lease_path,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if not reclaim_stale:
                return False
            pid = self._lease_pid(job)
            if pid is not None and _pid_alive(pid):
                return False
            # Stale: replace atomically so racers see one winner.
            tmp = job.lease_path + f".{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(f"{os.getpid()}\n")
            stale = self._lease_pid(job)
            if stale is not None and _pid_alive(stale):
                os.unlink(tmp)
                return False
            os.replace(tmp, job.lease_path)
            return True
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(f"{os.getpid()}\n")
        return True

    def _lease_pid(self, job: Job) -> Optional[int]:
        try:
            with open(job.lease_path, "r", encoding="utf-8") as fh:
                return int(fh.read().strip() or "0")
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def complete(self, job: Job, result: dict,
                 netlist_blif: Optional[str] = None) -> None:
        """Publish a terminal result (atomic: tmp + rename)."""
        if netlist_blif is not None:
            self._write_atomic(
                os.path.join(job.path, "result.blif"), netlist_blif)
        self._write_atomic(job.result_path,
                           json.dumps(result, sort_keys=True))

    def fail(self, job: Job, error: str) -> None:
        self._write_atomic(job.error_path,
                           json.dumps({"error": error}))

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        directory = os.path.dirname(path)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _job_ids(self) -> List[str]:
        try:
            names = os.listdir(self.jobs_dir)
        except FileNotFoundError:
            return []
        return [n for n in names if not n.startswith(".")]

    def _load(self, job_id: str) -> Optional[Job]:
        path = os.path.join(self.jobs_dir, job_id)
        try:
            with open(os.path.join(path, "job.json"), "r",
                      encoding="utf-8") as fh:
                spec = JobSpec.from_json(json.load(fh))
        except (OSError, ValueError, QueueError):
            return None
        return Job(job_id=job_id, path=path, spec=spec)

    def get(self, job_id: str) -> Optional[Job]:
        """The job by id (``None`` when unknown/corrupt)."""
        if "/" in job_id or job_id.startswith("."):
            return None
        return self._load(job_id)

    def _terminal(self, job: Job) -> bool:
        return (os.path.exists(job.result_path)
                or os.path.exists(job.error_path))

    def status(self, job_id: str) -> dict:
        """One job's state: ``{state, ...terminal payload}``."""
        job = self.get(job_id)
        if job is None:
            return {"state": "unknown"}
        if os.path.exists(job.result_path):
            try:
                with open(job.result_path, "r", encoding="utf-8") as fh:
                    result = json.load(fh)
            except (OSError, ValueError):
                result = {}
            return {"state": DONE, "result": result}
        if os.path.exists(job.error_path):
            try:
                with open(job.error_path, "r", encoding="utf-8") as fh:
                    error = json.load(fh).get("error", "")
            except (OSError, ValueError):
                error = ""
            return {"state": FAILED, "error": error}
        pid = self._lease_pid(job)
        if pid is not None and _pid_alive(pid):
            return {"state": RUNNING, "pid": pid}
        return {"state": QUEUED}

    def jobs(self) -> Dict[str, str]:
        """``{job_id: state}`` for every spooled job."""
        return {
            job_id: self.status(job_id)["state"]
            for job_id in sorted(self._job_ids())
        }

    def depth(self) -> int:
        """Jobs neither terminal nor actively running."""
        return sum(
            1 for state in self.jobs().values()
            if state == QUEUED
        )
