"""Crash recovery for the optimization service.

The durable state after a crash (power loss, SIGKILL'd worker) is the
job spool plus each job's run journal.  Recovery is a pure function of
that state:

* a job with ``result.json``/``error.json`` is **terminal** — the
  publish was atomic, partial results never exist;
* a job whose journal holds at least one ``commit`` record is
  **resumable**: :func:`resume_records` returns the committed prefix
  and the worker passes it to
  :func:`~repro.opt.gdo.gdo_optimize` as ``resume=`` — the run replays
  its own decisions (cheap) with the journal answering the expensive
  oracles (:mod:`repro.opt.replay`), then continues live from the last
  committed substitution;
* anything else is **fresh** — the journal (possibly torn mid-line by
  the crash; tolerated by
  :func:`~repro.obs.journal.load_journal_tolerant`) buys nothing, the
  job just reruns.  Still warm: its proof verdicts live in the shared
  store.

Stale leases (claimant pid dead) are cleared so the next worker can
re-claim; the resumed journal is re-emitted from seq 0, so the old one
is moved aside to ``journal.prev.jsonl`` rather than truncated.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from ..obs.journal import load_journal_tolerant
from ..opt.replay import committed_prefix
from .queue import Job, JobQueue, lease_live


@dataclass
class RecoveryReport:
    """What :func:`recover_queue` found in one spool."""

    terminal: List[str] = field(default_factory=list)
    resumable: List[str] = field(default_factory=list)
    fresh: List[str] = field(default_factory=list)
    leases_cleared: int = 0
    torn_records: int = 0
    staging_cleared: int = 0

    @property
    def pending(self) -> List[str]:
        return self.resumable + self.fresh


def resume_records(job: Job) -> Optional[List[dict]]:
    """The committed journal prefix of an interrupted job, or ``None``
    when there is nothing worth replaying."""
    if not os.path.exists(job.journal_path):
        return None
    try:
        records, _dropped = load_journal_tolerant(job.journal_path)
    except (OSError, ValueError):
        return None
    return committed_prefix(records)


def prepare_resume(job: Job) -> Optional[List[dict]]:
    """``resume_records`` plus the side effects a rerun needs: the old
    journal is moved aside (the resumed run re-emits from seq 0)."""
    prefix = resume_records(job)
    if os.path.exists(job.journal_path):
        os.replace(job.journal_path, job.journal_path + ".prev")
    return prefix


def recover_queue(queue: JobQueue) -> RecoveryReport:
    """Classify every spooled job and clear stale leases.

    Idempotent and safe to run while workers are live: only leases
    whose pid is dead are removed, and classification reads the same
    durable files the workers publish atomically.
    """
    report = RecoveryReport()
    report.staging_cleared = queue.clean_staging()
    for job_id in sorted(queue.jobs()):
        job = queue.get(job_id)
        if job is None:
            continue
        if queue._terminal(job):
            report.terminal.append(job_id)
            continue
        info = queue._lease_info(job)
        if info is not None:
            if lease_live(info):
                continue  # live claimant — not ours to touch
            try:
                os.unlink(job.lease_path)
                report.leases_cleared += 1
            except OSError:
                pass
        prefix: Optional[List[dict]] = None
        if os.path.exists(job.journal_path):
            try:
                records, dropped = load_journal_tolerant(
                    job.journal_path)
                report.torn_records += dropped
                prefix = committed_prefix(records)
            except (OSError, ValueError):
                prefix = None
        if prefix:
            report.resumable.append(job_id)
        else:
            report.fresh.append(job_id)
    return report
