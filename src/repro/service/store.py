"""Sharded persistent verdict store shared by every service worker.

The single-JSON :class:`~repro.proof.cache.ProofCache` mirror is a
read-modify-write file — fine for one process, a serialization point
(and, pre-fix, a clobbering hazard) for many.  The service replaces it
with a store laid out for concurrent writers::

    <root>/
      shards/<prefix>/base.json                   # compacted snapshot
      shards/<prefix>/seg-<pid>-<token>.open.jsonl  # live writer segment
      shards/<prefix>/seg-<pid>-<token>.jsonl       # sealed segment

* **sharding** — verdicts land in the shard named by the first
  ``prefix_len`` hex digits of their obligation hash.  Obligation hashes
  are uniform, so shards stay balanced, and every shard is an
  independent unit of append, merge, and compaction (the hash-prefix
  clustering layout motivated by Donovan et al., PAPERS.md).
* **append** — each writer appends one JSON line per verdict to its own
  per-process segment file opened ``O_APPEND``; whole-line writes from
  distinct writers never interleave, so *no verdict is ever lost* to
  concurrency.  ``flush`` fsyncs each dirty shard fd once (the
  per-shard fsync discipline).
* **read-side merge** — a shard's view is ``base.json`` plus every
  segment, sealed *and* open.  Verdicts are pure functions of their key
  and only definitive verdicts are stored, so merge order is
  irrelevant: duplicate keys always agree.  Readers tail segments
  incrementally (byte offsets per file), making another client's fresh
  verdicts visible at the next refresh without re-reading the store.
* **compaction** — folds sealed segments into ``base.json``
  (tmp + rename, atomic) and unlinks them.  Readers list segments
  *before* reading the base, so a concurrent compaction can only move
  entries from files the reader has already consumed into a base it is
  about to read — never hide them.  Open segments whose writer pid is
  dead (SIGKILL'd worker) are sealed first, so crashes leak nothing.
"""

from __future__ import annotations

import json
import os
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..faults import fault, register_point
from ..proof.backends import INVALID, VALID

_HEX = "0123456789abcdef"

#: fault points of the store's write path (DESIGN.md §11)
FP_APPEND_TORN = register_point(
    "store.append.torn",
    "segment append writes only a partial line (torn write; the "
    "writer believes it succeeded)")
FP_APPEND_ERROR = register_point(
    "store.append.error",
    "segment append fails with OSError (full disk, dead mount)")
FP_FSYNC_ERROR = register_point(
    "store.fsync.error",
    "shard fsync fails with OSError (write-back error)")


class StoreError(RuntimeError):
    """The store root is unusable (bad layout or parameters)."""


def shard_of(key: str, prefix_len: int) -> str:
    """The shard name holding ``key`` (hash-prefix, lower-cased)."""
    prefix = key[:prefix_len].lower()
    if len(prefix) < prefix_len or any(c not in _HEX for c in prefix):
        # Non-hex or short keys (tests, sentinel keys) share one shard.
        return "_" * prefix_len
    return prefix


def _segment_pid(name: str) -> Optional[int]:
    """Writer pid encoded in a segment file name, if parseable."""
    parts = name.split("-")
    if len(parts) >= 3 and parts[0] == "seg":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - conservative
        return True
    return True


@dataclass
class CompactionStats:
    """What one :meth:`ShardedVerdictStore.compact` pass did."""

    shards: int = 0
    segments_folded: int = 0
    orphans_sealed: int = 0
    entries: int = 0
    torn_lines_dropped: int = 0
    retired: int = 0           # verdicts dropped by the GC policy


@dataclass
class _ShardView:
    """Reader-side state of one shard: merged dict + tail offsets."""

    entries: Dict[str, str] = field(default_factory=dict)
    offsets: Dict[str, int] = field(default_factory=dict)
    base_stat: Optional[Tuple[int, int]] = None  # (st_ino, st_size)


class ShardedVerdictStore:
    """Append-only, hash-prefix-sharded store of definitive verdicts.

    One instance per process; many instances (across processes and
    hosts sharing a filesystem) may point at the same ``root``.
    """

    def __init__(self, root: str, prefix_len: int = 1,
                 fsync_interval: int = 64,
                 degrade_after: int = 4, probe_interval: int = 32,
                 on_event: Optional[Callable[[str, dict], None]] = None,
                 gc_max_generations: Optional[int] = None,
                 gc_max_entries: Optional[int] = None):
        if not 1 <= prefix_len <= 4:
            raise StoreError(f"prefix_len {prefix_len} not in 1..4")
        if gc_max_generations is not None and gc_max_generations < 1:
            raise StoreError("gc_max_generations must be >= 1")
        if gc_max_entries is not None and gc_max_entries < 1:
            raise StoreError("gc_max_entries must be >= 1")
        self.root = root
        self.prefix_len = prefix_len
        self.fsync_interval = max(1, fsync_interval)
        self.shards_dir = os.path.join(root, "shards")
        os.makedirs(self.shards_dir, exist_ok=True)
        self._token = uuid.uuid4().hex[:8]
        self._write_fds: Dict[str, int] = {}       # shard -> fd
        self._write_paths: Dict[str, str] = {}     # shard -> open path
        self._unsynced: Dict[str, int] = {}        # shard -> appends
        self._views: Dict[str, _ShardView] = {}
        self.appends = 0
        # --- degradation ladder (DESIGN.md §11) -----------------------
        # After ``degrade_after`` *consecutive* write/fsync failures the
        # store turns read-only: appends land in a local in-memory
        # overlay (this process keeps its verdicts; nothing shared).
        # Every ``probe_interval`` overlay appends a re-promotion is
        # probed — on success the overlay is flushed to disk and the
        # store is read-write again.
        self.degrade_after = max(1, degrade_after)
        self.probe_interval = max(1, probe_interval)
        self.on_event = on_event
        self.read_only = False
        self._overlay: Dict[str, str] = {}
        self._consecutive_failures = 0
        self._since_probe = 0
        self.write_errors = 0      # total failed writes/fsyncs
        self.degradations = 0      # read-write -> read-only transitions
        self.repromotions = 0      # read-only -> read-write transitions
        # --- GC policy (age/size-bounded retirement) ------------------
        # Verdicts are pure and re-provable, so the store may retire
        # them: compaction stamps every key with the generation that
        # first folded it into the base, and drops keys older than
        # ``gc_max_generations`` compactions or beyond the
        # ``gc_max_entries`` per-shard size bound (oldest first).
        # ``None`` (the defaults) = keep everything.
        self.gc_max_generations = gc_max_generations
        self.gc_max_entries = gc_max_entries
        self.retired = 0           # cumulative GC-retired verdicts

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def append(self, key: str, verdict: str) -> bool:
        """Durably queue one definitive verdict; returns True if written.

        Non-definitive verdicts are refused (budget-relative, not
        shareable).  The line reaches the OS immediately via a single
        ``write(2)`` on an ``O_APPEND`` fd — atomic with respect to
        every other writer of the shard directory.

        Never raises on I/O failure: a failed write keeps the verdict
        in the local overlay (reads still see it) and returns False;
        persistent failure degrades the store to read-only until a
        probe write succeeds again.
        """
        if verdict not in (VALID, INVALID):
            return False
        shard = shard_of(key, self.prefix_len)
        # Keep our own view current regardless of disk outcome.
        self._view(shard).entries.setdefault(key, verdict)
        if self.read_only:
            self._overlay.setdefault(key, verdict)
            self._since_probe += 1
            if self._since_probe >= self.probe_interval:
                self._since_probe = 0
                return self._try_repromote()
            return False
        if self._append_disk(shard, key, verdict):
            self.appends += 1
            self._consecutive_failures = 0
            return True
        self._write_failed(key, verdict)
        return False

    def _append_disk(self, shard: str, key: str, verdict: str) -> bool:
        """One segment append; False (never an exception) on failure."""
        line = json.dumps({"k": key, "v": verdict}) + "\n"
        data = line.encode("utf-8")
        try:
            fd = self._shard_fd(shard)
            if fault(FP_APPEND_TORN):
                # Torn write: a prefix lands, no newline — readers and
                # compaction drop it; the writer believes it succeeded.
                os.write(fd, data[: max(1, len(data) // 2)])
                return True
            if fault(FP_APPEND_ERROR):
                raise OSError("injected append failure")
            os.write(fd, data)
        except OSError:
            return False
        self._unsynced[shard] = self._unsynced.get(shard, 0) + 1
        if self._unsynced[shard] >= self.fsync_interval:
            self._fsync_shard(shard, fd)
        return True

    def _fsync_shard(self, shard: str, fd: int) -> None:
        try:
            if fault(FP_FSYNC_ERROR):
                raise OSError("injected fsync failure")
            os.fsync(fd)
            self._unsynced[shard] = 0
        except OSError:
            self._write_failed()

    def _write_failed(self, key: Optional[str] = None,
                      verdict: Optional[str] = None) -> None:
        self.write_errors += 1
        self._consecutive_failures += 1
        if key is not None and verdict is not None:
            self._overlay.setdefault(key, verdict)
        if (not self.read_only
                and self._consecutive_failures >= self.degrade_after):
            self.read_only = True
            self.degradations += 1
            self._since_probe = 0
            self._emit("store_degraded",
                       consecutive_failures=self._consecutive_failures,
                       overlay=len(self._overlay))

    def _try_repromote(self) -> bool:
        """Probe the write path; on success flush the overlay and leave
        read-only mode.  Any failure keeps the store degraded."""
        for key, verdict in list(self._overlay.items()):
            shard = shard_of(key, self.prefix_len)
            if not self._append_disk(shard, key, verdict):
                self.write_errors += 1
                return False
            del self._overlay[key]
            self.appends += 1
        self.read_only = False
        self._consecutive_failures = 0
        self.repromotions += 1
        self._emit("store_repromoted", flushed=self.appends)
        return True

    def _emit(self, etype: str, **fields) -> None:
        if self.on_event is not None:
            try:
                self.on_event(etype, fields)
            except Exception:  # pragma: no cover - observer must not kill
                pass

    def _shard_fd(self, shard: str) -> int:
        fd = self._write_fds.get(shard)
        if fd is not None:
            return fd
        shard_dir = os.path.join(self.shards_dir, shard)
        os.makedirs(shard_dir, exist_ok=True)
        name = f"seg-{os.getpid()}-{self._token}.open.jsonl"
        path = os.path.join(shard_dir, name)
        fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        self._write_fds[shard] = fd
        self._write_paths[shard] = path
        self._unsynced[shard] = 0
        return fd

    def flush(self) -> None:
        """fsync every shard fd with unsynced appends."""
        for shard, fd in list(self._write_fds.items()):
            if self._unsynced.get(shard):
                self._fsync_shard(shard, fd)

    def seal(self) -> None:
        """Close this writer's segments and mark them compactable
        (``.open.jsonl`` → ``.jsonl``).  A degraded store gets one
        last re-promotion attempt so overlay verdicts are not lost if
        the write path recovered."""
        if self.read_only:
            self._try_repromote()
        self.flush()
        for shard, fd in list(self._write_fds.items()):
            os.close(fd)
            path = self._write_paths[shard]
            sealed = path[: -len(".open.jsonl")] + ".jsonl"
            try:
                os.replace(path, sealed)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            del self._write_fds[shard]
            del self._write_paths[shard]
        self._unsynced.clear()

    close = seal

    def __enter__(self) -> "ShardedVerdictStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.seal()
        return False

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def get(self, key: str, refresh: bool = False) -> Optional[str]:
        """The stored verdict for ``key`` (``None`` on a miss).

        ``refresh=True`` re-tails the key's shard first, picking up
        verdicts other processes appended since the last look — the
        read path of cross-client cache sharing.
        """
        shard = shard_of(key, self.prefix_len)
        view = self._view(shard)
        verdict = view.entries.get(key)
        if verdict is None and refresh:
            self.refresh(shard)
            verdict = view.entries.get(key)
        return verdict

    def load(self) -> Dict[str, str]:
        """Refresh every shard and return the merged verdict dict."""
        merged: Dict[str, str] = {}
        for shard in self._list_shards():
            self.refresh(shard)
            merged.update(self._views[shard].entries)
        return merged

    def __len__(self) -> int:
        return len(self.load())

    def refresh(self, shard: str) -> None:
        """Fold new on-disk bytes of one shard into its view.

        Segments are read before the base (see the module docstring for
        why that order survives a concurrent compaction); each segment
        is tailed from its last consumed offset, so a refresh after N
        appended verdicts costs O(N), not O(shard).
        """
        view = self._view(shard)
        shard_dir = os.path.join(self.shards_dir, shard)
        try:
            names = sorted(os.listdir(shard_dir))
        except OSError:
            return
        segments = [n for n in names if n.startswith("seg-")
                    and n.endswith(".jsonl")]
        for name in segments:
            self._tail_segment(view, os.path.join(shard_dir, name), name)
        # Forget offsets of segments compaction removed — their entries
        # are in the base we are about to (re)read.
        gone = set(view.offsets) - set(segments)
        for name in gone:
            del view.offsets[name]
        base = os.path.join(shard_dir, "base.json")
        try:
            st = os.stat(base)
        except OSError:
            return
        stamp = (st.st_ino, st.st_size)
        if stamp != view.base_stat:
            for k, v in _read_base(base).items():
                view.entries.setdefault(k, v)
            view.base_stat = stamp

    def _tail_segment(self, view: _ShardView, path: str,
                      name: str) -> None:
        offset = view.offsets.get(name, 0)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except OSError:
            return
        if not data:
            return
        # Consume only whole lines; a torn tail (writer mid-append or
        # crashed) is retried at the next refresh / dropped by compact.
        cut = data.rfind(b"\n")
        if cut < 0:
            return
        for line in data[: cut + 1].splitlines():
            entry = _parse_segment_line(line)
            if entry is not None:
                view.entries.setdefault(*entry)
        view.offsets[name] = offset + cut + 1

    def _view(self, shard: str) -> _ShardView:
        view = self._views.get(shard)
        if view is None:
            view = self._views[shard] = _ShardView()
        return view

    def _list_shards(self) -> List[str]:
        try:
            return sorted(
                n for n in os.listdir(self.shards_dir)
                if os.path.isdir(os.path.join(self.shards_dir, n))
            )
        except OSError:
            return []

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self, reclaim_orphans: bool = True) -> CompactionStats:
        """Fold sealed segments into each shard's base snapshot.

        Safe under concurrent readers and writers: only sealed segments
        are folded (live writers own ``.open`` files), the base is
        replaced atomically, and folded segments are unlinked only
        after the new base is in place.  ``reclaim_orphans`` first
        seals ``.open`` segments whose writer pid is gone.

        Each fold advances the shard's **generation** and stamps
        newly-folded keys with it (recorded under a ``"__meta__"`` key
        older readers transparently ignore).  When the GC bounds are
        set, verdicts whose stamp fell out of the ``gc_max_generations``
        window — or beyond the ``gc_max_entries`` size bound, oldest
        first — are retired from the base: dropping a verdict only
        costs a future re-prove, never correctness.
        """
        stats = CompactionStats()
        for shard in self._list_shards():
            shard_dir = os.path.join(self.shards_dir, shard)
            if reclaim_orphans:
                stats.orphans_sealed += _seal_orphans(shard_dir)
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            sealed = [
                n for n in names
                if n.startswith("seg-") and n.endswith(".jsonl")
                and not n.endswith(".open.jsonl")
            ]
            base = os.path.join(shard_dir, "base.json")
            merged = _read_base(base)
            if not sealed:
                if merged:
                    stats.shards += 1
                    stats.entries += len(merged)
                continue
            stamps, generation = _read_base_meta(base)
            generation += 1
            for name in sealed:
                entries, torn = _read_segment(
                    os.path.join(shard_dir, name))
                for key in entries:
                    if key not in merged:
                        stamps[key] = generation
                merged.update(entries)
                stats.torn_lines_dropped += torn
            stamps = {k: g for k, g in stamps.items() if k in merged}
            retired = self._gc_keys(merged, stamps, generation)
            for key in retired:
                merged.pop(key, None)
                stamps.pop(key, None)
            stats.retired += len(retired)
            self.retired += len(retired)
            snapshot = dict(merged)
            snapshot["__meta__"] = {"generation": generation,
                                    "stamps": stamps}
            tmp = base + f".tmp-{os.getpid()}-{self._token}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, base)
            for name in sealed:
                try:
                    os.unlink(os.path.join(shard_dir, name))
                except OSError:  # pragma: no cover - racing compactor
                    pass
            stats.shards += 1
            stats.segments_folded += len(sealed)
            stats.entries += len(merged)
        return stats

    def _gc_keys(self, merged: Dict[str, str], stamps: Dict[str, int],
                 generation: int) -> List[str]:
        """Keys the GC policy retires from one shard's merged view.

        Age first (stamped more than ``gc_max_generations`` folds ago
        — keys with no stamp, i.e. from a pre-GC base, count as oldest),
        then the size bound, evicting oldest-stamped keys (ties by key)
        until ``gc_max_entries`` survive.
        """
        retired: List[str] = []
        if self.gc_max_generations is not None:
            floor = generation - self.gc_max_generations
            retired.extend(k for k in merged
                           if stamps.get(k, 0) <= floor)
        if self.gc_max_entries is not None:
            dropped = set(retired)
            survivors = [k for k in merged if k not in dropped]
            excess = len(survivors) - self.gc_max_entries
            if excess > 0:
                survivors.sort(key=lambda k: (stamps.get(k, 0), k))
                retired.extend(survivors[:excess])
        return retired


def _seal_orphans(shard_dir: str) -> int:
    sealed = 0
    try:
        names = os.listdir(shard_dir)
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".open.jsonl"):
            continue
        pid = _segment_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        path = os.path.join(shard_dir, name)
        target = path[: -len(".open.jsonl")] + ".jsonl"
        try:
            os.replace(path, target)
            sealed += 1
        except OSError:  # pragma: no cover - racing compactor
            pass
    return sealed


def _parse_segment_line(line: bytes) -> Optional[Tuple[str, str]]:
    line = line.strip()
    if not line:
        return None
    try:
        obj = json.loads(line)
    except ValueError:
        return None
    if not isinstance(obj, dict):
        return None
    key, verdict = obj.get("k"), obj.get("v")
    if isinstance(key, str) and verdict in (VALID, INVALID):
        return key, verdict
    return None


def _read_segment(path: str) -> Tuple[Dict[str, str], int]:
    entries: Dict[str, str] = {}
    torn = 0
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return entries, 0
    for line in data.splitlines():
        parsed = _parse_segment_line(line)
        if parsed is None:
            if line.strip():
                torn += 1
            continue
        entries.setdefault(*parsed)
    return entries, torn


def _read_base(path: str) -> Dict[str, str]:
    # Filtering to definitive verdict values also skips "__meta__" (the
    # GC bookkeeping, a dict) — so pre-GC readers and GC-aware bases
    # are compatible in both directions.
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict):
        return {}
    return {k: v for k, v in data.items()
            if isinstance(k, str) and v in (VALID, INVALID)}


def _read_base_meta(path: str) -> Tuple[Dict[str, int], int]:
    """GC bookkeeping of a base snapshot: ``(stamps, generation)``.

    A base written before the GC policy existed has neither — its keys
    read as stamp 0 (oldest) at generation 0.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}, 0
    if not isinstance(data, dict):
        return {}, 0
    meta = data.get("__meta__")
    if not isinstance(meta, dict):
        return {}, 0
    generation = meta.get("generation")
    if not isinstance(generation, int) or generation < 0:
        generation = 0
    raw = meta.get("stamps")
    stamps: Dict[str, int] = {}
    if isinstance(raw, dict):
        stamps = {k: g for k, g in raw.items()
                  if isinstance(k, str) and isinstance(g, int)}
    return stamps, generation


# ----------------------------------------------------------------------
# broker adapter
# ----------------------------------------------------------------------
class ShardedProofCache:
    """:class:`~repro.proof.cache.ProofCache`-compatible adapter over a
    :class:`ShardedVerdictStore`.

    Same interface the broker consumes (``get``/``put``/``flush``/
    ``len``), backed by the shared store instead of a private JSON
    mirror.  ``shared_hits`` counts gets served from the *store* —
    verdicts this process never computed, i.e. cross-client cache
    sharing — separately from in-memory LRU hits.
    """

    def __init__(self, store: ShardedVerdictStore,
                 max_entries: int = 4096, refresh_on_miss: bool = True):
        self.store = store
        self.max_entries = max(1, max_entries)
        self.refresh_on_miss = refresh_on_miss
        self.path = store.root  # parity with ProofCache.path
        self._mem: "OrderedDict[str, str]" = OrderedDict()
        self.shared_hits = 0
        self.local_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._mem)

    def get(self, key: str) -> Optional[str]:
        verdict = self._mem.get(key)
        if verdict is not None:
            self._mem.move_to_end(key)
            self.local_hits += 1
            return verdict
        verdict = self.store.get(key, refresh=self.refresh_on_miss)
        if verdict is not None:
            self.shared_hits += 1
            self._put_mem(key, verdict)
            return verdict
        self.misses += 1
        return None

    def put(self, key: str, verdict: str) -> None:
        self._put_mem(key, verdict)
        self.store.append(key, verdict)  # refuses non-definitive

    def _put_mem(self, key: str, verdict: str) -> None:
        self._mem[key] = verdict
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    @property
    def shared_hit_rate(self) -> float:
        """Fraction of proof-or-store decisions another client saved
        this one: store-served hits over store hits + real misses."""
        total = self.shared_hits + self.misses
        return self.shared_hits / total if total else 0.0

    def health(self) -> Dict[str, object]:
        """The store's degradation state, for job summaries/stats."""
        return {
            "read_only": self.store.read_only,
            "write_errors": self.store.write_errors,
            "degradations": self.store.degradations,
            "repromotions": self.store.repromotions,
            "overlay_entries": len(self.store._overlay),
            "retired": self.store.retired,
        }

    def compact(self, reclaim_orphans: bool = True) -> CompactionStats:
        """Fold-and-GC the backing store (see
        :meth:`ShardedVerdictStore.compact`)."""
        return self.store.compact(reclaim_orphans=reclaim_orphans)

    def flush(self) -> None:
        self.store.flush()

    def close(self) -> None:
        self.store.seal()
