"""The optimization daemon: a JSON-lines TCP front end over the spool.

One request per connection, one JSON object per line::

    {"op": "submit", "spec": {...JobSpec...}}   -> {"ok": true, "job": id}
    {"op": "status", "job": "<id>"}             -> {"ok": true, ...}
    {"op": "jobs"}                              -> {"ok": true, "jobs": {...}}
    {"op": "stats"}                             -> {"ok": true, "stats": {...}}
    {"op": "drain", "timeout": 60}              -> {"ok": true, "drained": b}
    {"op": "compact"}                           -> {"ok": true, ...}
    {"op": "deadletter"}                        -> {"ok": true, "deadletter": {...}}
    {"op": "requeue", "job": "<id>"}            -> {"ok": true, "job": id}
    {"op": "ping"}                              -> {"ok": true}

The daemon owns a :class:`~repro.service.worker.WorkerPool`; all durable
state lives in the spool and the sharded store, so killing the daemon
loses nothing — on restart it recovers the spool
(:func:`~repro.service.recovery.recover_queue`) and interrupted jobs
resume from their journals.

Service-level metrics (jobs/sec, queue depth, cross-client cache hit
rate) are aggregated from the durable per-job results into an
:class:`~repro.obs.MetricsRegistry` snapshot and exported to
``BENCH_service.json`` via :func:`export_service`.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from typing import Dict, Optional

from ..obs import (
    MetricsRegistry, append_bench, bench_entry, event_counts,
    load_events, validate_service_entry,
)
from .queue import JobQueue, JobSpec, QueueError
from .recovery import recover_queue
from .store import ShardedVerdictStore
from .supervisor import Supervisor
from .worker import WorkerPool

MAX_REQUEST_BYTES = 64 * 1024 * 1024  # netlists travel inline


def service_stats(root: str, started: Optional[float] = None) -> dict:
    """Aggregate service metrics from the durable spool state.

    Pure function of the spool — callable from the daemon, the CLI
    (offline), and tests alike.  Cross-client hit rate counts verdicts
    served to one job out of another client's store appends
    (``store.shared_hits``) against store misses.
    """
    queue = JobQueue(root)
    states: Dict[str, int] = {}
    shared_hits = local_hits = misses = 0
    seconds = 0.0
    resumed = replayed = 0
    for job_id, state in queue.jobs().items():
        states[state] = states.get(state, 0) + 1
        if state != "done":
            continue
        status = queue.status(job_id)
        result = status.get("result", {})
        store = result.get("store", {})
        shared_hits += store.get("shared_hits", 0)
        local_hits += store.get("local_hits", 0)
        misses += store.get("misses", 0)
        seconds += result.get("seconds", 0.0)
        resumed += 1 if result.get("resumed") else 0
        replayed += result.get("replayed_verdicts", 0)
    done = states.get("done", 0)
    uptime = max(time.monotonic() - started, 1e-9) if started else None
    lookups = shared_hits + misses
    stats = {
        "jobs": states,
        "queue_depth": states.get("queued", 0),
        "jobs_done": done,
        "jobs_failed": states.get("failed", 0),
        "job_seconds_total": seconds,
        "jobs_per_sec_busy": done / seconds if seconds > 0 else 0.0,
        "cross_client_hits": shared_hits,
        "local_hits": local_hits,
        "store_misses": misses,
        "cross_client_hit_rate":
            shared_hits / lookups if lookups else 0.0,
        "resumed_jobs": resumed,
        "replayed_verdicts": replayed,
    }
    if uptime is not None:
        stats["uptime_seconds"] = uptime
        stats["jobs_per_sec"] = done / uptime
    return stats


def stats_registry(stats: dict) -> MetricsRegistry:
    """The service metrics as an ``obs`` registry (snapshot-able,
    mergeable with run registries)."""
    reg = MetricsRegistry()
    for state, count in stats.get("jobs", {}).items():
        reg.counter("service_jobs", state=state).inc(count)
    reg.counter("service_cross_client_hits").inc(
        stats.get("cross_client_hits", 0))
    reg.counter("service_store_misses").inc(
        stats.get("store_misses", 0))
    reg.counter("service_replayed_verdicts").inc(
        stats.get("replayed_verdicts", 0))
    reg.gauge("service_queue_depth").set(stats.get("queue_depth", 0))
    reg.gauge("service_cross_client_hit_rate").set(
        stats.get("cross_client_hit_rate", 0.0))
    reg.gauge("service_jobs_per_sec").set(
        stats.get("jobs_per_sec", stats.get("jobs_per_sec_busy", 0.0)))
    return reg


def export_service(
    stats: dict,
    path: str = "BENCH_service.json",
    key: Optional[str] = None,
    **extra,
) -> dict:
    """Append one service-stats entry to ``BENCH_service.json``."""
    entry = bench_entry(
        key=key,
        jobs=dict(stats.get("jobs", {})),
        jobs_per_sec=stats.get(
            "jobs_per_sec", stats.get("jobs_per_sec_busy", 0.0)),
        queue_depth=stats.get("queue_depth", 0),
        cross_client_hit_rate=stats.get("cross_client_hit_rate", 0.0),
        cross_client_hits=stats.get("cross_client_hits", 0),
        store_misses=stats.get("store_misses", 0),
        resumed_jobs=stats.get("resumed_jobs", 0),
        replayed_verdicts=stats.get("replayed_verdicts", 0),
        metrics=stats_registry(stats).snapshot(),
        **extra,
    )
    validate_service_entry(entry)
    append_bench(path, entry, key_fields=("key",))
    return entry


class _Handler(socketserver.StreamRequestHandler):
    #: per-connection socket timeout — a client that connects and never
    #: sends (or never finishes a line) cannot pin a handler thread
    timeout = 30.0

    def handle(self) -> None:  # pragma: no cover - exercised via client
        try:
            line = self.rfile.readline(MAX_REQUEST_BYTES)
        except (TimeoutError, socket.timeout, OSError):
            return  # slow-loris / dead peer: drop the connection
        if not line:
            return
        try:
            request = json.loads(line)
        except ValueError:
            self._reply({"ok": False,
                         "error": "malformed JSON request"})
            return
        if not isinstance(request, dict):
            self._reply({"ok": False,
                         "error": "request must be a JSON object"})
            return
        try:
            response = self.server.service.dispatch(request)  # type: ignore[attr-defined]
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            response = {"ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        self._reply(response)

    def _reply(self, response: dict) -> None:
        try:
            self.wfile.write(json.dumps(response).encode() + b"\n")
        except OSError:  # pragma: no cover - peer went away
            pass


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class OptimizationService:
    """The daemon: spool + store + worker pool + TCP front end."""

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        stall_timeout: float = 30.0,
    ):
        self.root = os.path.abspath(root)
        self.queue = JobQueue(self.root)
        self.store_path = os.path.join(self.root, "store")
        self.recovery = recover_queue(self.queue)
        self.pool = WorkerPool(self.root, store_path=self.store_path,
                               workers=workers)
        self.supervisor = Supervisor(self.pool, self.queue,
                                     stall_timeout=stall_timeout)
        self.started = time.monotonic()
        self._server = _Server((host, port), _Handler)
        self._server.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._watch_stop = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None

    @property
    def address(self):
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return self._server.server_address

    # ------------------------------------------------------------------
    def _start_watch(self) -> None:
        self._watch_thread = threading.Thread(
            target=self.supervisor.watch, args=(self._watch_stop,),
            daemon=True)
        self._watch_thread.start()

    def _stop_watch(self) -> None:
        self._watch_stop.set()
        if self._watch_thread is not None:
            self._watch_thread.join(5.0)
            self._watch_thread = None

    def start(self) -> None:
        """Start workers (supervised) and serve requests on a
        background thread."""
        self.pool.start()
        self._start_watch()
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True)
        self._thread.start()

    def serve_forever(self) -> None:
        """Foreground mode (the CLI's ``serve`` command)."""
        self.pool.start()
        self._start_watch()
        try:
            self._server.serve_forever()
        finally:
            self._stop_watch()
            self.pool.stop()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self._stop_watch()
        self.pool.stop()
        self.supervisor.events.close()

    # ------------------------------------------------------------------
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "root": self.root}
        if op == "submit":
            try:
                spec = JobSpec.from_json(request.get("spec", {}))
            except QueueError as exc:
                return {"ok": False, "error": str(exc)}
            job_id = self.queue.submit(spec)
            return {"ok": True, "job": job_id}
        if op == "status":
            status = self.queue.status(str(request.get("job", "")))
            return {"ok": True, **status}
        if op == "jobs":
            return {"ok": True, "jobs": self.queue.jobs()}
        if op == "stats":
            stats = service_stats(self.root, started=self.started)
            stats["workers_alive"] = self.pool.alive
            stats["recovery"] = {
                "resumable": len(self.recovery.resumable),
                "leases_cleared": self.recovery.leases_cleared,
                "torn_records": self.recovery.torn_records,
                "staging_cleared": self.recovery.staging_cleared,
            }
            stats["supervisor"] = self.supervisor.stats()
            stats["deadletter"] = len(self.queue.deadletter_jobs())
            events, dropped = load_events(
                os.path.join(self.root, "events.jsonl"))
            stats["events"] = event_counts(events)
            stats["events_dropped"] = dropped
            return {"ok": True, "stats": stats}
        if op == "deadletter":
            return {"ok": True,
                    "deadletter": self.queue.deadletter_jobs()}
        if op == "requeue":
            job_id = str(request.get("job", ""))
            if self.queue.requeue(job_id):
                return {"ok": True, "job": job_id}
            return {"ok": False,
                    "error": f"no dead-lettered job {job_id!r}"}
        if op == "drain":
            timeout = float(request.get("timeout", 60.0))
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                states = self.queue.jobs().values()
                if all(s in ("done", "failed") for s in states):
                    return {"ok": True, "drained": True}
                time.sleep(0.05)
            return {"ok": True, "drained": False}
        if op == "compact":
            store = ShardedVerdictStore(self.store_path)
            cs = store.compact()
            store.close()
            return {"ok": True, "shards": cs.shards,
                    "segments_folded": cs.segments_folded,
                    "entries": cs.entries,
                    "orphans_sealed": cs.orphans_sealed,
                    "retired": cs.retired}
        return {"ok": False, "error": f"unknown op {op!r}"}


def request(host: str, port: int, payload: dict,
            timeout: float = 30.0) -> dict:
    """One client request/response round trip."""
    with socket.create_connection((host, port), timeout=timeout) as sk:
        sk.sendall(json.dumps(payload).encode() + b"\n")
        chunks = []
        while True:
            chunk = sk.recv(1 << 20)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    data = b"".join(chunks)
    if not data:
        raise ConnectionError("empty response from service")
    return json.loads(data)
