"""Client for the optimization daemon's JSON-lines protocol."""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..io import format_from_path
from .server import request


class ServiceClient:
    """Thin wrapper over the wire protocol (one connection per call)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _call(self, payload: dict) -> dict:
        response = request(self.host, self.port, payload,
                           timeout=self.timeout)
        if not response.get("ok"):
            raise RuntimeError(
                f"service error: {response.get('error', response)}")
        return response

    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._call({"op": "ping"})

    def submit(
        self,
        netlist: str,
        fmt: str = "blif",
        name: str = "job",
        library: str = "mcnc_like",
        config: Optional[Dict[str, object]] = None,
    ) -> str:
        """Submit netlist source text; returns the job id."""
        response = self._call({"op": "submit", "spec": {
            "netlist": netlist, "fmt": fmt, "name": name,
            "library": library, "config": config or {},
        }})
        return response["job"]

    def submit_file(self, path: str, fmt: Optional[str] = None,
                    **kwargs) -> str:
        """Submit a netlist file (format inferred from the extension)."""
        fmt = fmt or format_from_path(path)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        name = kwargs.pop(
            "name", os.path.splitext(os.path.basename(path))[0])
        return self.submit(text, fmt=fmt, name=name, **kwargs)

    def status(self, job_id: str) -> dict:
        return self._call({"op": "status", "job": job_id})

    def jobs(self) -> Dict[str, str]:
        return self._call({"op": "jobs"})["jobs"]

    def stats(self) -> dict:
        return self._call({"op": "stats"})["stats"]

    def drain(self, timeout: float = 60.0) -> bool:
        response = self._call({"op": "drain", "timeout": timeout})
        return bool(response.get("drained"))

    def compact(self) -> dict:
        return self._call({"op": "compact"})

    def deadletter(self) -> Dict[str, dict]:
        """The quarantined poison jobs: ``{job_id: reason payload}``."""
        return self._call({"op": "deadletter"})["deadletter"]

    def requeue(self, job_id: str) -> bool:
        """Send a dead-lettered job back to the spool (fresh budget)."""
        try:
            return bool(self._call(
                {"op": "requeue", "job": job_id}).get("ok"))
        except RuntimeError:
            return False

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> dict:
        """Block until the job is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status.get("state") in ("done", "failed",
                                       "deadlettered"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status.get('state')!r} "
                    f"after {timeout}s")
            time.sleep(poll)
