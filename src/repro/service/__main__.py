"""CLI for the optimization service: ``python -m repro.service``.

Daemon side::

    python -m repro.service serve --root RUNDIR [--port P] [--workers N]
    python -m repro.service recover --root RUNDIR
    python -m repro.service drain --root RUNDIR [--workers N] [--supervise]
    python -m repro.service deadletter list    --root RUNDIR | --port P
    python -m repro.service deadletter requeue JOB --root RUNDIR | --port P

Client side (against a running daemon)::

    python -m repro.service submit --port P circuit.blif [-o key=value]
    python -m repro.service status --port P [JOB_ID]
    python -m repro.service stats --port P [--export BENCH_service.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def _parse_overrides(pairs: List[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"bad override {pair!r} (want key=value)")
        try:
            overrides[key] = json.loads(value)
        except ValueError:
            overrides[key] = value
    return overrides


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="long-lived GDO optimization service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon (foreground)")
    serve.add_argument("--root", required=True,
                       help="service state directory (spool + store)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks an ephemeral port (printed)")
    serve.add_argument("--workers", type=int, default=2)

    recover = sub.add_parser(
        "recover", help="classify spooled jobs, clear stale leases")
    recover.add_argument("--root", required=True)

    drain = sub.add_parser(
        "drain", help="offline batch: run workers until spool is empty")
    drain.add_argument("--root", required=True)
    drain.add_argument("--workers", type=int, default=2)
    drain.add_argument("--supervise", action="store_true",
                       help="respawn crashed workers, kill hung ones")
    drain.add_argument("--stall-timeout", type=float, default=30.0)

    deadletter = sub.add_parser(
        "deadletter", help="inspect or requeue quarantined poison jobs")
    deadletter.add_argument("action", choices=("list", "requeue"))
    deadletter.add_argument("job", nargs="?", default=None,
                            help="job id (for requeue)")
    group = deadletter.add_mutually_exclusive_group(required=True)
    group.add_argument("--root", help="operate on the spool directly")
    group.add_argument("--port", type=int,
                       help="operate through a running daemon")
    deadletter.add_argument("--host", default="127.0.0.1")

    submit = sub.add_parser("submit", help="submit a netlist file")
    submit.add_argument("path")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument("--fmt", default=None,
                        help="blif|bench|verilog (default: by extension)")
    submit.add_argument("--library", default="mcnc_like",
                        choices=("mcnc_like", "unit"))
    submit.add_argument("-o", "--override", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="GdoConfig override (JSON value)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal")

    status = sub.add_parser("status", help="job or queue status")
    status.add_argument("job", nargs="?", default=None)
    status.add_argument("--host", default="127.0.0.1")
    status.add_argument("--port", type=int, required=True)

    stats = sub.add_parser("stats", help="service-level metrics")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, required=True)
    stats.add_argument("--export", default=None, metavar="PATH",
                       help="also append a BENCH_service.json entry")

    args = parser.parse_args(argv)

    if args.command == "serve":
        from .server import OptimizationService

        service = OptimizationService(
            args.root, host=args.host, port=args.port,
            workers=args.workers)
        host, port = service.address
        print(f"serving on {host}:{port} "
              f"(root={service.root}, workers={args.workers}, "
              f"recovered: {len(service.recovery.resumable)} resumable, "
              f"{len(service.recovery.fresh)} fresh)", flush=True)
        try:
            service.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return 0

    if args.command == "recover":
        from .queue import JobQueue
        from .recovery import recover_queue

        report = recover_queue(JobQueue(args.root))
        print(json.dumps({
            "terminal": len(report.terminal),
            "resumable": report.resumable,
            "fresh": report.fresh,
            "leases_cleared": report.leases_cleared,
            "torn_records": report.torn_records,
        }, indent=2))
        return 0

    if args.command == "drain":
        import os

        from .worker import drain_queue

        done = drain_queue(
            args.root,
            store_path=os.path.join(args.root, "store"),
            workers=args.workers,
            supervise=args.supervise,
            stall_timeout=args.stall_timeout)
        print(f"drained: {done} jobs terminal")
        return 0

    if args.command == "deadletter":
        if args.root:
            from .queue import JobQueue

            queue = JobQueue(args.root)
            if args.action == "list":
                print(json.dumps(queue.deadletter_jobs(), indent=2,
                                 sort_keys=True))
                return 0
            if not args.job:
                raise SystemExit("requeue needs a job id")
            ok = queue.requeue(args.job)
            print(f"requeued: {args.job}" if ok
                  else f"no dead-lettered job {args.job!r}")
            return 0 if ok else 1
        from .client import ServiceClient

        client = ServiceClient(host=args.host, port=args.port)
        if args.action == "list":
            print(json.dumps(client.deadletter(), indent=2,
                             sort_keys=True))
            return 0
        if not args.job:
            raise SystemExit("requeue needs a job id")
        ok = client.requeue(args.job)
        print(f"requeued: {args.job}" if ok
              else f"no dead-lettered job {args.job!r}")
        return 0 if ok else 1

    from .client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)

    if args.command == "submit":
        overrides = _parse_overrides(args.override)
        job_id = client.submit_file(
            args.path, fmt=args.fmt, library=args.library,
            config=overrides)
        print(job_id)
        if args.wait:
            final = client.wait(job_id)
            print(json.dumps(final, indent=2, sort_keys=True))
            return 0 if final.get("state") == "done" else 1
        return 0

    if args.command == "status":
        if args.job:
            print(json.dumps(client.status(args.job), indent=2,
                             sort_keys=True))
        else:
            print(json.dumps(client.jobs(), indent=2, sort_keys=True))
        return 0

    if args.command == "stats":
        data = client.stats()
        print(json.dumps(data, indent=2, sort_keys=True))
        if args.export:
            from .server import export_service

            export_service(data, path=args.export)
            print(f"exported to {args.export}", file=sys.stderr)
        return 0

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":
    sys.exit(main())
