"""Service workers: claim spooled jobs, run GDO, publish results.

:func:`run_job` is the whole per-job pipeline — parse (any
:mod:`repro.io` frontend format), apply the job's config overrides,
attach the shared verdict store and the per-job run journal, resume
from the journal when one survives a crash, optimize, publish.

:class:`WorkerPool` fans that loop over ``multiprocessing`` worker
processes.  Workers share nothing in memory — the job spool and the
sharded store are the only coordination — so a SIGKILL'd worker leaves
at most one stale lease and one torn journal line, both of which
recovery handles.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from typing import Dict, List, Optional

from ..io import parse_netlist, write_blif
from ..library import mcnc_like, unit_delay_library
from ..netlist.edit import structural_signature
from ..obs import ObsConfig
from ..opt.config import GdoConfig
from ..opt.gdo import gdo_optimize
from ..opt.replay import ReplayDivergence
from .queue import Job, JobQueue
from .recovery import prepare_resume

_LIBRARIES = {
    "mcnc_like": mcnc_like,
    "unit": unit_delay_library,
}


def signature_digest(net) -> str:
    """Stable hex fingerprint of a netlist's structural signature."""
    sig = structural_signature(net)
    return hashlib.sha256(repr(sig).encode()).hexdigest()[:16]


def _job_config(job: Job, store_path: Optional[str]) -> GdoConfig:
    cfg = GdoConfig(**job.spec.config)
    cfg.proof_store_path = store_path
    cfg.obs = ObsConfig(metrics=True, journal=True,
                        journal_path=job.journal_path)
    return cfg


def run_job(
    queue: JobQueue,
    job: Job,
    store_path: Optional[str] = None,
) -> dict:
    """Run one claimed job to a terminal state; returns the published
    result (or error) payload.

    The broker is built here rather than inside ``gdo_optimize`` so the
    shared-store hit counters can be read back after the run — they are
    the service's cross-client cache economics.
    """
    try:
        result = _run_job_inner(job, store_path)
    except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
        queue.fail(job, f"{type(exc).__name__}: {exc}\n"
                        f"{traceback.format_exc(limit=8)}")
        return {"state": "failed", "error": str(exc)}
    queue.complete(job, result["summary"], netlist_blif=result["blif"])
    return {"state": "done", "result": result["summary"]}


def _run_job_inner(job: Job, store_path: Optional[str]) -> dict:
    spec = job.spec
    library = _LIBRARIES[spec.library]()
    net = parse_netlist(spec.netlist, spec.fmt, library=library,
                        name=spec.name)
    resume = prepare_resume(job)
    cfg = _job_config(job, store_path)
    broker = cfg.make_broker()
    t0 = time.perf_counter()
    try:
        try:
            result = gdo_optimize(net, library, cfg, broker=broker,
                                  resume=resume)
        except ReplayDivergence:
            # Journal belongs to some other (netlist, config, seed) —
            # rerun from scratch; proofs are warm in the store anyway.
            prepare_resume(job)
            result = gdo_optimize(net, library, cfg, broker=broker)
        store_counters = _store_counters(broker)
    finally:
        if broker is not None:
            broker.close()
    wall = time.perf_counter() - t0
    s = result.stats
    summary = {
        "circuit": spec.name,
        "delay_before": s.delay_before, "delay_after": s.delay_after,
        "area_before": s.area_before, "area_after": s.area_after,
        "mods": len(s.history), "rounds": s.rounds,
        "seconds": wall,
        "resumed": s.resumed,
        "replayed_verdicts": s.replayed_verdicts,
        "equivalent": s.equivalent,
        "signature": signature_digest(result.net),
        "proof": {
            "cache_hits": s.proof.cache_hits,
            "cache_misses": s.proof.cache_misses,
            "dispatched": s.proof.dispatched,
        },
        "store": store_counters,
        "worker_pid": os.getpid(),
    }
    return {"summary": summary, "blif": write_blif(result.net)}


def _store_counters(broker) -> Dict[str, float]:
    cache = getattr(broker, "cache", None)
    if cache is None or not hasattr(cache, "shared_hits"):
        return {"shared_hits": 0, "local_hits": 0, "misses": 0,
                "shared_hit_rate": 0.0}
    return {
        "shared_hits": cache.shared_hits,
        "local_hits": cache.local_hits,
        "misses": cache.misses,
        "shared_hit_rate": cache.shared_hit_rate,
    }


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
def _worker_loop(
    root: str,
    store_path: Optional[str],
    stop: multiprocessing.Event,  # type: ignore[valid-type]
    poll_interval: float,
    drain: bool,
) -> None:
    queue = JobQueue(root)
    while not stop.is_set():
        job = queue.claim()
        if job is None:
            if drain:
                return
            stop.wait(poll_interval)
            continue
        run_job(queue, job, store_path=store_path)


class WorkerPool:
    """N worker processes over one spool and one shared store."""

    def __init__(
        self,
        root: str,
        store_path: Optional[str] = None,
        workers: int = 2,
        poll_interval: float = 0.1,
    ):
        self.root = root
        self.store_path = store_path
        self.workers = max(1, workers)
        self.poll_interval = poll_interval
        self._procs: List[multiprocessing.Process] = []
        self._ctx = multiprocessing.get_context("fork")
        self._stop = self._ctx.Event()

    def start(self, drain: bool = False) -> None:
        """Launch the workers.  With ``drain`` each worker exits when
        it finds the queue empty (batch mode); otherwise they poll
        until :meth:`stop`."""
        if self._procs:
            raise RuntimeError("pool already started")
        for _ in range(self.workers):
            proc = self._ctx.Process(
                target=_worker_loop,
                args=(self.root, self.store_path, self._stop,
                      self.poll_interval, drain),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker; ``True`` when all have exited."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for proc in self._procs:
            remaining = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            proc.join(remaining)
        return all(not p.is_alive() for p in self._procs)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal and reap the workers (terminate stragglers)."""
        self._stop.set()
        if not self.join(timeout):
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - straggler path
                    proc.terminate()
                    proc.join(1.0)
        self._procs.clear()
        self._stop = self._ctx.Event()

    @property
    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())


def drain_queue(
    root: str,
    store_path: Optional[str] = None,
    workers: int = 2,
) -> int:
    """Batch mode: run workers until the spool is empty; returns the
    number of jobs in a terminal state afterwards."""
    pool = WorkerPool(root, store_path=store_path, workers=workers)
    pool.start(drain=True)
    pool.join()
    queue = JobQueue(root)
    return sum(
        1 for state in queue.jobs().values()
        if state in ("done", "failed")
    )
