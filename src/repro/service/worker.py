"""Service workers: claim spooled jobs, run GDO, publish results.

:func:`run_job` is the whole per-job pipeline — parse (any
:mod:`repro.io` frontend format), apply the job's config overrides,
attach the shared verdict store and the per-job run journal, resume
from the journal when one survives a crash, optimize, publish.

Failure semantics (DESIGN.md §11): failures split **permanent** vs
**transient**.  A netlist that will never parse fails the job
immediately; everything else (I/O errors, injected faults, backend
breakage) spends one unit of the job's retry budget
(:class:`RetryPolicy`) and is re-queued with exponential backoff and
seeded jitter.  A job that exhausts the budget — or keeps crashing its
worker before reaching a terminal state, which the durable ``start``
ledger in ``attempts.jsonl`` counts — is quarantined to the dead-letter
directory instead of looping forever.

:class:`WorkerPool` fans that loop over ``multiprocessing`` worker
processes.  Workers share nothing in memory — the job spool and the
sharded store are the only coordination — so a SIGKILL'd worker leaves
at most one stale lease and one torn journal line, both of which
recovery handles.  Each worker maintains a heartbeat file under
``<root>/workers/`` for the supervisor's liveness view, and the pool
can :meth:`~WorkerPool.respawn` members the supervisor found dead.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import random
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faults import (
    FaultPlan, FaultPlane, fault_arg, install_plane, register_point,
)
from ..io import PARSE_ERRORS, parse_netlist, write_blif
from ..library import mcnc_like, unit_delay_library
from ..netlist.edit import structural_signature
from ..obs import ObsConfig
from ..obs.journal import EventLog
from ..opt.config import GdoConfig
from ..opt.gdo import gdo_optimize
from ..opt.replay import ReplayDivergence
from .queue import Job, JobQueue, QueueError

#: fault points of the worker itself (DESIGN.md §11)
FP_JOB_CRASH = register_point(
    "worker.job.crash",
    "SIGKILL the worker process mid-job (after claim, before publish)")
FP_JOB_HANG = register_point(
    "worker.job.hang",
    "worker stalls mid-job for `arg` seconds (supervisor watchdog bait)")

_LIBRARIES = {
    "mcnc_like": mcnc_like,
    "unit": unit_delay_library,
}

#: exceptions that mean the job itself is bad and a retry cannot help
PERMANENT_ERRORS = PARSE_ERRORS + (QueueError,)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job retry budget with exponential backoff and seeded jitter.

    ``max_attempts`` bounds *both* ledgers: transient errors
    (``attempts.jsonl`` ``error`` events) and worker crashes (``start``
    events — a job seen starting more than ``max_attempts`` times
    without ever reaching a terminal state is a worker-killer).  Jitter
    is seeded from the job id, so two chaos runs defer identically.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.25

    def delay(self, attempt: int, seed_key: str = "") -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1))
        rng = random.Random(f"retry:{seed_key}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


def signature_digest(net) -> str:
    """Stable hex fingerprint of a netlist's structural signature."""
    sig = structural_signature(net)
    return hashlib.sha256(repr(sig).encode()).hexdigest()[:16]


def _job_config(job: Job, store_path: Optional[str]) -> GdoConfig:
    cfg = GdoConfig(**job.spec.config)
    cfg.proof_store_path = store_path
    cfg.obs = ObsConfig(metrics=True, journal=True,
                        journal_path=job.journal_path)
    return cfg


def _emit(events: Optional[EventLog], etype: str, **fields) -> None:
    if events is not None:
        events.emit(etype, **fields)


def run_job(
    queue: JobQueue,
    job: Job,
    store_path: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    events: Optional[EventLog] = None,
) -> dict:
    """Advance one claimed job; returns what happened.

    Outcomes: ``done`` (result published), ``failed`` (permanent —
    the input can never succeed), ``retry`` (transient — lease
    released, job deferred by backoff), ``deadlettered`` (budget
    spent, job quarantined).

    The broker is built here rather than inside ``gdo_optimize`` so the
    shared-store hit counters can be read back after the run — they are
    the service's cross-client cache economics.
    """
    policy = policy or RetryPolicy()
    starts = queue.record_attempt(job, "start")
    if starts > policy.max_attempts:
        # The job has started more times than the budget allows yet
        # never reached a terminal state: it kills its workers.
        path = queue.quarantine(
            job, f"crash loop: {starts} starts without a terminal state")
        _emit(events, "job_quarantined", job=job.job_id,
              reason="crash_loop", starts=starts)
        return {"state": "deadlettered", "path": path}
    try:
        result = _run_job_inner(job, store_path)
    except PERMANENT_ERRORS as exc:
        queue.fail(job, f"{type(exc).__name__}: {exc}")
        _emit(events, "job_failed", job=job.job_id, error=str(exc)[:200])
        return {"state": "failed", "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
        detail = (f"{type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc(limit=8)}")
        errors = queue.record_attempt(job, "error", error=detail)
        if errors >= policy.max_attempts:
            path = queue.quarantine(
                job, f"retry budget spent ({errors} transient "
                     f"errors); last: {type(exc).__name__}: {exc}")
            _emit(events, "job_quarantined", job=job.job_id,
                  reason="retry_budget", errors=errors)
            return {"state": "deadlettered", "path": path,
                    "error": str(exc)}
        delay = policy.delay(errors, seed_key=job.job_id)
        queue.defer(job, delay)
        _emit(events, "job_retry", job=job.job_id, attempt=errors,
              delay=round(delay, 4), error=str(exc)[:200])
        return {"state": "retry", "attempt": errors, "delay": delay}
    queue.complete(job, result["summary"], netlist_blif=result["blif"])
    _emit(events, "job_done", job=job.job_id,
          mods=result["summary"]["mods"])
    return {"state": "done", "result": result["summary"]}


def _run_job_inner(job: Job, store_path: Optional[str]) -> dict:
    from .recovery import prepare_resume

    if fault_arg(FP_JOB_CRASH) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    hang = fault_arg(FP_JOB_HANG)
    if hang is not None:
        time.sleep(hang)
    spec = job.spec
    library = _LIBRARIES[spec.library]()
    net = parse_netlist(spec.netlist, spec.fmt, library=library,
                        name=spec.name)
    resume = prepare_resume(job)
    cfg = _job_config(job, store_path)
    broker = cfg.make_broker()
    t0 = time.perf_counter()
    try:
        try:
            result = gdo_optimize(net, library, cfg, broker=broker,
                                  resume=resume)
        except ReplayDivergence:
            # Journal belongs to some other (netlist, config, seed) —
            # rerun from scratch; proofs are warm in the store anyway.
            prepare_resume(job)
            result = gdo_optimize(net, library, cfg, broker=broker)
        store_counters = _store_counters(broker)
        pool_breaks = getattr(broker, "pool_breaks", 0)
    finally:
        if broker is not None:
            broker.close()
    wall = time.perf_counter() - t0
    s = result.stats
    summary = {
        "circuit": spec.name,
        "delay_before": s.delay_before, "delay_after": s.delay_after,
        "area_before": s.area_before, "area_after": s.area_after,
        "mods": len(s.history), "rounds": s.rounds,
        "seconds": wall,
        "resumed": s.resumed,
        "replayed_verdicts": s.replayed_verdicts,
        "equivalent": s.equivalent,
        "signature": signature_digest(result.net),
        "proof": {
            "cache_hits": s.proof.cache_hits,
            "cache_misses": s.proof.cache_misses,
            "dispatched": s.proof.dispatched,
        },
        "store": store_counters,
        "pool_breaks": pool_breaks,
        "worker_pid": os.getpid(),
    }
    if cfg.partition_workers:
        summary["partition"] = {
            "workers": cfg.partition_workers,
            "regions": s.partition_regions,
            "conflicts": s.partition_conflicts,
            "rounds": s.partition_rounds,
        }
    return {"summary": summary, "blif": write_blif(result.net)}


def _store_counters(broker) -> Dict[str, float]:
    cache = getattr(broker, "cache", None)
    if cache is None or not hasattr(cache, "shared_hits"):
        return {"shared_hits": 0, "local_hits": 0, "misses": 0,
                "shared_hit_rate": 0.0}
    counters = {
        "shared_hits": cache.shared_hits,
        "local_hits": cache.local_hits,
        "misses": cache.misses,
        "shared_hit_rate": cache.shared_hit_rate,
    }
    if hasattr(cache, "health"):
        counters["health"] = cache.health()
    return counters


# ----------------------------------------------------------------------
# pool
# ----------------------------------------------------------------------
def heartbeat_dir(root: str) -> str:
    return os.path.join(os.path.abspath(root), "workers")


def _beat(root: str, job_id: Optional[str]) -> None:
    """Refresh this worker's heartbeat file (atomic replace — readers
    never see a torn beat)."""
    directory = heartbeat_dir(root)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{os.getpid()}.json")
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"pid": os.getpid(), "t": time.time(),
                       "job": job_id}, fh)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - heartbeats are best-effort
        pass


def read_heartbeats(root: str) -> Dict[int, dict]:
    """``{pid: beat}`` for every worker heartbeat under ``root``."""
    out: Dict[int, dict] = {}
    try:
        names = os.listdir(heartbeat_dir(root))
    except OSError:
        return out
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(heartbeat_dir(root), name), "r",
                      encoding="utf-8") as fh:
                beat = json.load(fh)
            out[int(beat["pid"])] = beat
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return out


def _fault_sink(job: Job):
    """Activation callback appending to the job's ``faults.jsonl`` —
    the durable record the chaos soak replay-verifies."""
    def sink(activation: dict) -> None:
        line = json.dumps(activation, sort_keys=True) + "\n"
        fd = os.open(job.faults_path,
                     os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
    return sink


def _prior_fires(job: Job) -> dict:
    """Per-point lifetime fire counts recorded by earlier attempts.

    Activations are written durably *before* their fault takes effect
    (a crash fault appends, then SIGKILLs), so a retrying worker can
    preload these counts into its plane — ``max_fires`` then caps the
    job's lifetime fires, and a once-only crash fault stays once-only
    across retries."""
    counts: dict = {}
    try:
        with open(job.faults_path, "r", encoding="utf-8") as fh:
            for line in fh:
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue  # torn tail of a killed writer
                point, fire = rec.get("point"), rec.get("fire")
                if isinstance(point, str) and isinstance(fire, int):
                    counts[point] = max(counts.get(point, 0), fire)
    except OSError:
        pass
    return counts


def _worker_loop(
    root: str,
    store_path: Optional[str],
    stop: multiprocessing.Event,  # type: ignore[valid-type]
    poll_interval: float,
    drain: bool,
    lease_ttl: Optional[float] = None,
    max_attempts: int = 3,
) -> None:
    queue = JobQueue(root)
    plan = FaultPlan.from_env()
    policy = RetryPolicy(max_attempts=max_attempts)
    events = EventLog(os.path.join(queue.root, "events.jsonl"))
    try:
        while not stop.is_set():
            _beat(root, None)
            job = queue.claim(lease_ttl=lease_ttl)
            if job is None:
                if drain:
                    if queue.depth() == 0:
                        return
                    # Deferred (backing-off) jobs still pending: the
                    # spool is not dry, just not due yet.
                    stop.wait(min(poll_interval, 0.05))
                    continue
                stop.wait(poll_interval)
                continue
            _beat(root, job.job_id)
            if plan is not None:
                # Per-job scope: the job's fault schedule depends only
                # on (seed, job name), never on worker interleaving.
                plane = FaultPlane(plan.scoped(job.spec.name),
                                   on_fire=_fault_sink(job),
                                   preload_fires=_prior_fires(job))
                install_plane(plane)
                try:
                    run_job(queue, job, store_path=store_path,
                            policy=policy, events=events)
                finally:
                    install_plane(None)
            else:
                run_job(queue, job, store_path=store_path,
                        policy=policy, events=events)
    finally:
        events.close()


class WorkerPool:
    """N worker processes over one spool and one shared store."""

    def __init__(
        self,
        root: str,
        store_path: Optional[str] = None,
        workers: int = 2,
        poll_interval: float = 0.1,
        lease_ttl: Optional[float] = None,
        max_attempts: int = 3,
    ):
        self.root = root
        self.store_path = store_path
        self.workers = max(1, workers)
        self.poll_interval = poll_interval
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.respawns = 0
        self._drain = False
        self._procs: List[multiprocessing.Process] = []
        self._ctx = multiprocessing.get_context("fork")
        self._stop = self._ctx.Event()

    def _spawn(self) -> multiprocessing.Process:
        proc = self._ctx.Process(
            target=_worker_loop,
            args=(self.root, self.store_path, self._stop,
                  self.poll_interval, self._drain, self.lease_ttl,
                  self.max_attempts),
            daemon=True,
        )
        proc.start()
        return proc

    def start(self, drain: bool = False) -> None:
        """Launch the workers.  With ``drain`` each worker exits when
        it finds the queue empty (batch mode); otherwise they poll
        until :meth:`stop`."""
        if self._procs:
            raise RuntimeError("pool already started")
        self._drain = drain
        for _ in range(self.workers):
            self._procs.append(self._spawn())

    def respawn(self) -> int:
        """Replace dead workers (crashed or watchdog-killed); returns
        how many were restarted.  The supervisor's restart primitive —
        a no-op while everyone is alive."""
        if self._stop.is_set():
            return 0
        restarted = 0
        for i, proc in enumerate(self._procs):
            if not proc.is_alive():
                proc.join(0.1)
                self._procs[i] = self._spawn()
                restarted += 1
        self.respawns += restarted
        return restarted

    def pids(self) -> List[int]:
        return [p.pid for p in self._procs if p.pid is not None]

    def kill_worker(self, pid: int) -> bool:
        """SIGKILL one member (watchdog action on a hung worker)."""
        for proc in self._procs:
            if proc.pid == pid and proc.is_alive():
                proc.kill()
                proc.join(1.0)
                return True
        return False

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker; ``True`` when all have exited."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for proc in self._procs:
            remaining = None if deadline is None else \
                max(0.0, deadline - time.monotonic())
            proc.join(remaining)
        return all(not p.is_alive() for p in self._procs)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal and reap the workers (terminate stragglers)."""
        self._stop.set()
        if not self.join(timeout):
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - straggler path
                    proc.terminate()
                    proc.join(1.0)
        self._procs.clear()
        self._stop = self._ctx.Event()

    @property
    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())


def drain_queue(
    root: str,
    store_path: Optional[str] = None,
    workers: int = 2,
    max_attempts: int = 3,
    supervise: bool = False,
    stall_timeout: float = 30.0,
    timeout: Optional[float] = None,
) -> int:
    """Batch mode: run workers until the spool is empty; returns the
    number of jobs in a terminal state afterwards.

    With ``supervise`` a :class:`~repro.service.supervisor.Supervisor`
    watches the drain: crashed workers are respawned (so injected
    worker crashes cannot strand the queue) and hung workers are
    watchdog-killed after ``stall_timeout``.
    """
    pool = WorkerPool(root, store_path=store_path, workers=workers,
                      max_attempts=max_attempts)
    if not supervise:
        pool.start(drain=True)
        pool.join(timeout)
        queue = JobQueue(root)
        return sum(
            1 for state in queue.jobs().values()
            if state in ("done", "failed")
        )
    from .supervisor import Supervisor

    supervisor = Supervisor(pool, JobQueue(root),
                            stall_timeout=stall_timeout)
    supervisor.drain(timeout=timeout)
    queue = JobQueue(root)
    return sum(
        1 for state in queue.jobs().values()
        if state in ("done", "failed")
    )
