"""The optimization service: a long-lived GDO daemon.

``repro.service`` turns the one-shot optimizer into a service
(DESIGN.md §10):

* :mod:`~repro.service.store` — sharded persistent verdict store every
  worker's proof broker shares (append-only segments, read-side merge,
  compaction);
* :mod:`~repro.service.queue` — filesystem-spooled job queue accepting
  netlists in any :mod:`repro.io` frontend format with per-job
  :class:`~repro.opt.config.GdoConfig` overrides;
* :mod:`~repro.service.worker` — the worker loop / multiprocessing pool
  that claims and runs jobs;
* :mod:`~repro.service.recovery` — crash recovery over the per-job run
  journals: finished jobs are detected, interrupted jobs resume from
  their last committed substitution (:mod:`repro.opt.replay`);
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  JSON-lines TCP front end with per-job status and service-level
  metrics, exported to ``BENCH_service.json``.

``python -m repro.service`` is the CLI (``serve``, ``submit``,
``status``, ``stats``, ``drain``, ``recover``).
"""

from .queue import Job, JobQueue, JobSpec, QueueError
from .recovery import RecoveryReport, recover_queue, resume_records
from .store import (
    CompactionStats, ShardedProofCache, ShardedVerdictStore, StoreError,
    shard_of,
)
from .worker import WorkerPool, run_job

__all__ = [
    "Job", "JobQueue", "JobSpec", "QueueError",
    "RecoveryReport", "recover_queue", "resume_records",
    "CompactionStats", "ShardedProofCache", "ShardedVerdictStore",
    "StoreError", "shard_of",
    "WorkerPool", "run_job",
]
