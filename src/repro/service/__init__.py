"""The optimization service: a long-lived GDO daemon.

``repro.service`` turns the one-shot optimizer into a service
(DESIGN.md §10):

* :mod:`~repro.service.store` — sharded persistent verdict store every
  worker's proof broker shares (append-only segments, read-side merge,
  compaction);
* :mod:`~repro.service.queue` — filesystem-spooled job queue accepting
  netlists in any :mod:`repro.io` frontend format with per-job
  :class:`~repro.opt.config.GdoConfig` overrides;
* :mod:`~repro.service.worker` — the worker loop / multiprocessing pool
  that claims and runs jobs;
* :mod:`~repro.service.recovery` — crash recovery over the per-job run
  journals: finished jobs are detected, interrupted jobs resume from
  their last committed substitution (:mod:`repro.opt.replay`);
* :mod:`~repro.service.supervisor` — the self-healing layer
  (DESIGN.md §11): worker heartbeats, watchdog kills of hung workers,
  respawn of crashed ones; retry budgets and dead-letter quarantine
  live in the queue/worker layers it drives;
* :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  JSON-lines TCP front end with per-job status and service-level
  metrics, exported to ``BENCH_service.json``.

``python -m repro.service`` is the CLI (``serve``, ``submit``,
``status``, ``stats``, ``drain``, ``recover``, ``deadletter``).
"""

from .queue import Job, JobQueue, JobSpec, QueueError, lease_live
from .recovery import RecoveryReport, recover_queue, resume_records
from .store import (
    CompactionStats, ShardedProofCache, ShardedVerdictStore, StoreError,
    shard_of,
)
from .supervisor import Supervisor
from .worker import (
    RetryPolicy, WorkerPool, drain_queue, read_heartbeats, run_job,
)

__all__ = [
    "Job", "JobQueue", "JobSpec", "QueueError", "lease_live",
    "RecoveryReport", "recover_queue", "resume_records",
    "CompactionStats", "ShardedProofCache", "ShardedVerdictStore",
    "StoreError", "shard_of",
    "Supervisor",
    "RetryPolicy", "WorkerPool", "drain_queue", "read_heartbeats",
    "run_job",
]
