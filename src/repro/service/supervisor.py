"""Self-healing supervision for the worker pool (DESIGN.md §11).

The :class:`Supervisor` closes the service's last liveness gaps — the
failures the spool's durability cannot fix on its own because nobody is
left alive to re-claim the work:

* **crashed workers** (SIGKILL, OOM, injected ``worker.job.crash``):
  every :meth:`check` respawns dead pool members; the replacement
  re-claims the stale lease and resumes from the journal;
* **hung workers** (injected ``worker.job.hang``, a wedged solver): a
  worker holding a live lease whose job shows no progress — no journal
  append, no lease renewal, no heartbeat — for ``stall_timeout``
  seconds is watchdog-killed, which turns the hang into the crash case
  above.  Progress is read from file mtimes: the run journal is written
  every trial, so a healthy job cannot look stalled.

Everything the supervisor does is journaled to the service
:class:`~repro.obs.journal.EventLog` (``events.jsonl`` in the spool
root) and surfaced by the daemon's ``stats`` op.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from ..obs.journal import EventLog
from .queue import JobQueue, lease_live
from .worker import WorkerPool, read_heartbeats

#: job states that still need a worker (see ``queue`` status model)
_PENDING = ("queued", "running")


class Supervisor:
    """Watchdog over one :class:`WorkerPool` and its spool."""

    def __init__(
        self,
        pool: WorkerPool,
        queue: JobQueue,
        stall_timeout: float = 30.0,
        poll_interval: float = 0.25,
        events: Optional[EventLog] = None,
    ):
        self.pool = pool
        self.queue = queue
        self.stall_timeout = stall_timeout
        self.poll_interval = poll_interval
        self.watchdog_kills = 0
        self._own_events = events is None
        self.events = events or EventLog(
            os.path.join(queue.root, "events.jsonl"))

    # ------------------------------------------------------------------
    def check(self) -> Dict[str, int]:
        """One supervision tick: kill stalled workers, respawn dead
        ones.  Order matters — a watchdog kill this tick is respawned
        this same tick."""
        killed = self._kill_stalled()
        respawned = self.pool.respawn()
        if respawned:
            self.events.emit("worker_respawned", count=respawned)
        return {"killed": killed, "respawned": respawned}

    def _kill_stalled(self) -> int:
        killed = 0
        now = time.time()
        pool_pids = set(self.pool.pids())
        beats = read_heartbeats(self.queue.root)
        for job_id in self.queue._job_ids():
            job = self.queue.get(job_id)
            if job is None or self.queue._terminal(job):
                continue
            info = self.queue._lease_info(job)
            if not lease_live(info):
                continue  # unclaimed or already-stale: claim fixes it
            pid = info.get("pid")
            if pid not in pool_pids:
                continue  # someone else's worker — not ours to kill
            idle = now - self._last_progress(job, beats.get(pid))
            if idle <= self.stall_timeout:
                continue
            if self.pool.kill_worker(pid):
                killed += 1
                self.watchdog_kills += 1
                self.events.emit("worker_watchdog_kill", pid=pid,
                                 job=job.job_id,
                                 idle=round(idle, 2))
        return killed

    @staticmethod
    def _last_progress(job, beat: Optional[dict]) -> float:
        """The newest progress stamp a job's claimant left anywhere:
        journal append (per trial), lease create/renew, heartbeat."""
        stamps: List[float] = []
        for path in (job.journal_path, job.lease_path):
            try:
                stamps.append(os.stat(path).st_mtime)
            except OSError:
                pass
        if beat is not None and isinstance(beat.get("t"), (int, float)):
            stamps.append(beat["t"])
        return max(stamps) if stamps else 0.0

    # ------------------------------------------------------------------
    def _pending(self) -> int:
        return sum(1 for state in self.queue.jobs().values()
                   if state in _PENDING)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Run the pool in drain mode under supervision until the
        spool is dry (every job terminal or dead-lettered); ``True``
        when it drained, ``False`` on timeout.

        Unlike a bare :meth:`WorkerPool.join`, this survives every
        worker dying at once: as long as pending jobs remain, dead
        members are respawned."""
        self.pool.start(drain=True)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        try:
            while True:
                pending = self._pending()
                if pending == 0 and self.pool.alive == 0:
                    return True
                if deadline is not None and \
                        time.monotonic() > deadline:
                    self.events.emit("drain_timeout", pending=pending)
                    return False
                if self.queue.depth():
                    # Claimable work exists (queued, deferred, or a
                    # crashed claimant's stale lease): keep the pool
                    # at strength.
                    self.check()
                else:
                    # Every pending job is running on a live claimant;
                    # drain-mode workers exit on an empty queue, and
                    # respawning them here would just churn fork/exit
                    # until the stragglers finish.  Watch for hangs —
                    # a watchdog kill turns the job back into depth.
                    self._kill_stalled()
                time.sleep(self.poll_interval)
        finally:
            self.pool.stop()
            if self._own_events:
                self.events.close()

    def watch(self, stop, interval: Optional[float] = None) -> None:
        """Daemon mode: tick :meth:`check` until ``stop`` is set (a
        ``threading.Event``)."""
        interval = self.poll_interval if interval is None else interval
        while not stop.wait(interval):
            self.check()

    def stats(self) -> dict:
        return {
            "watchdog_kills": self.watchdog_kills,
            "respawns": self.pool.respawns,
            "workers_alive": self.pool.alive,
        }
