"""Service smoke test: daemon + two client processes + restart.

``python -m repro.service.smoke`` (CI's service-smoke job):

1. start the daemon on an ephemeral port over a fresh root;
2. submit the same small circuit from **two separate client
   processes** (the real CLI, over the real socket) and wait;
3. assert both jobs completed and the second was served cross-client
   verdicts out of the shared store (hit rate > 0);
4. restart the daemon on the same root, submit a third job, and assert
   the store survived: the warm run gets cross-client hits again.

Exits non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

from .client import ServiceClient
from .server import OptimizationService, export_service, service_stats

#: cheap-but-nontrivial GDO settings: enough proof traffic to exercise
#: the store, small enough for CI.
SMOKE_OVERRIDES = {
    "n_words": 4,
    "max_rounds": 2,
    "verify_final": False,
    "static_funnel": False,
    "max_seconds": 60.0,
    "proof_workers": 1,
}

CIRCUIT = os.path.join("examples", "circuits", "c432_small.blif")


def _client_submit(port: int, path: str) -> dict:
    """Submit via the CLI in a separate process and wait for the job."""
    overrides = [
        f"-o{key}={json.dumps(value)}"
        for key, value in SMOKE_OVERRIDES.items()
    ]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.service", "submit",
         "--port", str(port), "--wait", path, *overrides],
        capture_output=True, text=True, timeout=300,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"client submit failed:\n{proc.stdout}\n{proc.stderr}")
    lines = proc.stdout.strip().splitlines()
    return json.loads("\n".join(lines[1:]))


def main() -> int:
    if not os.path.exists(CIRCUIT):
        raise SystemExit(f"smoke circuit missing: {CIRCUIT}")
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as root:
        service = OptimizationService(root, workers=2)
        service.start()
        _host, port = service.address
        print(f"daemon up on port {port}", flush=True)
        try:
            first = _client_submit(port, CIRCUIT)
            second = _client_submit(port, CIRCUIT)
            for i, status in enumerate((first, second)):
                if status.get("state") != "done":
                    raise SystemExit(
                        f"job {i} not done: {status}")
            stats = ServiceClient(port=port).stats()
        finally:
            service.close()
        print(f"two-client stats: "
              f"hits={stats['cross_client_hits']} "
              f"misses={stats['store_misses']} "
              f"rate={stats['cross_client_hit_rate']:.3f}", flush=True)
        if stats["jobs_done"] != 2:
            raise SystemExit(f"expected 2 done jobs: {stats['jobs']}")
        if stats["cross_client_hits"] <= 0:
            raise SystemExit(
                "no cross-client cache hits — store sharing broken")

        # Restart on the same root: the store must survive.
        service = OptimizationService(root, workers=1)
        service.start()
        _host, port = service.address
        try:
            third = _client_submit(port, CIRCUIT)
            if third.get("state") != "done":
                raise SystemExit(f"post-restart job not done: {third}")
            result = third.get("result", {})
            store = result.get("store", {})
            if store.get("shared_hits", 0) <= 0:
                raise SystemExit(
                    f"store did not survive restart: {store}")
        finally:
            service.close()
        print(f"post-restart job: shared_hits={store['shared_hits']} "
              f"misses={store['misses']}", flush=True)

        final = service_stats(root)
        if os.environ.get("SMOKE_EXPORT"):
            export_service(final, path=os.environ["SMOKE_EXPORT"])
        print("service smoke PASS", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
