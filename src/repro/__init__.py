"""repro — reproduction of "Logic Clause Analysis for Delay Optimization"
(Rohfleisch, Wurth, Antreich; DAC 1995).

The package implements GDO — post-technology-mapping delay optimization
by clause analysis — together with every substrate the paper relies on:
netlist + genlib library modelling, bit-parallel (fault) simulation,
CNF/SAT and BDD engines, ATPG, static timing, a compact synthesis flow
standing in for SIS, and generators for an ISCAS-85/MCNC-like benchmark
suite.

Quickstart::

    from repro import mcnc_like, script_rugged, gdo_optimize
    from repro.circuits import array_multiplier

    lib = mcnc_like()
    mapped = script_rugged(array_multiplier(8), lib)   # SIS stand-in
    result = gdo_optimize(mapped, lib)                 # the paper's GDO
    print(result.stats.delay_before, "->", result.stats.delay_after)
"""

from .library import TechLibrary, load_genlib, mcnc_like, parse_genlib, unit_delay_library
from .netlist import Branch, Gate, Netlist, NetlistError
from .opt import GdoConfig, GdoResult, GdoStats, gdo_optimize
from .synth import map_netlist, script_delay, script_rugged
from .timing import Sta
from .verify import check_equivalence

__version__ = "1.0.0"

__all__ = [
    "TechLibrary", "load_genlib", "mcnc_like", "parse_genlib",
    "unit_delay_library", "Branch", "Gate", "Netlist", "NetlistError",
    "GdoConfig", "GdoResult", "GdoStats", "gdo_optimize",
    "map_netlist", "script_delay", "script_rugged", "Sta",
    "check_equivalence", "__version__",
]
