"""repro — reproduction of "Logic Clause Analysis for Delay Optimization"
(Rohfleisch, Wurth, Antreich; DAC 1995).

The package implements GDO — post-technology-mapping delay optimization
by clause analysis — together with every substrate the paper relies on:
netlist + genlib library modelling, bit-parallel (fault) simulation,
CNF/SAT and BDD engines, ATPG, static timing, a compact synthesis flow
standing in for SIS, generators for an ISCAS-85/MCNC-like benchmark
suite, and an observability layer (spans, metrics, run journals).

Quickstart::

    from repro import mcnc_like, script_rugged, gdo_optimize, format_result
    from repro.circuits import array_multiplier
    from repro.obs import export_gdo

    lib = mcnc_like()
    mapped = script_rugged(array_multiplier(8), lib)   # SIS stand-in
    result = gdo_optimize(mapped, lib)                 # the paper's GDO
    report = format_result(result, lib)                # run report (funnel,
                                                       # hot spans, broker)
    entry = export_gdo(result, "BENCH_gdo.json")       # trajectory entry

The library logs under the ``"repro"`` logger and installs only a
:class:`logging.NullHandler` — consumers decide whether and where log
output goes.
"""

import logging

from .library import TechLibrary, load_genlib, mcnc_like, parse_genlib, unit_delay_library
from .netlist import Branch, Gate, Netlist, NetlistError
from .obs import ObsConfig
from .opt import GdoConfig, GdoResult, GdoStats, format_result, gdo_optimize
from .synth import map_netlist, script_delay, script_rugged
from .timing import Sta
from .verify import check_equivalence

logging.getLogger("repro").addHandler(logging.NullHandler())

__version__ = "1.1.0"

__all__ = [
    "TechLibrary", "load_genlib", "mcnc_like", "parse_genlib",
    "unit_delay_library", "Branch", "Gate", "Netlist", "NetlistError",
    "ObsConfig", "GdoConfig", "GdoResult", "GdoStats", "gdo_optimize",
    "format_result", "map_netlist", "script_delay", "script_rugged",
    "Sta", "check_equivalence", "__version__",
]
