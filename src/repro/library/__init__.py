"""Technology library: genlib parsing and built-in cell libraries."""

from .cells import Cell, PinTiming, TechLibrary
from .genlib import GenlibError, cell_formula, load_genlib, parse_genlib, write_genlib
from .builtin import MCNC_LIKE_GENLIB, mcnc_like, unit_delay_library

__all__ = [
    "Cell", "PinTiming", "TechLibrary",
    "GenlibError", "cell_formula", "load_genlib", "parse_genlib",
    "write_genlib", "MCNC_LIKE_GENLIB", "mcnc_like", "unit_delay_library",
]
