"""Reader/writer for the genlib gate-library format (SIS/MCNC style).

Supported syntax per cell::

    GATE <name> <area> <out>=<expr>;
        PIN <pin|*> <phase> <in-load> <max-load> <r-blk> <r-drv> <f-blk> <f-drv>

Expressions use ``!``/``'`` for NOT, ``*`` for AND, ``+`` for OR, ``^``
for XOR, parentheses, and the constants ``0``/``1``.  Each parsed cell is
matched against the primitive :mod:`repro.netlist.gatefunc` functions by
truth table; cells computing an unsupported function raise (or are
skipped with ``skip_unknown=True``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.gatefunc import ALL_FUNCS, GateFunc
from .cells import Cell, PinTiming, TechLibrary


class GenlibError(Exception):
    """Malformed genlib input or unsupported cell function."""


# ----------------------------------------------------------------------
# boolean expression parsing
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9\[\]]*|[01!'()*+^])")


class _Expr:
    def eval(self, env: Dict[str, int]) -> int:
        raise NotImplementedError


class _Var(_Expr):
    def __init__(self, name: str):
        self.name = name

    def eval(self, env: Dict[str, int]) -> int:
        return env[self.name]


class _Const(_Expr):
    def __init__(self, value: int):
        self.value = value

    def eval(self, env: Dict[str, int]) -> int:
        return self.value


class _Not(_Expr):
    def __init__(self, sub: _Expr):
        self.sub = sub

    def eval(self, env: Dict[str, int]) -> int:
        return 1 - self.sub.eval(env)


class _Bin(_Expr):
    def __init__(self, op: str, left: _Expr, right: _Expr):
        self.op = op
        self.left = left
        self.right = right

    def eval(self, env: Dict[str, int]) -> int:
        lv = self.left.eval(env)
        rv = self.right.eval(env)
        if self.op == "*":
            return lv & rv
        if self.op == "+":
            return lv | rv
        return lv ^ rv


class _ExprParser:
    """Recursive descent: or <- xor (+ xor)*, xor <- and (^ and)*,
    and <- unary (* unary)*, unary <- ! unary | primary ['], primary."""

    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.pin_order: List[str] = []

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise GenlibError("unexpected end of expression")
        self.pos += 1
        return tok

    def parse(self) -> _Expr:
        expr = self._or()
        if self.peek() is not None:
            raise GenlibError(f"trailing token {self.peek()!r} in expression")
        return expr

    def _or(self) -> _Expr:
        expr = self._xor()
        while self.peek() == "+":
            self.take()
            expr = _Bin("+", expr, self._xor())
        return expr

    def _xor(self) -> _Expr:
        expr = self._and()
        while self.peek() == "^":
            self.take()
            expr = _Bin("^", expr, self._and())
        return expr

    def _and(self) -> _Expr:
        expr = self._unary()
        while True:
            tok = self.peek()
            if tok == "*":
                self.take()
                expr = _Bin("*", expr, self._unary())
            elif tok is not None and (tok == "(" or tok == "!" or
                                      _is_ident(tok) or tok in "01"):
                # implicit AND by juxtaposition
                expr = _Bin("*", expr, self._unary())
            else:
                return expr

    def _unary(self) -> _Expr:
        tok = self.peek()
        if tok == "!":
            self.take()
            return _Not(self._unary())
        expr = self._primary()
        while self.peek() == "'":
            self.take()
            expr = _Not(expr)
        return expr

    def _primary(self) -> _Expr:
        tok = self.take()
        if tok == "(":
            expr = self._or()
            if self.take() != ")":
                raise GenlibError("missing ')' in expression")
            return expr
        if tok in ("0", "1"):
            return _Const(int(tok))
        if _is_ident(tok):
            if tok not in self.pin_order:
                self.pin_order.append(tok)
            return _Var(tok)
        raise GenlibError(f"unexpected token {tok!r} in expression")


def _is_ident(tok: str) -> bool:
    return bool(re.match(r"^[A-Za-z_]", tok))


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise GenlibError(f"bad character in expression: {text[pos:]!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


def _match_func(
    expr: _Expr, pin_order: Sequence[str]
) -> Tuple[GateFunc, List[str]]:
    """Identify the primitive function computed by ``expr``.

    Pin order in a genlib formula is the order of first appearance, which
    need not match the argument order of our primitive functions (e.g.
    MUX21's select pin).  All input permutations are tried; the returned
    pin list is reordered to align with the function's argument order.
    """
    import itertools

    nin = len(pin_order)
    candidates = [
        f for f in ALL_FUNCS
        if (f.arity == nin) or (f.arity is None and nin >= 1)
    ]
    tables = {f.name: f.truth_table(nin) for f in candidates}
    for perm in itertools.permutations(range(nin)):
        # ordered[k] is the pin feeding function argument k.
        ordered = [pin_order[perm[k]] for k in range(nin)]
        table = []
        for row in range(1 << nin):
            env = {pin: (row >> k) & 1 for k, pin in enumerate(ordered)}
            table.append(expr.eval(env))
        for func in candidates:
            if tables[func.name] == table:
                return func, ordered
    raise GenlibError(
        f"cell function with {nin} pins not in the primitive set"
    )


# ----------------------------------------------------------------------
# genlib file parsing
# ----------------------------------------------------------------------
def parse_genlib(text: str, name: str = "genlib",
                 skip_unknown: bool = False) -> TechLibrary:
    """Parse genlib source text into a :class:`TechLibrary`."""
    cells: List[Cell] = []
    for cellname, area, formula, pin_specs in _iter_gates(text):
        parser = _ExprParser(formula.split("=", 1)[1])
        expr = parser.parse()
        try:
            func, pin_order = _match_func(expr, parser.pin_order)
        except GenlibError:
            if skip_unknown:
                continue
            raise GenlibError(f"cell {cellname!r}: unsupported function")
        input_load, pins = _assemble_pins(cellname, pin_order, pin_specs)
        cells.append(Cell(cellname, area, func, len(pin_order),
                          input_load=input_load, pins=pins))
    return TechLibrary(name, cells)


def load_genlib(path: str, name: Optional[str] = None,
                skip_unknown: bool = False) -> TechLibrary:
    with open(path) as handle:
        return parse_genlib(handle.read(), name=name or path,
                            skip_unknown=skip_unknown)


def _strip_comments(text: str) -> str:
    return re.sub(r"#[^\n]*", "", text)


_GATE_RE = re.compile(
    r"GATE\s+(\S+)\s+([0-9.eE+-]+)\s+([^;]+);", re.MULTILINE
)
_PIN_RE = re.compile(
    r"PIN\s+(\S+)\s+(\S+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+"
    r"([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)\s+([0-9.eE+-]+)"
)


def _iter_gates(text: str):
    text = _strip_comments(text)
    gate_matches = list(_GATE_RE.finditer(text))
    for idx, match in enumerate(gate_matches):
        start = match.end()
        end = gate_matches[idx + 1].start() if idx + 1 < len(gate_matches) \
            else len(text)
        pin_specs = [
            (m.group(1), float(m.group(3)),
             float(m.group(5)), float(m.group(6)),
             float(m.group(7)), float(m.group(8)))
            for m in _PIN_RE.finditer(text[start:end])
        ]
        formula = match.group(3).strip()
        if "=" not in formula:
            raise GenlibError(f"cell {match.group(1)!r}: bad formula")
        yield match.group(1), float(match.group(2)), formula, pin_specs


def _assemble_pins(cellname, pin_order, pin_specs):
    """Combine PIN lines into per-pin timings; returns (input_load, pins)."""
    nin = len(pin_order)
    if not pin_specs:
        return 1.0, [PinTiming(1.0, 0.2)] * nin
    star = next((p for p in pin_specs if p[0] == "*"), None)
    by_name = {p[0]: p for p in pin_specs if p[0] != "*"}
    pins: List[PinTiming] = []
    loads: List[float] = []
    for pin in pin_order:
        spec = by_name.get(pin, star)
        if spec is None:
            raise GenlibError(f"cell {cellname!r}: no PIN spec for {pin!r}")
        _, load, r_blk, r_drv, f_blk, f_drv = spec
        pins.append(PinTiming(max(r_blk, f_blk), max(r_drv, f_drv)))
        loads.append(load)
    return max(loads), pins


# ----------------------------------------------------------------------
# genlib writing
# ----------------------------------------------------------------------
_FORMULA: Dict[str, str] = {
    "BUF": "{0}",
    "INV": "!{0}",
    "AND": "*",
    "NAND": "!AND",
    "OR": "+",
    "NOR": "!OR",
    "XOR": "{0}^{1}",
    "XNOR": "!({0}^{1})",
    "AOI21": "!(({0}*{1})+{2})",
    "OAI21": "!(({0}+{1})*{2})",
    "AOI22": "!(({0}*{1})+({2}*{3}))",
    "OAI22": "!(({0}+{1})*({2}+{3}))",
    "MUX21": "({0}*!{2})+({1}*{2})",
    "MAJ3": "({0}*{1})+({0}*{2})+({1}*{2})",
    "ANDN": "{0}*!{1}",
    "ORN": "{0}+!{1}",
    "CONST0": "0",
    "CONST1": "1",
}

_PINS = "abcdefgh"


def cell_formula(cell: Cell) -> str:
    """genlib formula string (``o=...``) for a supported cell."""
    template = _FORMULA.get(cell.func.name)
    if template is None:
        raise GenlibError(f"no formula template for {cell.func.name}")
    names = list(_PINS[: cell.nin])
    if template == "*":
        body = "*".join(names)
    elif template == "!AND":
        body = "!(" + "*".join(names) + ")"
    elif template == "+":
        body = "+".join(names)
    elif template == "!OR":
        body = "!(" + "+".join(names) + ")"
    else:
        body = template.format(*names)
    return f"o={body}"


def write_genlib(lib: TechLibrary) -> str:
    """Serialize a library back to genlib text."""
    lines: List[str] = [f"# library {lib.name}"]
    for cell in lib:
        lines.append(f"GATE {cell.name} {cell.area:g} {cell_formula(cell)};")
        for pin_name, timing in zip(_PINS, cell.pins):
            lines.append(
                f"  PIN {pin_name} UNKNOWN {cell.input_load:g} 999 "
                f"{timing.block:g} {timing.drive:g} "
                f"{timing.block:g} {timing.drive:g}"
            )
    return "\n".join(lines) + "\n"
