"""Technology library model: cells with area, load, and pin delays.

The delay model follows genlib: the delay through a pin is
``block + drive * load`` where ``load`` is the sum of the input loads of
the fanout pins.  The paper maps with ``map -n 1`` (no fanout
optimization) and then relies on "exact gate delay information" — this
module supplies that information to :mod:`repro.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.gatefunc import GateFunc
from ..netlist.netlist import Gate, Netlist


@dataclass(frozen=True)
class PinTiming:
    """Per-pin genlib timing: ``delay = block + drive * load`` (we keep
    the max of rise and fall arcs as a single arc)."""

    block: float
    drive: float

    def delay(self, load: float) -> float:
        return self.block + self.drive * load


@dataclass
class Cell:
    """One library cell."""

    name: str
    area: float
    func: GateFunc
    nin: int
    input_load: float = 1.0
    pins: List[PinTiming] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pins:
            self.pins = [PinTiming(1.0, 0.2)] * self.nin
        if len(self.pins) == 1 and self.nin > 1:
            self.pins = list(self.pins) * self.nin
        if len(self.pins) != self.nin:
            raise ValueError(
                f"cell {self.name}: {len(self.pins)} pin timings "
                f"for {self.nin} pins"
            )

    def pin_delay(self, pin: int, load: float) -> float:
        return self.pins[pin].delay(load)

    def worst_block(self) -> float:
        return max((p.block for p in self.pins), default=0.0)


class TechLibrary:
    """A collection of cells indexed by name and by (function, arity)."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self._by_func: Dict[Tuple[str, int], List[Cell]] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell
        self._by_func.setdefault((cell.func.name, cell.nin), []).append(cell)
        self._by_func[(cell.func.name, cell.nin)].sort(key=lambda c: c.area)

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    def __iter__(self):
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    def cell_for(self, func: GateFunc, nin: int) -> Optional[Cell]:
        """Smallest-area cell implementing ``func`` with ``nin`` inputs."""
        matches = self._by_func.get((func.name, nin))
        return matches[0] if matches else None

    def has_func(self, func: GateFunc, nin: int = 2) -> bool:
        return self.cell_for(func, nin) is not None

    def rebind(self, net: Netlist) -> int:
        """(Re)assign ``gate.cell`` for every gate from its function.

        Returns the number of gates left unbound (no matching cell); the
        timing model falls back to a default arc for those.
        """
        unbound = 0
        for gate in net.gates.values():
            cell = self.cell_for(gate.func, gate.nin)
            if cell is None:
                gate.cell = None
                if gate.func.name not in ("CONST0", "CONST1"):
                    unbound += 1
            else:
                gate.cell = cell.name
        return unbound

    # ------------------------------------------------------------------
    # per-gate accessors used by timing and area accounting
    # ------------------------------------------------------------------
    def gate_cell(self, gate: Gate) -> Optional[Cell]:
        if gate.cell is not None and gate.cell in self.cells:
            return self.cells[gate.cell]
        return self.cell_for(gate.func, gate.nin)

    def gate_area(self, gate: Gate) -> float:
        cell = self.gate_cell(gate)
        if cell is not None:
            return cell.area
        if gate.func.name in ("CONST0", "CONST1"):
            return 0.0
        # Unbound gate: pessimistic composite of 2-input pieces.
        return float(max(gate.nin, 1))

    def gate_input_load(self, gate: Gate, pin: int) -> float:
        cell = self.gate_cell(gate)
        return cell.input_load if cell is not None else 1.0

    def gate_pin_timing(self, gate: Gate, pin: int) -> PinTiming:
        cell = self.gate_cell(gate)
        if cell is not None:
            return cell.pins[pin]
        if gate.func.name in ("CONST0", "CONST1"):
            return PinTiming(0.0, 0.0)
        return PinTiming(1.0, 0.2)

    def netlist_area(self, net: Netlist) -> float:
        return sum(self.gate_area(g) for g in net.gates.values())
