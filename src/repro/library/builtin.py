"""Built-in technology libraries.

``mcnc_like()`` is the stand-in for the paper's ``mcnc.genlib`` — the
same cell families (INV/BUF, NAND/NOR/AND/OR at 2..4 inputs, XOR/XNOR,
AOI/OAI complex gates) with genlib-style block+drive pin delays and
relative areas.  It is defined as genlib source and parsed through the
regular reader, so the parser is exercised on every import.

``unit_delay_library()`` gives every function a delay of exactly 1.0
and area 1.0 — handy for deterministic unit tests.
"""

from __future__ import annotations

from functools import lru_cache

from .cells import Cell, PinTiming, TechLibrary
from .genlib import parse_genlib
from ..netlist.gatefunc import (
    AND, ANDN, AOI21, AOI22, BUF, INV, MAJ3, MUX21, NAND, NOR, OAI21,
    OAI22, OR, ORN, XNOR, XOR,
)

MCNC_LIKE_GENLIB = """
# mcnc-like standard cell library (areas relative to the inverter)
GATE inv1   1.0  o=!a;              PIN * INV 1.0 999 1.0 0.40 1.0 0.40
GATE buf1   1.5  o=a;               PIN * NONINV 1.0 999 1.2 0.30 1.2 0.30
GATE nand2  1.5  o=!(a*b);          PIN * INV 1.0 999 1.0 0.50 1.0 0.50
GATE nand3  2.0  o=!(a*b*c);        PIN * INV 1.1 999 1.3 0.55 1.3 0.55
GATE nand4  2.5  o=!(a*b*c*d);      PIN * INV 1.2 999 1.6 0.60 1.6 0.60
GATE nor2   1.5  o=!(a+b);          PIN * INV 1.0 999 1.4 0.55 1.4 0.55
GATE nor3   2.0  o=!(a+b+c);        PIN * INV 1.1 999 1.8 0.60 1.8 0.60
GATE nor4   2.5  o=!(a+b+c+d);      PIN * INV 1.2 999 2.2 0.65 2.2 0.65
GATE and2   2.0  o=a*b;             PIN * NONINV 1.0 999 1.9 0.45 1.9 0.45
GATE and3   2.5  o=a*b*c;           PIN * NONINV 1.1 999 2.2 0.50 2.2 0.50
GATE and4   3.0  o=a*b*c*d;         PIN * NONINV 1.2 999 2.5 0.55 2.5 0.55
GATE or2    2.0  o=a+b;             PIN * NONINV 1.0 999 2.1 0.45 2.1 0.45
GATE or3    2.5  o=a+b+c;           PIN * NONINV 1.1 999 2.5 0.50 2.5 0.50
GATE or4    3.0  o=a+b+c+d;         PIN * NONINV 1.2 999 2.9 0.55 2.9 0.55
GATE xor2   3.5  o=a^b;             PIN * UNKNOWN 1.8 999 2.6 0.60 2.6 0.60
GATE xnor2  3.5  o=!(a^b);          PIN * UNKNOWN 1.8 999 2.6 0.60 2.6 0.60
GATE aoi21  2.0  o=!((a*b)+c);      PIN * INV 1.0 999 1.6 0.60 1.6 0.60
GATE oai21  2.0  o=!((a+b)*c);      PIN * INV 1.0 999 1.6 0.60 1.6 0.60
GATE aoi22  2.5  o=!((a*b)+(c*d));  PIN * INV 1.1 999 2.0 0.65 2.0 0.65
GATE oai22  2.5  o=!((a+b)*(c+d));  PIN * INV 1.1 999 2.0 0.65 2.0 0.65
GATE mux21  3.0  o=(a*!c)+(b*c);    PIN * UNKNOWN 1.4 999 2.4 0.55 2.4 0.55
GATE maj3   3.0  o=(a*b)+(a*c)+(b*c); PIN * NONINV 1.2 999 2.4 0.55 2.4 0.55
GATE andn2  2.0  o=a*!b;            PIN * UNKNOWN 1.0 999 1.9 0.45 1.9 0.45
GATE orn2   2.0  o=a+!b;            PIN * UNKNOWN 1.0 999 2.1 0.45 2.1 0.45
"""


@lru_cache(maxsize=None)
def mcnc_like() -> TechLibrary:
    """The default mapping/optimization target library."""
    return parse_genlib(MCNC_LIKE_GENLIB, name="mcnc_like")


@lru_cache(maxsize=None)
def unit_delay_library() -> TechLibrary:
    """Every supported function, unit delay, unit area (test library)."""
    unit = [PinTiming(1.0, 0.0)]
    cells = []
    specs = [
        ("u_inv", INV, 1), ("u_buf", BUF, 1),
        ("u_and2", AND, 2), ("u_and3", AND, 3), ("u_and4", AND, 4),
        ("u_nand2", NAND, 2), ("u_nand3", NAND, 3), ("u_nand4", NAND, 4),
        ("u_or2", OR, 2), ("u_or3", OR, 3), ("u_or4", OR, 4),
        ("u_nor2", NOR, 2), ("u_nor3", NOR, 3), ("u_nor4", NOR, 4),
        ("u_xor2", XOR, 2), ("u_xnor2", XNOR, 2),
        ("u_aoi21", AOI21, 3), ("u_oai21", OAI21, 3),
        ("u_aoi22", AOI22, 4), ("u_oai22", OAI22, 4),
        ("u_mux21", MUX21, 3), ("u_maj3", MAJ3, 3),
        ("u_andn2", ANDN, 2), ("u_orn2", ORN, 2),
    ]
    for name, func, nin in specs:
        cells.append(Cell(name, 1.0, func, nin, input_load=1.0,
                          pins=list(unit) * nin))
    return TechLibrary("unit", cells)
