"""Deterministic fault injection for the optimization stack.

The plane (DESIGN.md §11) makes the service's failure space
first-class: named fault points registered throughout the stack
(:func:`catalog` enumerates them once the instrumented modules are
imported), seeded :class:`FaultPlan` schedules that make any chaos run
exactly reproducible, and an activation log every run can
replay-verify against its seed.

Sites call :func:`fault`/:func:`fault_arg`; orchestration installs a
plane with :func:`install_plane` or the :class:`active` context
manager, or ships a plan to child processes via :data:`PLAN_ENV`.
"""

from .plane import (
    FAULT_POINTS, FaultPlan, FaultPlanError, FaultPlane, FaultSpec,
    PLAN_ENV, active, active_plane, catalog, fault, fault_arg,
    install_plane, register_point,
)

__all__ = [
    "FAULT_POINTS", "FaultPlan", "FaultPlanError", "FaultPlane",
    "FaultSpec", "PLAN_ENV", "active", "active_plane", "catalog",
    "fault", "fault_arg", "install_plane", "register_point",
]
