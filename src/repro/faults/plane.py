"""The deterministic fault-injection plane.

Failure points are first-class, enumerable objects — the same move the
clustering work makes for partition boundaries (Donovan et al.,
PAPERS.md), applied to the failure space: every place the service can
tear, crash, hang, or lie is a **named fault point** registered in a
catalog (:func:`register_point` at import time of the instrumented
module), and a **seeded schedule** decides exactly which evaluations of
each point fire.

Determinism contract
--------------------
A :class:`FaultPlan` is ``(seed, scope, specs)``.  Each fault point
gets an independent RNG stream seeded by ``(seed, scope, point)``, so:

* whether evaluation *i* of point *p* fires is a pure function of the
  plan — firing one point never shifts another point's schedule;
* scoping a plan per job (``plan.scoped(job_name)``) makes each job's
  activation sequence independent of which worker runs it or how jobs
  interleave — the chaos soak is reproducible from its seed alone;
* :meth:`FaultPlane.schedule` replays the decision for evaluations
  ``1..n`` without side effects, which is how the soak *asserts* that
  the recorded activations match the plan.

Hot-path contract: :func:`fault` with no plane installed is one module
global load and an ``is None`` test — cheap enough to leave in
production paths permanently (guarded by
``tests/faults/test_plane.py``'s computed <2% overhead bound).
"""

from __future__ import annotations

import fnmatch
import json
import os
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: environment variable carrying a serialized plan into child processes
#: (the worker pool forks, but the CLI / daemon restart path re-reads it)
PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultPlanError(ValueError):
    """A plan or spec is malformed (bad field, unknown point pattern)."""


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
#: every fault point the stack registers, name -> one-line description
FAULT_POINTS: Dict[str, str] = {}


def register_point(name: str, description: str) -> str:
    """Declare a named fault point (idempotent; import-time side
    effect of instrumented modules).  Returns the name so modules can
    bind it to a constant."""
    FAULT_POINTS.setdefault(name, description)
    return name


def catalog() -> Dict[str, str]:
    """The registered fault points (import the stack to populate)."""
    return dict(sorted(FAULT_POINTS.items()))


# ----------------------------------------------------------------------
# plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """Schedule for the points matching ``pattern`` (fnmatch syntax).

    Exactly one of the two triggers drives the schedule:

    * ``prob`` — each evaluation fires with this probability, drawn
      from the point's seeded stream (reproducible);
    * ``every`` — deterministic counter: evaluations ``after + every``,
      ``after + 2*every``, ... fire.

    ``max_fires`` caps activations per point (0 = unlimited) — how a
    chaos schedule guarantees a retried job eventually succeeds.
    ``arg`` parameterizes the fault at the site (sleep seconds,
    truncation fraction); sites document their interpretation.
    """

    pattern: str
    prob: float = 0.0
    every: int = 0
    after: int = 0
    max_fires: int = 0
    arg: float = 0.0

    def validate(self) -> None:
        if not self.pattern:
            raise FaultPlanError("spec has an empty point pattern")
        if not 0.0 <= self.prob <= 1.0:
            raise FaultPlanError(f"prob {self.prob} not in [0, 1]")
        if self.every < 0 or self.after < 0 or self.max_fires < 0:
            raise FaultPlanError(
                f"negative schedule field in {self!r}")
        if (self.prob > 0.0) == (self.every > 0):
            raise FaultPlanError(
                f"spec {self.pattern!r} needs exactly one of "
                f"prob/every")

    def to_json(self) -> dict:
        return {"pattern": self.pattern, "prob": self.prob,
                "every": self.every, "after": self.after,
                "max_fires": self.max_fires, "arg": self.arg}

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec is not an object: {data!r}")
        try:
            spec = cls(
                pattern=str(data["pattern"]),
                prob=float(data.get("prob", 0.0)),
                every=int(data.get("every", 0)),
                after=int(data.get("after", 0)),
                max_fires=int(data.get("max_fires", 0)),
                arg=float(data.get("arg", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"bad fault spec {data!r}") from exc
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A seed, a scope salt, and the fault schedules — the whole chaos
    run, reproducibly."""

    seed: int = 0
    scope: str = ""
    specs: tuple = ()

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    def scoped(self, scope: str) -> "FaultPlan":
        """The same schedules re-seeded for ``scope`` (e.g. a job
        name): activation sequences become a pure function of
        ``(seed, scope)``, independent of scheduling."""
        return FaultPlan(seed=self.seed, scope=scope, specs=self.specs)

    def to_json(self) -> dict:
        return {"seed": self.seed, "scope": self.scope,
                "specs": [s.to_json() for s in self.specs]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan is not an object: {data!r}")
        specs = data.get("specs", [])
        if not isinstance(specs, list):
            raise FaultPlanError("plan specs must be a list")
        plan = cls(
            seed=int(data.get("seed", 0)),
            scope=str(data.get("scope", "")),
            specs=tuple(FaultSpec.from_json(s) for s in specs),
        )
        return plan

    # -- env round trip (daemon restarts, CLI-launched workers) --------
    def to_env(self, environ: Optional[Dict[str, str]] = None) -> str:
        payload = json.dumps(self.to_json(), sort_keys=True)
        if environ is not None:
            environ[PLAN_ENV] = payload
        return payload

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["FaultPlan"]:
        payload = (environ if environ is not None else os.environ).get(
            PLAN_ENV)
        if not payload:
            return None
        try:
            return cls.from_json(json.loads(payload))
        except (ValueError, FaultPlanError):
            return None


# ----------------------------------------------------------------------
# plane
# ----------------------------------------------------------------------
@dataclass
class _PointState:
    spec: FaultSpec
    rng: random.Random
    evals: int = 0
    fires: int = 0


class FaultPlane:
    """Live per-process (or per-job) fault state built from a plan.

    ``fire(point)`` advances the point's evaluation counter and reports
    whether this evaluation faults; every activation is appended to
    :attr:`activations` (and passed to ``on_fire`` when set) so runs
    can journal and later replay-verify their fault sequence.

    ``preload_fires`` maps point names to fire counts already spent in
    *earlier* planes over the same scope — a worker retrying a job
    whose previous attempt was killed by a crash fault preloads the
    recorded activations so ``max_fires`` caps the job's **lifetime**
    fires, not each attempt's (otherwise a ``max_fires=1`` crash fault
    would kill every retry and no job could ever survive chaos).
    """

    def __init__(self, plan: FaultPlan,
                 on_fire: Optional[Callable[[dict], None]] = None,
                 preload_fires: Optional[Dict[str, int]] = None):
        plan.validate()
        self.plan = plan
        self.on_fire = on_fire
        self.activations: List[dict] = []
        self._states: Dict[str, Optional[_PointState]] = {}
        self._preload = dict(preload_fires or {})

    # -- spec resolution ----------------------------------------------
    def _state(self, point: str) -> Optional[_PointState]:
        try:
            return self._states[point]
        except KeyError:
            pass
        spec = None
        for candidate in self.plan.specs:
            if fnmatch.fnmatchcase(point, candidate.pattern):
                spec = candidate
                break
        state = None
        if spec is not None:
            state = _PointState(spec=spec, rng=self._stream(point),
                                fires=self._preload.get(point, 0))
        self._states[point] = state
        return state

    def _stream(self, point: str) -> random.Random:
        return random.Random(
            f"{self.plan.seed}:{self.plan.scope}:{point}")

    # -- firing --------------------------------------------------------
    def fire(self, point: str) -> bool:
        """Evaluate ``point`` once; True when this evaluation faults."""
        state = self._state(point)
        if state is None:
            return False
        state.evals += 1
        if not self._decides(state, state.evals):
            return False
        state.fires += 1
        activation = {"point": point, "eval": state.evals,
                      "fire": state.fires}
        self.activations.append(activation)
        if self.on_fire is not None:
            self.on_fire(activation)
        return True

    def fire_arg(self, point: str) -> Optional[float]:
        """Like :meth:`fire` but returns the spec's ``arg`` when firing
        (``None`` otherwise) — for parameterized faults."""
        state = self._state(point)
        if state is not None and self.fire(point):
            return state.spec.arg
        return None

    @staticmethod
    def _decides(state: _PointState, n: int) -> bool:
        spec = state.spec
        if spec.max_fires and state.fires >= spec.max_fires:
            return False
        if n <= spec.after:
            # Burn a draw so prob schedules stay aligned with replay.
            if spec.prob > 0.0:
                state.rng.random()
            return False
        if spec.every:
            return (n - spec.after) % spec.every == 0
        return state.rng.random() < spec.prob

    # -- replay / preview ---------------------------------------------
    def schedule(self, point: str, n_evals: int) -> List[int]:
        """The evaluation indices of ``point`` that fire over
        ``1..n_evals`` — a side-effect-free replay of the plan, used to
        assert that a recorded chaos run matches its seed."""
        state = self._state(point)
        if state is None:
            return []
        replay = _PointState(spec=state.spec, rng=self._stream(point))
        fired = []
        for n in range(1, n_evals + 1):
            replay.evals = n
            if self._decides(replay, n):
                replay.fires += 1
                fired.append(n)
        return fired

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-point ``{evals, fires}`` (points evaluated so far)."""
        return {
            point: {"evals": st.evals, "fires": st.fires}
            for point, st in sorted(self._states.items())
            if st is not None and st.evals
        }


# ----------------------------------------------------------------------
# module-level installation (the hot-path entry)
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultPlane] = None


def fault(point: str) -> bool:
    """Does this evaluation of ``point`` fault?  The one call sites
    make; with no plane installed it is a global load and a compare."""
    plane = _ACTIVE
    if plane is None:
        return False
    return plane.fire(point)


def fault_arg(point: str) -> Optional[float]:
    """Parameterized variant: the firing spec's ``arg``, else None."""
    plane = _ACTIVE
    if plane is None:
        return None
    return plane.fire_arg(point)


def active_plane() -> Optional[FaultPlane]:
    return _ACTIVE


def install_plane(plane: Optional[FaultPlane]) -> Optional[FaultPlane]:
    """Install (or, with ``None``, clear) the process-wide plane;
    returns the previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plane
    return previous


class active:
    """``with active(plan_or_plane):`` — scoped installation."""

    def __init__(self, plan, on_fire=None):
        if isinstance(plan, FaultPlan):
            plan = FaultPlane(plan, on_fire=on_fire)
        self.plane: Optional[FaultPlane] = plan
        self._previous: Optional[FaultPlane] = None

    def __enter__(self) -> Optional[FaultPlane]:
        self._previous = install_plane(self.plane)
        return self.plane

    def __exit__(self, *exc) -> bool:
        install_plane(self._previous)
        return False
