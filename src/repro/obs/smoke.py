"""CI smoke runner: one GDO run with full observability, validated.

``python -m repro.obs.smoke --circuit C432 --out obs-artifacts`` runs
GDO with journal + metrics + tracing enabled, writes the JSONL journal
and the ``BENCH_gdo.json`` trajectory entry into ``--out``, validates
both against their schemas, and exits non-zero on any violation — the
CI job uploads the directory as workflow artifacts and fails with it.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import (
    ObsConfig, export_gdo, load_journal, validate_gdo_entry,
    validate_journal,
)


def run_smoke(circuit: str, out_dir: str, small: bool = True,
              max_rounds: int = 2, max_seconds: float = 120.0) -> int:
    from ..circuits.registry import build
    from ..library import mcnc_like
    from ..opt import GdoConfig, gdo_optimize
    from ..opt.report import format_result

    os.makedirs(out_dir, exist_ok=True)
    journal_path = os.path.join(out_dir, f"journal_{circuit}.jsonl")
    bench_path = os.path.join(out_dir, "BENCH_gdo.json")

    lib = mcnc_like()
    net = build(circuit, small=small)
    lib.rebind(net)
    cfg = GdoConfig(
        n_words=8, verify_final=False, max_rounds=max_rounds,
        max_seconds=max_seconds,
        obs=ObsConfig.full(journal_path=journal_path),
    )
    result = gdo_optimize(net, lib, cfg)
    print(format_result(result, lib))

    # Validate what actually landed on disk, not in-memory state.
    records = load_journal(journal_path)
    validate_journal(records)
    if not any(r["type"] == "run_end" for r in records):
        print("smoke: journal lacks a run_end record", file=sys.stderr)
        return 1
    entry = export_gdo(result, path=bench_path)
    validate_gdo_entry(entry)
    print(f"smoke: {len(records)} journal records and BENCH entry "
          f"{entry['key']}/{entry['circuit']} validated -> {out_dir}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuit", default="C432")
    parser.add_argument("--out", default="obs-artifacts")
    parser.add_argument("--full-size", action="store_true",
                        help="use the full-size generator suite")
    parser.add_argument("--max-rounds", type=int, default=2)
    parser.add_argument("--max-seconds", type=float, default=120.0)
    args = parser.parse_args(argv)
    return run_smoke(args.circuit, args.out, small=not args.full_size,
                     max_rounds=args.max_rounds,
                     max_seconds=args.max_seconds)


if __name__ == "__main__":  # pragma: no cover - CI entry point
    sys.exit(main())
