"""Process-local metrics registry: counters, gauges, histograms.

Instruments are created on demand and identified by ``(name, labels)``::

    reg.counter("proof_verdicts", verdict="valid").inc()
    reg.histogram("proof_latency", backend="sat").observe(0.013)

Two properties matter to GDO:

* **snapshots are plain dicts and mergeable** —
  :meth:`MetricsRegistry.snapshot` returns JSON-able data and
  :meth:`MetricsRegistry.merge_snapshot` folds another snapshot in
  (counters add, gauges last-write, histograms add bucket-wise), which
  is how proof-broker *worker processes* ship their per-backend latency
  histograms back through the ``multiprocessing`` pool;
* **disabled registries are no-ops** — every instrument accessor
  returns one shared null instrument, so hot-loop instrumentation costs
  a method call and nothing else when ``GdoConfig.obs.metrics`` is off.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

#: latency-friendly default histogram buckets (seconds, upper bounds)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: dict) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(key: _Key) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def rendered_key(name: str, **labels) -> str:
    """The snapshot key under which an instrument appears."""
    return _render(_key(name, labels))


def parse_key(rendered: str) -> _Key:
    """Inverse of the snapshot key rendering (for merges)."""
    if "{" not in rendered:
        return rendered, ()
    name, _, rest = rendered.partition("{")
    body = rest.rstrip("}")
    labels = tuple(
        (k, v) for k, _, v in
        (pair.partition("=") for pair in body.split(",") if pair)
    )
    return name, tuple(sorted(labels))


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, le in enumerate(self.buckets):
            if value <= le:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Registry of labelled counters/gauges/histograms."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[_Key, Counter] = {}
        self._gauges: Dict[_Key, Gauge] = {}
        self._histograms: Dict[_Key, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT
        key = _key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(buckets)
        return inst

    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> int:
        inst = self._counters.get(_key(name, labels))
        return inst.value if inst is not None else 0

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able state: ``{counters, gauges, histograms}``."""
        return {
            "counters": {
                _render(k): c.value for k, c in self._counters.items()
            },
            "gauges": {
                _render(k): g.value for k, g in self._gauges.items()
            },
            "histograms": {
                _render(k): {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                } for k, h in self._histograms.items()
            },
        }

    def merge_snapshot(self, snap: Optional[Dict[str, dict]]) -> None:
        """Fold another registry's snapshot into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last write wins).  Histograms merge bucket-wise only when
        the bucket bounds agree — mismatched bounds fall back to
        re-observing the incoming min/max/sum as summary-only data.
        """
        if not self.enabled or not snap:
            return
        for rendered, value in snap.get("counters", {}).items():
            name, labels = parse_key(rendered)
            self.counter(name, **dict(labels)).inc(value)
        for rendered, value in snap.get("gauges", {}).items():
            name, labels = parse_key(rendered)
            self.gauge(name, **dict(labels)).set(value)
        for rendered, data in snap.get("histograms", {}).items():
            name, labels = parse_key(rendered)
            hist = self.histogram(
                name, buckets=tuple(data.get("buckets", DEFAULT_BUCKETS)),
                **dict(labels))
            if hist is NULL_INSTRUMENT:
                continue
            if tuple(data.get("buckets", ())) == hist.buckets:
                for i, c in enumerate(data.get("counts", [])):
                    hist.counts[i] += c
                hist.count += data.get("count", 0)
                hist.sum += data.get("sum", 0.0)
                for bound, pick in (("min", min), ("max", max)):
                    v = data.get(bound)
                    if v is not None:
                        cur = getattr(hist, bound)
                        setattr(hist, bound,
                                v if cur is None else pick(cur, v))
            else:
                for v in (data.get("min"), data.get("max")):
                    if v is not None:
                        hist.observe(v)


#: process-wide disabled registry — the default wired into hot paths
NULL_REGISTRY = MetricsRegistry(enabled=False)
