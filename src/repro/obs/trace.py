"""Nestable span tracer with per-span-name aggregation.

A :class:`Tracer` hands out context-manager *spans*::

    with tracer.span("prove", key=obligation.key):
        ...

Each closed span adds its wall-clock and CPU time to the per-name
aggregate (count / wall seconds / CPU seconds); spans nest freely and
the aggregate is by name only, so ``tracer.aggregate()`` is a flat,
JSON-able dict ready for the "hot spans" report and the BENCH export.

Disabled tracers are a hard no-op: :meth:`Tracer.span` returns one
shared null context manager without allocating, so instrumented code
paths stay within the <2 % overhead budget asserted by
``tests/obs/test_trace.py`` — instrumentation can therefore be left in
the hot loops permanently and switched by ``GdoConfig.obs``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple


class _NullSpan:
    """Shared no-op span for disabled tracers (and a safe default)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """One live span; closing it feeds the tracer's aggregate."""

    __slots__ = ("tracer", "name", "attrs", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[dict]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        agg = self.tracer._agg
        entry = agg.get(self.name)
        if entry is None:
            agg[self.name] = [1, wall, cpu]
        else:
            entry[0] += 1
            entry[1] += wall
            entry[2] += cpu
        return False


class Tracer:
    """Aggregating span tracer; construct with ``enabled=False`` for the
    no-op fast path (or use the shared :data:`NULL_TRACER`)."""

    __slots__ = ("enabled", "_agg")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._agg: Dict[str, List[float]] = {}

    def span(self, name: str, **attrs):
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs or None)

    def reset(self) -> None:
        self._agg.clear()

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-name totals: ``{name: {count, wall_s, cpu_s}}``."""
        return {
            name: {"count": int(c), "wall_s": w, "cpu_s": u}
            for name, (c, w, u) in self._agg.items()
        }


#: process-wide disabled tracer — the default wired into hot paths
NULL_TRACER = Tracer(enabled=False)


def hot_spans(
    aggregate: Dict[str, Dict[str, float]], top: int = 8
) -> List[Tuple[str, int, float, float]]:
    """The ``top`` span names by cumulative wall time, as
    ``(name, count, wall_s, cpu_s)`` rows sorted hottest-first."""
    rows = [
        (name, int(v.get("count", 0)),
         float(v.get("wall_s", 0.0)), float(v.get("cpu_s", 0.0)))
        for name, v in aggregate.items()
    ]
    rows.sort(key=lambda r: (-r[2], r[0]))
    return rows[:top]
