"""Observability for the GDO pipeline: traces, metrics, run journals.

Four standalone pieces (importable without the optimizer):

* :mod:`repro.obs.trace` — nestable span tracer with per-name
  aggregation and a no-op fast path when disabled;
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with labels and *mergeable snapshots* (worker processes ship theirs
  back through the proof broker's pool);
* :mod:`repro.obs.journal` — append-only JSONL run journal: every
  trial, refutation, proof verdict, and committed modification, with a
  monotonic ``seq`` instead of timestamps so journals are deterministic
  modulo :data:`~repro.obs.journal.VOLATILE_FIELDS`;
* :mod:`repro.obs.export` — renders snapshots into the repo-root
  ``BENCH_*.json`` trajectory files, keyed by git SHA.

:class:`ObsConfig` is the ``GdoConfig.obs`` knob (default: metrics on,
journal and tracing off) and :class:`Observability` is the per-run
bundle the engine wires through the hot layers.  See DESIGN.md §7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .export import (
    ExportSchemaError, append_bench, bench_entry, export_gdo, gdo_entry,
    git_sha, load_bench, validate_bench_entry,
    validate_chaos_entry, validate_gdo_entry, validate_service_entry,
)
from .journal import (
    EventLog, NULL_JOURNAL, JournalSchemaError, NullJournal, RunJournal,
    VOLATILE_FIELDS, event_counts, load_events, load_journal,
    load_journal_tolerant, strip_volatile, validate_journal,
    validate_record,
)
from .metrics import (
    DEFAULT_BUCKETS, MetricsRegistry, NULL_REGISTRY, rendered_key,
)
from .trace import NULL_TRACER, Tracer, hot_spans


@dataclass
class ObsConfig:
    """What to observe during a run (the ``GdoConfig.obs`` knob).

    Metrics default on — counters/histograms are cheap and feed the
    report's funnel line; span tracing and the journal default off and
    are switched on for perf work and post-mortems.  Setting
    ``journal_path`` implies ``journal`` and streams records to that
    JSONL file; ``journal=True`` alone keeps them in memory (surfaced
    on ``GdoStats.obs``).
    """

    metrics: bool = True
    trace: bool = False
    journal: bool = False
    journal_path: Optional[str] = None

    @classmethod
    def off(cls) -> "ObsConfig":
        return cls(metrics=False, trace=False, journal=False)

    @classmethod
    def full(cls, journal_path: Optional[str] = None) -> "ObsConfig":
        return cls(metrics=True, trace=True, journal=True,
                   journal_path=journal_path)


@dataclass
class ObsSnapshot:
    """Immutable end-of-run observability state on ``GdoStats.obs``."""

    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, dict] = field(default_factory=dict)
    journal_records: list = field(default_factory=list)
    journal_path: Optional[str] = None

    def counter(self, name: str, **labels) -> int:
        return self.metrics.get("counters", {}).get(
            rendered_key(name, **labels), 0)

    def counter_sum(self, name: str) -> int:
        """Total over every label combination of counter ``name``."""
        return sum(
            v for k, v in self.metrics.get("counters", {}).items()
            if k == name or k.startswith(name + "{")
        )


class Observability:
    """The per-run bundle: one tracer, one registry, one journal.

    Disabled pieces are the shared null singletons, so an
    ``Observability`` can be threaded through every layer
    unconditionally — hot paths never branch on configuration.
    """

    def __init__(self, tracer: Tracer = NULL_TRACER,
                 metrics: MetricsRegistry = NULL_REGISTRY,
                 journal=NULL_JOURNAL):
        self.tracer = tracer
        self.metrics = metrics
        self.journal = journal

    @classmethod
    def from_config(cls, cfg: Optional[ObsConfig]) -> "Observability":
        if cfg is None:
            return cls()
        tracer = Tracer() if cfg.trace else NULL_TRACER
        metrics = MetricsRegistry() if cfg.metrics else NULL_REGISTRY
        if cfg.journal or cfg.journal_path is not None:
            journal = RunJournal(cfg.journal_path)
        else:
            journal = NULL_JOURNAL
        return cls(tracer, metrics, journal)

    @property
    def enabled(self) -> bool:
        return (self.tracer.enabled or self.metrics.enabled
                or self.journal.enabled)

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def snapshot(self) -> Optional[ObsSnapshot]:
        """The end-of-run snapshot, or ``None`` when fully disabled."""
        if not self.enabled:
            return None
        return ObsSnapshot(
            spans=self.tracer.aggregate(),
            metrics=self.metrics.snapshot(),
            journal_records=list(self.journal.records),
            journal_path=self.journal.path,
        )

    def close(self) -> None:
        self.journal.close()


__all__ = [
    "ObsConfig", "ObsSnapshot", "Observability",
    "Tracer", "NULL_TRACER", "hot_spans",
    "MetricsRegistry", "NULL_REGISTRY", "DEFAULT_BUCKETS", "rendered_key",
    "RunJournal", "NullJournal", "NULL_JOURNAL", "JournalSchemaError",
    "EventLog", "event_counts", "load_events",
    "VOLATILE_FIELDS", "load_journal", "load_journal_tolerant",
    "strip_volatile",
    "validate_journal", "validate_record",
    "ExportSchemaError", "append_bench", "bench_entry", "export_gdo",
    "gdo_entry", "git_sha", "load_bench", "validate_bench_entry",
    "validate_chaos_entry", "validate_gdo_entry",
    "validate_service_entry",
]
