"""Append-only JSONL run journals for GDO.

A :class:`RunJournal` records the complete decision trail of one
optimizer run — every candidate trial, BPFS refutation, proof verdict
(with obligation hash and cache hit/miss), and committed modification —
one JSON object per line, enough to post-mortem or replay a run.

Determinism contract (asserted by
``tests/opt/test_obs_integration.py``): records carry **no timestamps**
— ordering is the monotonic ``seq`` id — and every latency-ish field a
record may carry is listed in :data:`VOLATILE_FIELDS`, so two runs that
make the same decisions produce journals identical modulo those fields
(``proof_workers=1`` vs ``N``, incremental vs scratch engines).

Records are validated against :data:`RECORD_SCHEMA` both on write (in
debug validation mode) and by :func:`validate_journal` after a load.
"""

from __future__ import annotations

import io
import json
import os
import signal
from typing import Dict, Iterable, List, Optional, Tuple

from ..faults import fault_arg, register_point

#: fault point: SIGKILL the process mid-journal-append (``arg > 0``
#: first writes a torn partial line, as a crash mid-write would leave)
FP_JOURNAL_CRASH = register_point(
    "journal.record.crash",
    "SIGKILL while appending a journal record (arg>0: torn line first)")

#: fields whose values may differ between byte-identical decision
#: sequences (scheduling, caching, wall clock); comparisons strip them
VOLATILE_FIELDS = frozenset({"wall_ms", "cache_hit", "batched"})

#: required fields per record type (beyond the envelope ``seq``/``type``)
RECORD_SCHEMA: Dict[str, frozenset] = {
    "run_begin": frozenset({"circuit", "gates", "seed", "n_words"}),
    "phase_begin": frozenset({"phase", "round"}),
    "trial": frozenset({"phase", "kind", "desc"}),
    # Trial edit forced a from-scratch timing recompute
    # (dirty_fraction).  Classified from the edit's dirty set alone, so
    # the record appears identically under every engine mode.
    "sta_scratch": frozenset({"cause", "dirty"}),
    # Trial edit touched a PI fanout cone root — handled in-cone by the
    # incremental sweep, journaled so the trigger is no longer silent.
    "sta_pi_root": frozenset({"dirty"}),
    "static": frozenset({"desc", "verdict"}),
    "refute": frozenset({"desc", "refuted"}),
    "verdict": frozenset({"obligation", "verdict"}),
    "reject": frozenset({"desc", "reason"}),
    "commit": frozenset({"phase", "kind", "desc",
                         "delay_after", "area_after"}),
    "run_end": frozenset({"delay_after", "area_after",
                          "mods", "rounds"}),
    # --- partitioned parallel GDO (repro.partition, DESIGN.md §12) ---
    # Scheduling-independent by construction: the partition plan is a
    # pure function of (netlist, config) and regions are journaled in
    # canonical index order, never worker/completion order, so
    # workers=1 and workers=N journals are identical.
    "partition_begin": frozenset({"regions", "gates", "cones",
                                  "cut_edges"}),
    "region": frozenset({"region", "round", "gates", "halo",
                         "exports"}),
    "region_result": frozenset({"region", "round", "commits",
                                "delay_after"}),
    "region_merge": frozenset({"region", "round", "modified"}),
    "region_reject": frozenset({"region", "round", "overlap", "reason"}),
    "region_requeue": frozenset({"region", "round"}),
    "partition_end": frozenset({"rounds", "merged", "rejected"}),
}


class JournalSchemaError(ValueError):
    """A record violates :data:`RECORD_SCHEMA` or the seq contract."""


#: record types whose on-disk line is fsync'd before ``record`` returns
#: — crash recovery resumes from the last *committed* substitution, so
#: commits (and the run envelope) must survive a SIGKILL.
DURABLE_TYPES = frozenset({"commit", "run_begin", "run_end"})

#: fault-injection hook (crash-recovery tests): ``"commit:2"`` SIGKILLs
#: the process right after the 2nd commit record reaches disk;
#: ``"commit:2:partial"`` first appends a torn half-record so the loader
#: sees a mid-append crash.  Parsed once per journal; unset = disabled.
CRASH_ENV = "REPRO_CRASH_AFTER"


def _parse_crash_hook(value: Optional[str]):
    if not value:
        return None
    parts = value.split(":")
    if len(parts) < 2:
        return None
    try:
        return parts[0], int(parts[1]), (len(parts) > 2 and
                                         parts[2] == "partial")
    except ValueError:
        return None


class RunJournal:
    """Append-only journal; in-memory always, JSONL on disk if ``path``.

    ``record`` assigns the next ``seq`` and validates the record against
    the schema; disk writes are line-buffered JSON with sorted keys, so
    journals are diffable and the file is valid JSONL even mid-run.
    Records in :data:`DURABLE_TYPES` are additionally fsync'd — the
    service's crash recovery depends on every committed modification
    being on disk before the optimizer proceeds.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.records: List[dict] = []
        self._fh: Optional[io.TextIOBase] = None
        self._crash = _parse_crash_hook(os.environ.get(CRASH_ENV))
        self._crash_seen = 0
        if path is not None:
            self._fh = open(path, "w", encoding="utf-8", buffering=1)

    # ------------------------------------------------------------------
    def record(self, rectype: str, **fields) -> dict:
        rec = {"seq": len(self.records), "type": rectype}
        rec.update(fields)
        validate_record(rec)
        self.records.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
            if rectype in DURABLE_TYPES:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        if self._crash is not None:
            self._crash_tick(rectype)
        arg = fault_arg(FP_JOURNAL_CRASH)
        if arg is not None:
            self._die(torn=arg > 0)
        return rec

    def _crash_tick(self, rectype: str) -> None:
        """Fault injection: die by SIGKILL after the Nth ``rectype``."""
        crash_type, crash_count, partial = self._crash
        if rectype != crash_type:
            return
        self._crash_seen += 1
        if self._crash_seen < crash_count:
            return
        self._die(torn=partial)

    def _die(self, torn: bool) -> None:
        """SIGKILL this process, optionally leaving a torn final line —
        the shared exit of the ``REPRO_CRASH_AFTER`` hook and the
        ``journal.record.crash`` fault point."""
        if self._fh is not None:
            if torn:
                # A torn final line, as a crash mid-append would leave.
                self._fh.write('{"seq": 999999, "type": "tri')
            self._fh.flush()
            os.fsync(self._fh.fileno())
        os.kill(os.getpid(), signal.SIGKILL)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullJournal:
    """No-op journal for disabled observability."""

    enabled = False
    path = None
    records: List[dict] = []

    def record(self, rectype: str, **fields) -> None:
        return None

    def close(self) -> None:
        pass


NULL_JOURNAL = NullJournal()


# ----------------------------------------------------------------------
# schema validation / loading / comparison
# ----------------------------------------------------------------------
def validate_record(rec: dict) -> None:
    """Raise :class:`JournalSchemaError` unless ``rec`` is well-formed."""
    if not isinstance(rec.get("seq"), int) or rec["seq"] < 0:
        raise JournalSchemaError(f"bad seq in {rec!r}")
    rectype = rec.get("type")
    required = RECORD_SCHEMA.get(rectype)
    if required is None:
        raise JournalSchemaError(f"unknown record type {rectype!r}")
    missing = required - rec.keys()
    if missing:
        raise JournalSchemaError(
            f"{rectype} record missing fields {sorted(missing)}: {rec!r}")


def validate_journal(records: Iterable[dict]) -> None:
    """Validate every record and the monotonic-seq envelope."""
    for i, rec in enumerate(records):
        validate_record(rec)
        if rec["seq"] != i:
            raise JournalSchemaError(
                f"seq gap: record {i} carries seq {rec['seq']}")


def load_journal(path: str) -> List[dict]:
    """Parse a JSONL journal file (no validation — see
    :func:`validate_journal`)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_journal_tolerant(path: str) -> Tuple[List[dict], int]:
    """Parse a journal that may end in a torn line (crash mid-append).

    Returns ``(records, dropped)`` where ``dropped`` counts unparseable
    *trailing* lines discarded (0 for a clean journal).  Only the final
    line may be torn — an unparseable line followed by a parseable one
    means real corruption, which still raises, exactly like
    :func:`load_journal`.  Crash recovery loads journals through this:
    the valid prefix is the resumable decision trail.
    """
    raw: List[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                raw.append(line)
    records: List[dict] = []
    for i, line in enumerate(raw):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            if i == len(raw) - 1:
                return records, 1
            raise ValueError(
                f"{path}: corrupt journal record at line {i + 1} "
                f"(not a torn tail)") from exc
    return records, 0


def strip_volatile(records: Iterable[dict]) -> List[dict]:
    """Copies of ``records`` without :data:`VOLATILE_FIELDS` — the
    comparable form for determinism regressions."""
    return [
        {k: v for k, v in rec.items() if k not in VOLATILE_FIELDS}
        for rec in records
    ]


# ----------------------------------------------------------------------
# service event log
# ----------------------------------------------------------------------
class EventLog:
    """Multi-process append-only JSONL event log (the service trail).

    Unlike :class:`RunJournal` this is *not* a determinism artifact:
    workers, the supervisor, and the daemon all append to one file, so
    events interleave by wall-clock scheduling.  Each ``emit`` is a
    single whole-line ``write(2)`` on an ``O_APPEND`` fd — the same
    discipline as the verdict store's segments — so concurrent writers
    never interleave bytes, and a killed writer leaves at most one torn
    tail line, which :func:`load_events` skips.  ``seq`` restarts per
    process; ``pid`` disambiguates.
    """

    def __init__(self, path: str, fsync: bool = False):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fsync = fsync
        self._seq = 0
        self._fd: Optional[int] = os.open(
            path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)

    def emit(self, etype: str, **fields) -> dict:
        """Append one event; returns the record written."""
        rec = {"type": etype, "pid": os.getpid(), "seq": self._seq}
        rec.update(fields)
        self._seq += 1
        if self._fd is not None:
            os.write(self._fd,
                     (json.dumps(rec, sort_keys=True) + "\n").encode())
            if self._fsync:
                os.fsync(self._fd)
        return rec

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def load_events(path: str) -> Tuple[List[dict], int]:
    """Parse an event log; returns ``(events, dropped)``.

    Tolerant by design — any unparseable line (torn tail of a killed
    writer) is counted and skipped, never raised: the event log is an
    operational trail, not a replay oracle.
    """
    events: List[dict] = []
    dropped = 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    dropped += 1
                    continue
                if isinstance(rec, dict):
                    events.append(rec)
                else:
                    dropped += 1
    except OSError:
        return [], 0
    return events, dropped


def event_counts(events: Iterable[dict]) -> Dict[str, int]:
    """``{event type: count}`` — the stats-surface rollup."""
    counts: Dict[str, int] = {}
    for rec in events:
        etype = str(rec.get("type"))
        counts[etype] = counts.get(etype, 0) + 1
    return dict(sorted(counts.items()))
