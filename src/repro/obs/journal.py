"""Append-only JSONL run journals for GDO.

A :class:`RunJournal` records the complete decision trail of one
optimizer run — every candidate trial, BPFS refutation, proof verdict
(with obligation hash and cache hit/miss), and committed modification —
one JSON object per line, enough to post-mortem or replay a run.

Determinism contract (asserted by
``tests/opt/test_obs_integration.py``): records carry **no timestamps**
— ordering is the monotonic ``seq`` id — and every latency-ish field a
record may carry is listed in :data:`VOLATILE_FIELDS`, so two runs that
make the same decisions produce journals identical modulo those fields
(``proof_workers=1`` vs ``N``, incremental vs scratch engines).

Records are validated against :data:`RECORD_SCHEMA` both on write (in
debug validation mode) and by :func:`validate_journal` after a load.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, List, Optional

#: fields whose values may differ between byte-identical decision
#: sequences (scheduling, caching, wall clock); comparisons strip them
VOLATILE_FIELDS = frozenset({"wall_ms", "cache_hit", "batched"})

#: required fields per record type (beyond the envelope ``seq``/``type``)
RECORD_SCHEMA: Dict[str, frozenset] = {
    "run_begin": frozenset({"circuit", "gates", "seed", "n_words"}),
    "phase_begin": frozenset({"phase", "round"}),
    "trial": frozenset({"phase", "kind", "desc"}),
    # Trial edit forced a from-scratch timing recompute
    # (dirty_fraction).  Classified from the edit's dirty set alone, so
    # the record appears identically under every engine mode.
    "sta_scratch": frozenset({"cause", "dirty"}),
    # Trial edit touched a PI fanout cone root — handled in-cone by the
    # incremental sweep, journaled so the trigger is no longer silent.
    "sta_pi_root": frozenset({"dirty"}),
    "static": frozenset({"desc", "verdict"}),
    "refute": frozenset({"desc", "refuted"}),
    "verdict": frozenset({"obligation", "verdict"}),
    "reject": frozenset({"desc", "reason"}),
    "commit": frozenset({"phase", "kind", "desc",
                         "delay_after", "area_after"}),
    "run_end": frozenset({"delay_after", "area_after",
                          "mods", "rounds"}),
}


class JournalSchemaError(ValueError):
    """A record violates :data:`RECORD_SCHEMA` or the seq contract."""


class RunJournal:
    """Append-only journal; in-memory always, JSONL on disk if ``path``.

    ``record`` assigns the next ``seq`` and validates the record against
    the schema; disk writes are line-buffered JSON with sorted keys, so
    journals are diffable and the file is valid JSONL even mid-run.
    """

    enabled = True

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.records: List[dict] = []
        self._fh: Optional[io.TextIOBase] = None
        if path is not None:
            self._fh = open(path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    def record(self, rectype: str, **fields) -> dict:
        rec = {"seq": len(self.records), "type": rectype}
        rec.update(fields)
        validate_record(rec)
        self.records.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullJournal:
    """No-op journal for disabled observability."""

    enabled = False
    path = None
    records: List[dict] = []

    def record(self, rectype: str, **fields) -> None:
        return None

    def close(self) -> None:
        pass


NULL_JOURNAL = NullJournal()


# ----------------------------------------------------------------------
# schema validation / loading / comparison
# ----------------------------------------------------------------------
def validate_record(rec: dict) -> None:
    """Raise :class:`JournalSchemaError` unless ``rec`` is well-formed."""
    if not isinstance(rec.get("seq"), int) or rec["seq"] < 0:
        raise JournalSchemaError(f"bad seq in {rec!r}")
    rectype = rec.get("type")
    required = RECORD_SCHEMA.get(rectype)
    if required is None:
        raise JournalSchemaError(f"unknown record type {rectype!r}")
    missing = required - rec.keys()
    if missing:
        raise JournalSchemaError(
            f"{rectype} record missing fields {sorted(missing)}: {rec!r}")


def validate_journal(records: Iterable[dict]) -> None:
    """Validate every record and the monotonic-seq envelope."""
    for i, rec in enumerate(records):
        validate_record(rec)
        if rec["seq"] != i:
            raise JournalSchemaError(
                f"seq gap: record {i} carries seq {rec['seq']}")


def load_journal(path: str) -> List[dict]:
    """Parse a JSONL journal file (no validation — see
    :func:`validate_journal`)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def strip_volatile(records: Iterable[dict]) -> List[dict]:
    """Copies of ``records`` without :data:`VOLATILE_FIELDS` — the
    comparable form for determinism regressions."""
    return [
        {k: v for k, v in rec.items() if k not in VOLATILE_FIELDS}
        for rec in records
    ]
