"""Render observability snapshots into ``BENCH_*.json`` trajectories.

The repo-root ``BENCH_*.json`` files are the cross-PR performance
record: each file holds ``{"entries": [...]}`` where every entry is
keyed by git SHA (plus a secondary field such as the circuit name), so
repeated runs of the same commit *merge* — replacing their previous
entry — while new commits *append*.  :func:`gdo_entry` reduces one
:class:`~repro.opt.gdo.GdoResult` to the schema below and
:func:`append_bench` does the keyed append/merge; benchmark modules
reuse :func:`bench_entry`/:func:`append_bench` for their own files.

GDO entry schema (validated by :func:`validate_gdo_entry`)::

    {
      "key": "<git sha>", "circuit": "...",
      "delay_before": f, "delay_after": f,
      "area_before": f, "area_after": f,
      "mods": n, "rounds": n, "seconds": f,
      "phase_seconds": {"delay": f, ...},
      "hot_spans": [{"name": s, "count": n, "wall_s": f}, ...],
      "broker": {"dispatched": n, "cache_hits": n,
                 "cache_misses": n, "hit_rate": f},
      "funnel": {"generated": n, "static_proved": n,
                 "static_refuted": n, "to_bpfs": n,
                 "bpfs_survived": n, "proved": n, "committed": n},
      "flat": {"hits": n, "fallbacks": n}
    }
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Dict, List, Optional, Sequence, Tuple

from .trace import hot_spans


class ExportSchemaError(ValueError):
    """An entry violates the BENCH schema it is exported under."""


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
def git_sha(root: Optional[str] = None) -> str:
    """Short git SHA of ``root`` (or cwd); falls back to ``GITHUB_SHA``
    then ``"unknown"`` so exports never fail outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    env = os.environ.get("GITHUB_SHA", "")
    return env[:12] if env else "unknown"


# ----------------------------------------------------------------------
# entry construction
# ----------------------------------------------------------------------
def funnel_counts(snapshot) -> Dict[str, int]:
    """The candidate funnel of one run from its obs snapshot (zeros
    when metrics were disabled)."""
    if snapshot is None:
        return {"generated": 0, "static_proved": 0, "static_refuted": 0,
                "to_bpfs": 0, "bpfs_survived": 0,
                "proved": 0, "committed": 0}
    return {
        "generated": snapshot.counter_sum("gdo_candidates_generated"),
        "static_proved": snapshot.counter_sum("gdo_static_proved"),
        "static_refuted": snapshot.counter_sum("gdo_static_refuted"),
        "to_bpfs": snapshot.counter_sum("gdo_to_bpfs"),
        "bpfs_survived": snapshot.counter_sum("gdo_bpfs_survived"),
        "proved": snapshot.counter_sum("gdo_proved"),
        "committed": snapshot.counter_sum("gdo_committed"),
    }


def gdo_entry(result, key: Optional[str] = None) -> dict:
    """One ``BENCH_gdo.json`` trajectory entry for a finished run."""
    s = result.stats
    snapshot = s.obs
    spans = snapshot.spans if snapshot is not None else {}
    p = s.proof
    entry = {
        "key": key if key is not None else git_sha(),
        "circuit": result.net.name,
        "delay_before": s.delay_before,
        "delay_after": s.delay_after,
        "area_before": s.area_before,
        "area_after": s.area_after,
        "mods": len(s.history),
        "rounds": s.rounds,
        "seconds": s.cpu_seconds,
        "phase_seconds": dict(s.phase_seconds),
        "hot_spans": [
            {"name": name, "count": count, "wall_s": wall}
            for name, count, wall, _cpu in hot_spans(spans, top=8)
        ],
        "broker": {
            "dispatched": p.dispatched,
            "cache_hits": p.cache_hits,
            "cache_misses": p.cache_misses,
            "hit_rate": p.hit_rate,
        },
        "funnel": funnel_counts(snapshot),
        "flat": {
            "hits": s.engine.flat_hits,
            "fallbacks": s.engine.flat_fallbacks,
        },
    }
    validate_gdo_entry(entry)
    return entry


def bench_entry(key: Optional[str] = None, **fields) -> dict:
    """A free-form keyed entry for non-GDO bench files
    (``BENCH_engines.json``, ``BENCH_proof.json``)."""
    entry = {"key": key if key is not None else git_sha()}
    entry.update(fields)
    validate_bench_entry(entry)
    return entry


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
_GDO_FIELDS = {
    "key": str, "circuit": str,
    "delay_before": (int, float), "delay_after": (int, float),
    "area_before": (int, float), "area_after": (int, float),
    "mods": int, "rounds": int, "seconds": (int, float),
    "phase_seconds": dict, "hot_spans": list,
    "broker": dict, "funnel": dict, "flat": dict,
}
_BROKER_FIELDS = ("dispatched", "cache_hits", "cache_misses", "hit_rate")
_FUNNEL_FIELDS = ("generated", "static_proved", "static_refuted",
                  "to_bpfs", "bpfs_survived", "proved", "committed")
_FLAT_FIELDS = ("hits", "fallbacks")


def validate_bench_entry(entry: dict) -> None:
    if not isinstance(entry, dict):
        raise ExportSchemaError(f"entry is not an object: {entry!r}")
    if not isinstance(entry.get("key"), str) or not entry["key"]:
        raise ExportSchemaError(f"entry lacks a string key: {entry!r}")


_SERVICE_FIELDS = {
    "key": str, "jobs": dict,
    "jobs_per_sec": (int, float), "queue_depth": int,
    "cross_client_hit_rate": (int, float),
    "cross_client_hits": int, "store_misses": int,
}


def validate_service_entry(entry: dict) -> None:
    """Raise :class:`ExportSchemaError` unless ``entry`` matches the
    ``BENCH_service.json`` schema (service-level job/store metrics)."""
    validate_bench_entry(entry)
    for field, types in _SERVICE_FIELDS.items():
        if field not in entry:
            raise ExportSchemaError(f"service entry missing {field!r}")
        if not isinstance(entry[field], types):
            raise ExportSchemaError(
                f"service entry field {field!r} has type "
                f"{type(entry[field]).__name__}")
    rate = entry["cross_client_hit_rate"]
    if not 0.0 <= rate <= 1.0:
        raise ExportSchemaError(
            f"cross_client_hit_rate {rate!r} outside [0, 1]")
    for state, count in entry["jobs"].items():
        if not isinstance(state, str) or not isinstance(count, int):
            raise ExportSchemaError(
                f"service entry jobs has malformed item "
                f"{state!r}: {count!r}")


_CHAOS_FIELDS = {
    "key": str, "seed": int, "jobs": int, "jobs_done": int,
    "deadlettered": int, "fault_activations": int,
    "fires_by_point": dict,
    "baseline_seconds": (int, float), "chaos_seconds": (int, float),
    "inflation": (int, float),
    "watchdog_kills": int, "respawns": int,
    "equivalence_checked": int, "replay_verified": bool,
}


def validate_chaos_entry(entry: dict) -> None:
    """Raise :class:`ExportSchemaError` unless ``entry`` matches the
    ``BENCH_chaos.json`` schema (chaos-soak acceptance metrics)."""
    validate_bench_entry(entry)
    for field, types in _CHAOS_FIELDS.items():
        if field not in entry:
            raise ExportSchemaError(f"chaos entry missing {field!r}")
        if not isinstance(entry[field], types):
            raise ExportSchemaError(
                f"chaos entry field {field!r} has type "
                f"{type(entry[field]).__name__}")
    if entry["jobs_done"] != entry["jobs"] or entry["deadlettered"]:
        raise ExportSchemaError(
            "chaos entry records lost jobs: "
            f"{entry['jobs_done']}/{entry['jobs']} done, "
            f"{entry['deadlettered']} dead-lettered")
    for point, fires in entry["fires_by_point"].items():
        if not isinstance(point, str) or not isinstance(fires, int):
            raise ExportSchemaError(
                f"chaos entry fires_by_point has malformed item "
                f"{point!r}: {fires!r}")


def validate_gdo_entry(entry: dict) -> None:
    """Raise :class:`ExportSchemaError` unless ``entry`` matches the
    GDO trajectory schema."""
    validate_bench_entry(entry)
    for field, types in _GDO_FIELDS.items():
        if field not in entry:
            raise ExportSchemaError(f"gdo entry missing {field!r}")
        if not isinstance(entry[field], types):
            raise ExportSchemaError(
                f"gdo entry field {field!r} has type "
                f"{type(entry[field]).__name__}")
    for field in _BROKER_FIELDS:
        if field not in entry["broker"]:
            raise ExportSchemaError(f"gdo entry broker missing {field!r}")
    for field in _FUNNEL_FIELDS:
        if field not in entry["funnel"]:
            raise ExportSchemaError(f"gdo entry funnel missing {field!r}")
    for field in _FLAT_FIELDS:
        if field not in entry["flat"]:
            raise ExportSchemaError(f"gdo entry flat missing {field!r}")
    for span in entry["hot_spans"]:
        if not isinstance(span, dict) or "name" not in span \
                or "wall_s" not in span:
            raise ExportSchemaError(f"malformed hot span {span!r}")


# ----------------------------------------------------------------------
# append/merge
# ----------------------------------------------------------------------
def _entry_key(entry: dict, key_fields: Sequence[str]) -> Tuple:
    return tuple(entry.get(f) for f in key_fields)


def load_bench(path: str) -> List[dict]:
    """The entries of one BENCH file (empty when absent/corrupt)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return []
    if isinstance(data, dict):
        entries = data.get("entries", [])
    else:  # tolerate a bare list
        entries = data
    return [e for e in entries if isinstance(e, dict)]


def append_bench(
    path: str,
    entry: dict,
    key_fields: Sequence[str] = ("key", "circuit"),
) -> List[dict]:
    """Append ``entry`` to the BENCH file at ``path``, replacing any
    existing entry with the same ``key_fields`` tuple.  Returns the
    written entry list."""
    validate_bench_entry(entry)
    entries = load_bench(path)
    ident = _entry_key(entry, key_fields)
    entries = [
        e for e in entries if _entry_key(e, key_fields) != ident
    ]
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"entries": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entries


def export_gdo(result, path: str = "BENCH_gdo.json",
               key: Optional[str] = None) -> dict:
    """Build, validate, and append one GDO trajectory entry; the
    written entry is returned for reporting/tests."""
    entry = gdo_entry(result, key=key)
    append_bench(path, entry, key_fields=("key", "circuit"))
    return entry
