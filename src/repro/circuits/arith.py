"""Arithmetic benchmark circuits: adders, comparators, small function
blocks (Z5xp1-like)."""

from __future__ import annotations

from typing import List

from ..netlist.netlist import Netlist, constant_signal
from .builders import (
    full_adder, g, greater_than_const, half_adder, invert, mux2,
    ripple_add, tree, vector_input,
)


def ripple_carry_adder(width: int = 16, name: str | None = None) -> Netlist:
    """n-bit ripple-carry adder with carry-in and carry-out."""
    net = Netlist(name or f"rca{width}")
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    cin = net.add_pi("cin")
    sums, cout = ripple_add(net, a, b, cin)
    net.set_pos(sums + [cout])
    net.validate()
    return net


def carry_select_adder(width: int = 16, block: int = 4,
                       name: str | None = None) -> Netlist:
    """Carry-select adder: per-block dual ripple chains + mux."""
    net = Netlist(name or f"csa{width}")
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    cin = net.add_pi("cin")
    zero = constant_signal(net, 0)
    one = constant_signal(net, 1)
    sums: List[str] = []
    carry = cin
    for start in range(0, width, block):
        stop = min(start + block, width)
        s0, c0 = ripple_add(net, a[start:stop], b[start:stop], zero)
        s1, c1 = ripple_add(net, a[start:stop], b[start:stop], one)
        for k in range(stop - start):
            sums.append(mux2(net, carry, s1[k], s0[k]))
        carry = mux2(net, carry, c1, c0)
    net.set_pos(sums + [carry])
    net.validate()
    return net


def comparator(width: int = 16, name: str | None = None) -> Netlist:
    """Unsigned comparator: outputs (a < b, a == b, a > b)."""
    net = Netlist(name or f"cmp{width}")
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    eq_bits = [
        g(net, "XNOR", [a[k], b[k]], "eq") for k in range(width)
    ]
    gt_terms: List[str] = []
    for k in reversed(range(width)):
        cond = [a[k], invert(net, b[k])] + eq_bits[k + 1:]
        gt_terms.append(tree(net, "AND", cond, "gtt"))
    a_gt_b = tree(net, "OR", gt_terms, "gt")
    a_eq_b = tree(net, "AND", eq_bits, "alleq")
    a_lt_b = g(net, "NOR", [a_gt_b, a_eq_b], "lt")
    net.set_pos([a_lt_b, a_eq_b, a_gt_b])
    net.validate()
    return net


def z5xp1_like(name: str = "z5xp1_like") -> Netlist:
    """7-input, 10-output arithmetic block (Z5xp1 stand-in).

    Computes ``X*5 + X + (X >> 2)`` over a 7-bit input — a mix of shifted
    additions giving the multi-output arithmetic flavour of the MCNC
    two-level benchmark.
    """
    net = Netlist(name)
    x = vector_input(net, "x", 7)
    zero = constant_signal(net, 0)
    # X*4 (shift by 2), width 10
    def pad(bits: List[str], shift: int, width: int) -> List[str]:
        padded = [zero] * shift + list(bits)
        padded = padded[:width] + [zero] * max(0, width - len(padded))
        return padded[:width]

    width = 10
    x4 = pad(x, 2, width)
    x1 = pad(x, 0, width)
    x_shr2 = pad(x[2:], 0, width)
    s1, _ = ripple_add(net, x4, x1)          # X*5
    s2, _ = ripple_add(net, s1, x1)          # X*6
    s3, _ = ripple_add(net, s2, x_shr2)      # X*6 + X>>2
    net.set_pos(s3)
    net.validate()
    return net


def c880_like(width: int = 8, name: str = "c880_like") -> Netlist:
    """ALU/control mix (C880 stand-in): add/sub with zero/overflow flags
    plus a parity-protected bypass path."""
    net = Netlist(name)
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    sub = net.add_pi("sub")
    bypass = net.add_pi("byp")
    b_eff = [g(net, "XOR", [bit, sub], "bx") for bit in b]
    sums, cout = ripple_add(net, a, b_eff, sub)
    zero_flag = g(net, "NOR", sums[:4], "zf0")
    zero_hi = g(net, "NOR", sums[4:], "zf1")
    zero = g(net, "AND", [zero_flag, zero_hi], "zf")
    parity = tree(net, "XOR", a, "par")
    outs = [mux2(net, bypass, a[k], sums[k]) for k in range(width)]
    net.set_pos(outs + [cout, zero, parity])
    net.validate()
    return net
