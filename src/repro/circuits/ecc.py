"""Single-error-correcting circuits — the C499/C1355 stand-ins.

C499 (and its NAND-expanded twin C1355) is a 32-bit single-error-
correcting translator: syndrome computation over XOR trees followed by
a decode-and-correct stage.  ``sec_corrector`` builds the same shape:
``data`` plus ``check`` inputs, recomputed parities XORed into a
syndrome, a decoder AND-plane, and XOR correctors on every data bit.
"""

from __future__ import annotations

from typing import List

from ..netlist.netlist import Netlist
from .builders import equals_const, g, tree, vector_input


def _parity_positions(n_data: int) -> List[List[int]]:
    """Hamming-style parity groups: check ``j`` covers data positions
    whose (1-based, gap-coded) index has bit ``j`` set."""
    n_check = 1
    while (1 << n_check) < n_data + n_check + 1:
        n_check += 1
    positions: List[List[int]] = [[] for _ in range(n_check)]
    # Assign data bits to codeword positions that are not powers of two.
    codeword_pos: List[int] = []
    pos = 1
    while len(codeword_pos) < n_data:
        if pos & (pos - 1):  # not a power of two
            codeword_pos.append(pos)
        pos += 1
    for d_idx, c_pos in enumerate(codeword_pos):
        for j in range(n_check):
            if (c_pos >> j) & 1:
                positions[j].append(d_idx)
    return positions


def sec_corrector(n_data: int = 32, name: str | None = None) -> Netlist:
    """Single-error corrector over ``n_data`` bits (C499-like).

    Inputs: data bits ``d*`` and received check bits ``p*``.  Outputs:
    corrected data bits.  A wrong check bit or a single flipped data bit
    is corrected; the circuit is dominated by XOR trees feeding a
    decoder, exactly the reconvergent structure of C499.
    """
    net = Netlist(name or f"sec{n_data}")
    data = vector_input(net, "d", n_data)
    groups = _parity_positions(n_data)
    checks = vector_input(net, "p", len(groups))
    syndrome: List[str] = []
    for j, members in enumerate(groups):
        recomputed = tree(net, "XOR", [data[k] for k in members], f"syn{j}")
        syndrome.append(g(net, "XOR", [recomputed, checks[j]], f"s{j}"))
    # Decode: data bit k is flipped iff the syndrome equals its position.
    codeword_pos: List[int] = []
    pos = 1
    while len(codeword_pos) < n_data:
        if pos & (pos - 1):
            codeword_pos.append(pos)
        pos += 1
    corrected: List[str] = []
    for k in range(n_data):
        hit = equals_const(net, syndrome, codeword_pos[k])
        corrected.append(g(net, "XOR", [data[k], hit], f"cor{k}"))
    net.set_pos(corrected)
    net.validate()
    return net


def c1355_like(n_data: int = 32, name: str = "c1355_like") -> Netlist:
    """The NAND-expanded twin: same function with XORs expanded into
    4-NAND cells (C1355 is exactly this expansion of C499)."""
    base = sec_corrector(n_data, name=name)
    expanded = Netlist(name)
    for pi in base.pis:
        expanded.add_pi(pi)
    mapping = {pi: pi for pi in base.pis}
    for out in base.topo_order():
        gate = base.gates[out]
        ins = [mapping[s] for s in gate.inputs]
        if gate.func.name == "XOR":
            n1 = g(expanded, "NAND", ins, f"{out}_n1")
            n2 = g(expanded, "NAND", [ins[0], n1], f"{out}_n2")
            n3 = g(expanded, "NAND", [ins[1], n1], f"{out}_n3")
            expanded.add_gate(out, "NAND", [n2, n3])
            mapping[out] = out
        else:
            expanded.add_gate(out, gate.func, ins)
            mapping[out] = out
    expanded.set_pos([mapping[po] for po in base.pos])
    expanded.validate()
    return expanded
