"""Named benchmark suite mapping the paper's Table 1/2 circuits to our
generated functional equivalents (see DESIGN.md §4 for the
substitution rationale)."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..netlist.netlist import Netlist
from .alu import alu4_like, alu181, priority_controller
from .arith import c880_like, z5xp1_like
from .control import (
    apex6_like, c5315_like, c7552_like, frg2_like, pair_like,
    random_control, rot_like, term1_like, vda_like, x3_like,
)
from .ecc import c1355_like, sec_corrector
from .multipliers import array_multiplier
from .parity import c1908_like
from .symmetric import nsym, nsym9

Generator = Callable[[], Netlist]

# Full-size stand-ins for the paper's Table 1 suite.
SUITE: Dict[str, Generator] = {
    "Z5xp1": z5xp1_like,
    "term1": term1_like,
    "9sym": nsym9,
    "C432": lambda: priority_controller(12, name="c432_like"),
    "C499": lambda: sec_corrector(32, name="c499_like"),
    "C1355": lambda: c1355_like(32),
    "C880": lambda: c880_like(8),
    "C1908": lambda: c1908_like(12),
    "vda": vda_like,
    "rot": rot_like,
    "alu4": alu4_like,
    "x3": x3_like,
    "apex6": apex6_like,
    "frg2": frg2_like,
    "pair": pair_like,
    "C5315": c5315_like,
    "C6288": lambda: array_multiplier(16, name="c6288_like"),
    "C7552": c7552_like,
}

# Reduced-size variants: same structures, pure-Python-friendly runtimes.
# (The paper's repro band flags the ATPG/implication engine as the
# bottleneck; these keep every benchmark row executable in CI.)
SMALL_SUITE: Dict[str, Generator] = {
    "Z5xp1": z5xp1_like,
    "term1": lambda: random_control(20, 120, 8, seed=101, locality=16,
                                    name="term1_small"),
    "9sym": nsym9,
    "C432": lambda: priority_controller(8, name="c432_small"),
    "C499": lambda: sec_corrector(16, name="c499_small"),
    "C1355": lambda: c1355_like(16, name="c1355_small"),
    "C880": lambda: c880_like(6, name="c880_small"),
    "C1908": lambda: c1908_like(8, name="c1908_small"),
    "vda": lambda: random_control(14, 160, 14, seed=505, locality=12,
                                  name="vda_small"),
    "rot": lambda: random_control(36, 150, 20, seed=606, locality=16,
                                  name="rot_small"),
    "alu4": lambda: alu181(4, name="alu4_small"),
    "x3": lambda: random_control(36, 160, 20, seed=303, locality=16,
                                 name="x3_small"),
    "apex6": lambda: random_control(36, 170, 20, seed=404, locality=14,
                                    name="apex6_small"),
    "frg2": lambda: random_control(40, 180, 22, seed=707, locality=14,
                                   name="frg2_small"),
    "pair": lambda: random_control(44, 210, 24, seed=808, locality=18,
                                   name="pair_small"),
    "C5315": lambda: random_control(44, 230, 22, seed=909, locality=18,
                                    name="c5315_small"),
    "C6288": lambda: array_multiplier(6, name="c6288_small"),
    "C7552": lambda: random_control(48, 260, 20, seed=7552, locality=18,
                                    name="c7552_small"),
}

# The Table-2 experiment uses the subset the paper lists.
TABLE2_NAMES: List[str] = [
    "Z5xp1", "term1", "9sym", "C432", "C499", "C1355", "C880", "C1908",
    "apex6", "rot", "frg2",
]


def build(name: str, small: bool = False) -> Netlist:
    """Instantiate one suite circuit by its paper name."""
    table = SMALL_SUITE if small else SUITE
    try:
        return table[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark circuit {name!r}") from None


def suite_names() -> List[str]:
    return list(SUITE)
