"""Shared bit-level construction helpers for the benchmark generators.

All builders operate on a :class:`~repro.netlist.netlist.Netlist` under
construction and deal in little-endian lists of signal names.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..netlist.netlist import Netlist, constant_signal


def fresh(net: Netlist, hint: str) -> str:
    return net.fresh_name(hint)


def g(net: Netlist, func: str, ins: Sequence[str], hint: str = "n") -> str:
    """Add a gate with a fresh name; returns the output signal."""
    return net.add_gate(net.fresh_name(hint), func, list(ins))


def half_adder(net: Netlist, a: str, b: str) -> Tuple[str, str]:
    """(sum, carry)."""
    return g(net, "XOR", [a, b], "ha_s"), g(net, "AND", [a, b], "ha_c")


def full_adder(net: Netlist, a: str, b: str, cin: str) -> Tuple[str, str]:
    """(sum, carry) — the classic 2-XOR / MAJ decomposition."""
    axb = g(net, "XOR", [a, b], "fa_x")
    s = g(net, "XOR", [axb, cin], "fa_s")
    t1 = g(net, "AND", [a, b], "fa_a")
    t2 = g(net, "AND", [axb, cin], "fa_b")
    c = g(net, "OR", [t1, t2], "fa_c")
    return s, c


def ripple_add(net: Netlist, a: Sequence[str], b: Sequence[str],
               cin: str | None = None) -> Tuple[List[str], str]:
    """Little-endian ripple-carry addition; returns (sum bits, carry out)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    sums: List[str] = []
    carry = cin
    for bit_a, bit_b in zip(a, b):
        if carry is None:
            s, carry = half_adder(net, bit_a, bit_b)
        else:
            s, carry = full_adder(net, bit_a, bit_b, carry)
        sums.append(s)
    return sums, carry


def vector_input(net: Netlist, prefix: str, width: int) -> List[str]:
    return [net.add_pi(f"{prefix}{k}") for k in range(width)]


def tree(net: Netlist, func: str, ins: Sequence[str], hint: str = "t") -> str:
    """Balanced tree of 2-input ``func`` gates."""
    layer = list(ins)
    if not layer:
        raise ValueError("empty operand list")
    while len(layer) > 1:
        nxt: List[str] = []
        for k in range(0, len(layer) - 1, 2):
            nxt.append(g(net, func, [layer[k], layer[k + 1]], hint))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def invert(net: Netlist, sig: str) -> str:
    return g(net, "INV", [sig], "inv")


def mux2(net: Netlist, sel: str, d1: str, d0: str) -> str:
    """``sel ? d1 : d0`` from primitive gates."""
    n_sel = invert(net, sel)
    t1 = g(net, "AND", [sel, d1], "mx")
    t0 = g(net, "AND", [n_sel, d0], "mx")
    return g(net, "OR", [t1, t0], "mx")


def equals_const(net: Netlist, bits: Sequence[str], value: int) -> str:
    """1 iff the little-endian vector equals ``value``."""
    lits = []
    for k, sig in enumerate(bits):
        lits.append(sig if (value >> k) & 1 else invert(net, sig))
    return tree(net, "AND", lits, "eq")


def popcount(net: Netlist, bits: Sequence[str]) -> List[str]:
    """Little-endian binary count of ones (CSA-style adder tree)."""
    queue: List[List[str]] = [[b] for b in bits]
    while len(queue) > 1:
        queue.sort(key=len)
        a = queue.pop(0)
        b = queue.pop(0)
        width = max(len(a), len(b))
        zero = constant_signal(net, 0)
        a = list(a) + [zero] * (width - len(a))
        b = list(b) + [zero] * (width - len(b))
        total, carry = ripple_add(net, a, b)
        queue.append(total + [carry])
    return queue[0]


def less_equal_const(net: Netlist, bits: Sequence[str], value: int) -> str:
    """1 iff vector <= value (unsigned)."""
    gt = greater_than_const(net, bits, value)
    return invert(net, gt)


def greater_than_const(net: Netlist, bits: Sequence[str], value: int) -> str:
    """1 iff vector > value (unsigned)."""
    terms: List[str] = []
    higher: List[str] = []  # condition "all higher bits equal"
    for k in reversed(range(len(bits))):
        bit_val = (value >> k) & 1
        if bit_val == 0:
            cond = [bits[k]] + higher
            terms.append(tree(net, "AND", cond, "gt") if len(cond) > 1
                         else cond[0])
            higher = higher + [invert(net, bits[k])]
        else:
            higher = higher + [bits[k]]
    if not terms:
        return constant_signal(net, 0)
    return tree(net, "OR", terms, "gt") if len(terms) > 1 else terms[0]
