"""Array multipliers — the C6288 stand-in.

C6288 is a 16x16 carry-save array multiplier and the classic stress
case for redundancy-oriented optimizers (the paper reduces its delay by
22%).  ``array_multiplier`` reproduces that structure at any width; the
benchmarks use reduced widths to keep pure-Python runtimes sane.
"""

from __future__ import annotations

from typing import List

from ..netlist.netlist import Netlist, constant_signal
from .builders import full_adder, g, half_adder, vector_input


def _nor_xor(net: Netlist, a: str, b: str):
    """XOR from NOR gates (the C6288 cell style).

    Returns (xor, xnor, nor_ab): the intermediate nodes reconverge into
    the carry logic, which is exactly where the ISCAS multiplier's
    redundancies live.
    """
    n1 = g(net, "NOR", [a, b], "nx1")
    n2 = g(net, "NOR", [a, n1], "nx2")
    n3 = g(net, "NOR", [b, n1], "nx3")
    xnor = g(net, "NOR", [n2, n3], "nx4")
    xor = g(net, "NOR", [xnor, n1], "nx5")
    return xor, xnor, n1


def _nor_full_adder(net: Netlist, a: str, b: str, c: str):
    """NOR-only full adder as used by the ISCAS-85 C6288 cells.

    ``cout = (a + b) & (XNOR(a,b) + c)`` — functionally ``ab + (a+b)c``
    but sharing the XNOR node with the sum path, the reconvergent
    encoding that makes C6288 redundancy-rich."""
    x, xnor_ab, nor_ab = _nor_xor(net, a, b)
    m1 = g(net, "NOR", [x, c], "nf1")
    m2 = g(net, "NOR", [x, m1], "nf2")
    m3 = g(net, "NOR", [c, m1], "nf3")
    s_xnor = g(net, "NOR", [m2, m3], "nf4")
    s = g(net, "NOR", [s_xnor, m1], "nf5")
    k1 = g(net, "NOR", [xnor_ab, c], "nf6")
    cout = g(net, "NOR", [nor_ab, k1], "nf7")
    return s, cout


def _nor_half_adder(net: Netlist, a: str, b: str):
    x, _xnor, _nor = _nor_xor(net, a, b)
    na = g(net, "NOR", [a, a], "nh1")
    nb = g(net, "NOR", [b, b], "nh2")
    cout = g(net, "NOR", [na, nb], "nh3")
    return x, cout


def array_multiplier(width: int = 8, name: str | None = None,
                     style: str = "nor") -> Netlist:
    """``width x width`` carry-save array multiplier (C6288 structure).

    ``style="nor"`` (default) builds each adder cell from NOR gates like
    the ISCAS-85 netlist — functionally identical but with the
    reconvergent cell structure whose redundancies GDO exploits;
    ``style="csa"`` uses clean XOR/MAJ full adders.
    """
    if style not in ("nor", "csa"):
        raise ValueError("style must be 'nor' or 'csa'")
    net = Netlist(name or f"mult{width}")
    fa = _nor_full_adder if style == "nor" else \
        (lambda n, a, b, c: full_adder(n, a, b, c))
    ha = _nor_half_adder if style == "nor" else \
        (lambda n, a, b: half_adder(n, a, b))
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    # partial products
    pp = [
        [g(net, "AND", [a[i], b[j]], f"pp{i}_{j}") for i in range(width)]
        for j in range(width)
    ]
    # carry-save reduction, row by row (the C6288 array shape)
    sums: List[str] = list(pp[0])
    carries: List[str] = []
    outputs: List[str] = []
    for j in range(1, width):
        outputs.append(sums[0])
        row = pp[j]
        new_sums: List[str] = []
        new_carries: List[str] = []
        for i in range(width):
            operand = sums[i + 1] if i + 1 < len(sums) else None
            carry_in = carries[i] if i < len(carries) else None
            terms = [row[i]]
            if operand is not None:
                terms.append(operand)
            if carry_in is not None:
                terms.append(carry_in)
            if len(terms) == 1:
                new_sums.append(terms[0])
                new_carries.append(constant_signal(net, 0))
            elif len(terms) == 2:
                s, c = ha(net, terms[0], terms[1])
                new_sums.append(s)
                new_carries.append(c)
            else:
                s, c = fa(net, terms[0], terms[1], terms[2])
                new_sums.append(s)
                new_carries.append(c)
        sums = new_sums
        carries = new_carries
    # final carry-propagate row
    zero = constant_signal(net, 0)
    final = []
    carry = None
    acc_a = sums[1:] + [zero]
    for bit_a, bit_b in zip(acc_a, carries):
        if carry is None:
            s, carry = ha(net, bit_a, bit_b)
        else:
            s, carry = fa(net, bit_a, bit_b, carry)
        final.append(s)
    cout = carry
    outputs.append(sums[0])
    outputs.extend(final)
    outputs.append(cout)
    net.set_pos(outputs[: 2 * width])
    net.validate()
    return net


def squarer(width: int = 6, name: str | None = None) -> Netlist:
    """``x*x`` via the array multiplier structure with shared operand —
    rich in redundancies (pp[i][j] == pp[j][i])."""
    net = array_multiplier(width, name=name or f"sqr{width}")
    # Tie the b inputs to the a inputs by rebuilding with shared PIs.
    shared = Netlist(name or f"sqr{width}")
    x = vector_input(shared, "x", width)
    rename = {f"a{k}": x[k] for k in range(width)}
    rename.update({f"b{k}": x[k] for k in range(width)})
    for out in net.topo_order():
        gate = net.gates[out]
        shared.add_gate(out, gate.func,
                        [rename.get(s, s) for s in gate.inputs])
    shared.set_pos([rename.get(po, po) for po in net.pos])
    shared.validate()
    return shared
