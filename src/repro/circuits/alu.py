"""Bit-sliced ALUs — the alu4/C880-class stand-ins.

``alu181`` follows the 74181 structure: per-slice generate/propagate
terms controlled by four select lines, a mode line switching between
logic and arithmetic, and a ripple carry chain — long reconvergent
paths through the carry chain make it a natural delay-optimization
target.
"""

from __future__ import annotations

from typing import List

from ..netlist.netlist import Netlist
from .builders import g, invert, tree, vector_input


def alu181(width: int = 8, name: str | None = None) -> Netlist:
    """74181-style ALU: ``width`` slices, 4 select lines, mode, carry."""
    net = Netlist(name or f"alu181_{width}")
    a = vector_input(net, "a", width)
    b = vector_input(net, "b", width)
    s = vector_input(net, "s", 4)
    mode = net.add_pi("m")          # 1 = logic, 0 = arithmetic
    cin = net.add_pi("cn")
    not_mode = invert(net, mode)
    sums: List[str] = []
    carry = cin
    for k in range(width):
        nb = invert(net, b[k])
        # 74181 internal terms (active-low flavour simplified):
        # p = a + (s0 & b) + (s1 & ~b)      (propagate-ish)
        # q = (s2 & ~b & a) + (s3 & b & a)  (generate-ish)
        t0 = g(net, "AND", [s[0], b[k]], "t0")
        t1 = g(net, "AND", [s[1], nb], "t1")
        p = tree(net, "OR", [a[k], t0, t1], "p")
        t2 = g(net, "AND", [s[2], nb, a[k]], "t2")
        t3 = g(net, "AND", [s[3], b[k], a[k]], "t3")
        q = g(net, "OR", [t2, t3], "q")
        # p ^ q: for the add select (s=1001) this is exactly a ^ b.
        half = g(net, "XOR", [p, q], "h")      # logic-mode function
        carry_gated = g(net, "AND", [carry, not_mode], "cg")
        sums.append(g(net, "XOR", [half, carry_gated], "f"))
        # carry = q + p & carry   (arithmetic chain)
        pc = g(net, "AND", [p, carry], "pc")
        carry = g(net, "OR", [q, pc], "cout")
    # group outputs: result bits, carry-out, A=B detector
    a_eq_b = tree(net, "AND", sums, "aeqb")
    net.set_pos(sums + [carry, a_eq_b])
    net.validate()
    return net


def alu4_like(name: str = "alu4_like") -> Netlist:
    """alu4 stand-in: an 8-bit 74181-style ALU (14 PIs, 10 POs)."""
    return alu181(8, name=name)


def priority_controller(width: int = 12, name: str | None = None) -> Netlist:
    """C432-flavoured interrupt/priority controller.

    Three request buses are masked and priority-resolved; outputs are
    per-channel grants plus bus-select lines — deep AND/OR cones with
    heavy reconvergence, like the ISCAS C432 channel selector.
    """
    net = Netlist(name or f"prio{width}")
    req_a = vector_input(net, "ra", width)
    req_b = vector_input(net, "rb", width)
    mask = vector_input(net, "mk", width)
    enable = net.add_pi("en")
    masked = [
        g(net, "AND", [g(net, "OR", [req_a[k], req_b[k]], "mr"), mask[k]], "mm")
        for k in range(width)
    ]
    # priority resolution: grant k iff masked[k] and no higher request
    grants: List[str] = []
    blockers: List[str] = []
    for k in range(width):
        terms = [masked[k], enable] + blockers
        grants.append(tree(net, "AND", terms, f"gr{k}"))
        blockers.append(invert(net, masked[k]))
    any_grant = tree(net, "OR", grants, "any")
    src_sel = [
        tree(net, "OR", [
            g(net, "AND", [grants[k], req_a[k]], "sa") for k in range(width)
        ], "sel0"),
        tree(net, "OR", [
            g(net, "AND", [grants[k], req_b[k]], "sb") for k in range(width)
        ], "sel1"),
    ]
    net.set_pos(grants + [any_grant] + src_sel)
    net.validate()
    return net
