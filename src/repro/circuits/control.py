"""Seeded random multi-level control logic.

Stand-ins for the MCNC control benchmarks (term1, x3, apex6, frg2, vda,
rot, pair, C5315).  Deep random AND/OR logic saturates to constants, so
the generator tracks an estimated signal probability for every net and
picks gate functions that keep probabilities away from 0 and 1 — the
result is deep, reconvergent, *live* control logic with the redundancy
profile GDO exploits, deterministic per seed.
"""

from __future__ import annotations

import random
from typing import List

from ..netlist.netlist import Netlist

# AND/OR-family dominated like real control logic; a sprinkle of XORs.
# (XOR-heavy random logic also makes CDCL equivalence checking blow up,
# which is unrepresentative of the MCNC control benchmarks.)
_FUNCS = ["AND", "OR", "NAND", "NOR"] * 2 + ["XOR", "XNOR"]


def _output_probability(func: str, probs: List[float]) -> float:
    if func in ("AND", "NAND"):
        p = 1.0
        for q in probs:
            p *= q
        return 1.0 - p if func == "NAND" else p
    if func in ("OR", "NOR"):
        p = 1.0
        for q in probs:
            p *= 1.0 - q
        return p if func == "NOR" else 1.0 - p
    # XOR / XNOR (2 inputs)
    p = probs[0] * (1 - probs[1]) + probs[1] * (1 - probs[0])
    return 1.0 - p if func == "XNOR" else p


def random_control(
    n_pi: int,
    n_gates: int,
    n_po: int,
    seed: int = 0,
    locality: int = 24,
    name: str | None = None,
) -> Netlist:
    """Random control-logic netlist.

    ``locality`` bounds how far back a gate may pick its fanins (small
    windows yield deep circuits with tight reconvergence); a fraction of
    fanins always comes from the PIs so entropy keeps flowing in.
    Outputs are drawn from the last third of the signal list so cones
    overlap.
    """
    rnd = random.Random(seed)
    net = Netlist(name or f"ctrl_s{seed}")
    sigs: List[str] = [net.add_pi(f"i{k}") for k in range(n_pi)]
    prob = {s: 0.5 for s in sigs}
    pis = list(sigs)
    for k in range(n_gates):
        window = sigs[-locality:]
        picks: List[str] = []
        nin = rnd.choice((2, 2, 2, 2, 3, 3, 4))
        for _ in range(nin):
            source = pis if rnd.random() < 0.25 else window
            picks.append(rnd.choice(source))
        picks = list(dict.fromkeys(picks))  # dedupe, keep order
        if len(picks) == 1:
            sigs.append(net.add_gate(f"g{k}", "INV", picks))
            prob[sigs[-1]] = 1.0 - prob[picks[0]]
            continue
        in_probs = [prob[s] for s in picks]
        candidates = _FUNCS if len(picks) == 2 else _FUNCS[:8]
        live = [
            f for f in candidates
            if 0.15 <= _output_probability(f, in_probs) <= 0.85
        ]
        func = rnd.choice(live) if live else (
            "XOR" if len(picks) == 2 else
            min(candidates,
                key=lambda f: abs(_output_probability(f, in_probs) - 0.5))
        )
        if func in ("XOR", "XNOR"):
            picks = picks[:2]
            in_probs = in_probs[:2]
        sigs.append(net.add_gate(f"g{k}", func, picks))
        prob[sigs[-1]] = _output_probability(func, in_probs)
    tail = sigs[-max(n_po * 2, len(sigs) // 3):]
    pos = rnd.sample(tail, min(n_po, len(tail)))
    net.set_pos(pos)
    net.validate()
    return net


def term1_like(name: str = "term1_like") -> Netlist:
    return random_control(34, 260, 10, seed=101, locality=20, name=name)


def x3_like(name: str = "x3_like") -> Netlist:
    return random_control(135, 900, 99, seed=303, locality=40, name=name)


def apex6_like(name: str = "apex6_like") -> Netlist:
    return random_control(135, 950, 99, seed=404, locality=36, name=name)


def vda_like(name: str = "vda_like") -> Netlist:
    return random_control(17, 900, 39, seed=505, locality=16, name=name)


def rot_like(name: str = "rot_like") -> Netlist:
    return random_control(135, 850, 107, seed=606, locality=30, name=name)


def frg2_like(name: str = "frg2_like") -> Netlist:
    return random_control(143, 1100, 139, seed=707, locality=28, name=name)


def pair_like(name: str = "pair_like") -> Netlist:
    return random_control(173, 1900, 137, seed=808, locality=44, name=name)


def c5315_like(name: str = "c5315_like") -> Netlist:
    return random_control(178, 2100, 123, seed=909, locality=48, name=name)


def c7552_like(name: str = "c7552_like") -> Netlist:
    return random_control(207, 2500, 108, seed=7552, locality=52, name=name)
