"""Parity trees and parity-checked datapaths (C1908-class stand-in)."""

from __future__ import annotations


from ..netlist.netlist import Netlist
from .builders import g, mux2, ripple_add, tree, vector_input


def parity_tree(n: int = 16, name: str | None = None) -> Netlist:
    """Balanced XOR parity tree."""
    net = Netlist(name or f"parity{n}")
    x = vector_input(net, "x", n)
    net.set_pos([tree(net, "XOR", x, "px")])
    net.validate()
    return net


def c1908_like(width: int = 12, name: str = "c1908_like") -> Netlist:
    """Parity-checked datapath (C1908 flavour: 16-bit SEC/arith mix).

    Data passes through an add/rotate stage; parities of input and
    output are compared, and an error flag conditions the outputs —
    producing the error-detecting reconvergence C1908 is built from.
    """
    net = Netlist(name)
    d = vector_input(net, "d", width)
    k = vector_input(net, "k", width)
    rot = net.add_pi("rot")
    pin = net.add_pi("pin")
    sums, cout = ripple_add(net, d, k)
    rotated = [mux2(net, rot, sums[(i + 1) % width], sums[i])
               for i in range(width)]
    in_par = tree(net, "XOR", d + [pin], "ip")
    out_par = tree(net, "XOR", rotated, "op")
    err = g(net, "XOR", [in_par, out_par], "err")
    guarded = [g(net, "AND", [bit, g(net, "INV", [err], "ne")], "gd")
               for bit in rotated]
    net.set_pos(guarded + [cout, err])
    net.validate()
    return net
