"""Symmetric functions — the 9sym stand-in.

9sym is the 9-input totally symmetric function that is 1 iff the input
weight lies in {3,4,5,6}.  Built as a popcount adder tree followed by
window comparators, which synthesizes into the same deep reconvergent
logic the MCNC benchmark is known for.
"""

from __future__ import annotations

from ..netlist.netlist import Netlist
from .builders import (
    g, greater_than_const, invert, popcount, tree, vector_input,
)


def nsym(n: int = 9, low: int = 3, high: int = 6,
         name: str | None = None) -> Netlist:
    """1 iff ``low <= popcount(x) <= high`` (9sym: n=9, low=3, high=6)."""
    if not (0 <= low <= high <= n):
        raise ValueError("need 0 <= low <= high <= n")
    net = Netlist(name or f"{n}sym")
    x = vector_input(net, "x", n)
    count = popcount(net, x)
    ge_low = greater_than_const(net, count, low - 1) if low > 0 else None
    le_high = invert(net, greater_than_const(net, count, high))
    if ge_low is None:
        out = le_high
    else:
        out = g(net, "AND", [ge_low, le_high], "sym")
    net.set_pos([out])
    net.validate()
    return net


def nsym9(name: str = "9sym_like") -> Netlist:
    return nsym(9, 3, 6, name=name)


def majority(n: int = 9, name: str | None = None) -> Netlist:
    """Majority-of-n via the same popcount structure."""
    net = Netlist(name or f"maj{n}")
    x = vector_input(net, "x", n)
    count = popcount(net, x)
    out = greater_than_const(net, count, n // 2)
    net.set_pos([out])
    net.validate()
    return net
