"""Benchmark circuit generators (the ISCAS/MCNC-like suite)."""

from .alu import alu181, alu4_like, priority_controller
from .arith import (
    c880_like, carry_select_adder, comparator, ripple_carry_adder, z5xp1_like,
)
from .control import (
    apex6_like, c5315_like, c7552_like, frg2_like, pair_like,
    random_control, rot_like, term1_like, vda_like, x3_like,
)
from .ecc import c1355_like, sec_corrector
from .multipliers import array_multiplier, squarer
from .parity import c1908_like, parity_tree
from .registry import SMALL_SUITE, SUITE, TABLE2_NAMES, build, suite_names
from .symmetric import majority, nsym, nsym9

__all__ = [
    "alu181", "alu4_like", "priority_controller",
    "c880_like", "carry_select_adder", "comparator", "ripple_carry_adder",
    "z5xp1_like", "apex6_like", "c5315_like", "c7552_like", "frg2_like",
    "pair_like",
    "random_control", "rot_like", "term1_like", "vda_like", "x3_like",
    "c1355_like", "sec_corrector", "array_multiplier", "squarer",
    "c1908_like", "parity_tree", "SMALL_SUITE", "SUITE", "TABLE2_NAMES",
    "build", "suite_names", "majority", "nsym", "nsym9",
]
