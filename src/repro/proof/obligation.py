"""Canonical proof obligations for PVCC validity.

One :class:`ProofObligation` captures everything a prover needs to
decide one substitution candidate: the affected-PO cones of the circuit
before and after the edit, rebased onto a name-independent canonical
signal numbering.  Two properties follow from the canonical form:

* the obligation is self-contained and cheap to pickle — a worker
  process reconstructs both cone netlists from the serialized tuples
  and never sees (or locks) the full netlist;
* the structural hash over the canonical form is a *sound* cache key:
  equal hashes mean equal canonical forms, and the backends prove the
  netlists rebuilt *from that form*, so the verdict — including budget
  exhaustion — is a pure function of the key.  Netlist edits invalidate
  cached verdicts implicitly: an edit that changes a cone changes its
  hash, so a stale entry can only stop being referenced, never be
  wrong.

The hash folds in the candidate's clause-combination signature (kind,
phase, form, mapped literals) on top of the two cones, per the paper's
framing that a PVCC — not just a circuit pair — is what gets proven.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..clauses.pvcc import Candidate
from ..netlist.netlist import Branch, Netlist
from ..netlist.traverse import extract_cone
from ..transform.substitution import affected_outputs

# (pi tokens, po tokens, ((gate token, func name, input tokens), ...))
SerializedCone = Tuple[
    Tuple[str, ...],
    Tuple[str, ...],
    Tuple[Tuple[str, str, Tuple[str, ...]], ...],
]


@dataclass(frozen=True)
class ProofObligation:
    """One deduplicable, picklable unit of proving work.

    ``key`` is the structural hash; ``left``/``right`` are the canonical
    pre-/post-edit cones; ``description`` is for humans only and is not
    part of the hash.
    """

    key: str
    left: SerializedCone
    right: SerializedCone
    description: str = ""

    def netlists(self) -> Tuple[Netlist, Netlist]:
        """Rebuild the two cone netlists from the canonical form."""
        return _build(self.left, "left"), _build(self.right, "right")


def _build(side: SerializedCone, name: str) -> Netlist:
    pis, pos, gates = side
    net = Netlist(name)
    for pi in pis:
        net.add_pi(pi)
    for out, func, ins in gates:
        net.add_gate(out, func, list(ins))
    net.set_pos(list(pos))
    return net


def align_interfaces(
    l_cone: Netlist, r_cone: Netlist, pi_order: Sequence[str]
) -> None:
    """Give both cones the identical PI list (union, in ``pi_order``)."""
    union = set(l_cone.pis) | set(r_cone.pis)
    all_pis = [pi for pi in pi_order if pi in union]
    for cone in (l_cone, r_cone):
        have = set(cone.pis)
        for pi in all_pis:
            if pi not in have:
                cone.add_pi(pi)
        cone.pis = list(all_pis)
        cone.invalidate()


def _canonical_side(
    cone: Netlist, pi_map: Dict[str, str]
) -> Tuple[SerializedCone, Dict[str, str]]:
    """Serialize one cone under a canonical renaming.

    Gate ids are assigned in deterministic DFS post-order from the POs
    (children before parents, input pins left to right); PI ids are
    assigned on first encounter and *shared* across the two sides via
    ``pi_map`` so the miter interface survives the renaming.
    """
    gate_map: Dict[str, str] = {}
    order: List[str] = []

    def pi_token(sig: str) -> str:
        if sig not in pi_map:
            pi_map[sig] = f"i{len(pi_map)}"
        return pi_map[sig]

    for po in cone.pos:
        stack: List[Tuple[str, bool]] = [(po, False)]
        while stack:
            sig, expanded = stack.pop()
            if cone.is_pi(sig):
                pi_token(sig)
                continue
            if expanded:
                if sig not in gate_map:
                    gate_map[sig] = f"g{len(gate_map)}"
                    order.append(sig)
                continue
            if sig in gate_map or sig not in cone.gates:
                continue
            stack.append((sig, True))
            for s in reversed(cone.gates[sig].inputs):
                stack.append((s, False))

    def token(sig: str) -> str:
        if cone.is_pi(sig):
            return pi_token(sig)
        return gate_map[sig]

    serialized: SerializedCone = (
        tuple(pi_token(pi) for pi in cone.pis),
        tuple(token(po) for po in cone.pos),
        tuple(
            (gate_map[out], cone.gates[out].func.name,
             tuple(token(s) for s in cone.gates[out].inputs))
            for out in order
        ),
    )
    return serialized, gate_map


def _clause_signature(
    cand: Candidate,
    pi_map: Dict[str, str],
    l_map: Dict[str, str],
    r_map: Dict[str, str],
) -> Tuple:
    """The candidate's clause-combination literals under the renaming."""

    def mapped(sig: str) -> str:
        return pi_map.get(sig) or r_map.get(sig) or l_map.get(sig) or sig

    if isinstance(cand.target, Branch):
        target = ("branch", mapped(cand.target.gate), cand.target.pin)
    else:
        target = ("stem", mapped(cand.target))
    return (
        cand.kind,
        cand.inverted,
        cand.form.name if cand.form is not None else "",
        target,
        tuple(mapped(s) for s in cand.sources),
    )


def build_obligation(
    l_cone: Netlist, r_cone: Netlist, cand: Candidate
) -> ProofObligation:
    """Obligation from two already-extracted, interface-aligned cones."""
    pi_map: Dict[str, str] = {}
    left, l_map = _canonical_side(l_cone, pi_map)
    right, r_map = _canonical_side(r_cone, pi_map)
    sig = _clause_signature(cand, pi_map, l_map, r_map)
    key = hashlib.sha256(repr((left, right, sig)).encode()).hexdigest()
    return ProofObligation(
        key=key, left=left, right=right, description=cand.describe(),
    )


def obligation_from_nets(
    original: Netlist, modified: Netlist, cand: Candidate
) -> Optional[ProofObligation]:
    """Obligation for proving ``modified`` (candidate already applied)
    equivalent to ``original`` on the affected POs.

    Returns ``None`` when no PO is affected — the edit is trivially
    permissible and needs no proof.
    """
    po_idx = affected_outputs(original, cand)
    if not po_idx:
        return None
    l_cone = extract_cone(
        original, [original.pos[i] for i in po_idx], "left")
    r_cone = extract_cone(
        modified, [modified.pos[i] for i in po_idx], "right")
    align_interfaces(l_cone, r_cone, original.pis)
    return build_obligation(l_cone, r_cone, cand)
