"""The proof broker: batched, deduplicated, parallel, cached proving.

GDO's wall-clock is dominated by PVCC validity proofs (the simulation
and timing engines are incremental since PR 1).  The broker turns that
serial prove-on-demand bottleneck into scheduled work:

* **dedupe** — obligations are keyed by the structural hash of their
  canonical cones; re-enumerated candidates and repeated passes never
  prove the same obligation twice;
* **cache** — verdicts live in an LRU (plus an optional persistent
  store for definitive verdicts), so warm reruns skip proving entirely;
* **batch + fan out** — a pass's top-ranked obligations are dispatched
  in one batch over a ``multiprocessing`` fork pool (``proof_workers``);
* **graceful degradation** — every attempt maps budget overflow to
  ``UNKNOWN`` and walks a deterministic fallback ladder (see
  :class:`~repro.proof.backends.LadderSpec`); an undecidable obligation
  drops its candidate, it never raises.

Verdicts are pure functions of the obligation key (the backends prove
netlists rebuilt from the canonical form, and budgets are part of the
broker's spec), so runs with ``workers=1`` and ``workers=N`` commit
identical modification sequences — the batch only changes *when* a
verdict is computed, never *what* it is.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional

from ..clauses.pvcc import Candidate
from ..faults import fault, register_point
from ..netlist.netlist import Netlist
from ..obs import NULL_JOURNAL, NULL_REGISTRY, NULL_TRACER
from .backends import LadderSpec, VALID, prove_serialized
from .cache import ProofCache
from .obligation import ProofObligation, obligation_from_nets

#: fault point: the worker pool breaks mid-dispatch, exercising the
#: broker's degrade-to-serial path without a real pool failure
FP_POOL_BREAK = register_point(
    "proof.pool.break",
    "proof worker pool breaks mid-dispatch (degrades to in-process "
    "serial proving)")


@dataclass
class ProofCounters:
    """Per-run accounting of the broker (surfaced by ``opt.report``)."""

    obligations: int = 0       # prove/prove_batch requests seen
    deduped: int = 0           # batch entries collapsed onto another key
    cache_hits: int = 0
    cache_misses: int = 0
    dispatched: int = 0        # obligations actually sent to a ladder
    parallel_batches: int = 0  # pool dispatches
    sat_valid: int = 0
    sat_invalid: int = 0
    sat_unknown: int = 0
    bdd_valid: int = 0
    bdd_invalid: int = 0
    bdd_unknown: int = 0
    retries: int = 0           # same-backend escalated-budget attempts
    fallbacks: int = 0         # cross-backend ladder steps
    timeouts: int = 0          # wall-clock expiries (if enabled)
    flaky: int = 0             # injected verdict amnesia (fault plane)
    unknown_final: int = 0     # obligations the whole ladder left open
    static_skips: int = 0      # obligations discharged by the static
    #                            refuter before ever reaching the broker

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge(self, other: "ProofCounters") -> None:
        for f in fields(self):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def absorb_tally(self, tally: Dict[str, int]) -> None:
        for name, count in tally.items():
            setattr(self, name, getattr(self, name) + count)


class ProofBroker:
    """Schedules PVCC proofs over cache, pool, and fallback ladder.

    A broker may outlive one optimizer run (that is how warm-cache
    reruns work); counters are therefore per-run: :meth:`begin_run`
    resets them and :meth:`take_counters` drains them into the run's
    stats.
    """

    def __init__(
        self,
        mode: str = "sat",
        workers: Optional[int] = None,
        max_conflicts: int = 30_000,
        bdd_max_nodes: int = 200_000,
        retry_factor: int = 4,
        timeout: Optional[float] = None,
        retry_delay: float = 0.0,
        retry_jitter: float = 0.5,
        cache_size: int = 4096,
        cache_path: Optional[str] = None,
        cache=None,
    ):
        if mode not in ("sat", "bdd", "auto", "none"):
            raise ValueError(f"unknown proof mode {mode!r}")
        self.mode = mode
        self.workers = workers if workers else (os.cpu_count() or 1)
        self.spec = LadderSpec(
            mode=mode if mode != "none" else "sat",
            max_conflicts=max_conflicts, bdd_max_nodes=bdd_max_nodes,
            retry_factor=retry_factor, timeout=timeout,
            retry_delay=retry_delay, retry_jitter=retry_jitter,
        )
        # ``cache`` injects a caller-owned verdict cache — the service
        # hands every worker a ShardedProofCache over one shared store;
        # by default the broker owns a private ProofCache.
        self.cache = cache if cache is not None else \
            ProofCache(max_entries=cache_size, path=cache_path)
        self.counters = ProofCounters()
        self._pool = None
        self._pool_broken = False
        #: lifetime count of pool breakages (degradations to serial) —
        #: not per-run: a broken pool stays broken, and the service
        #: surfaces this as the broker's degradation state
        self.pool_breaks = 0
        # Per-run observability, attached by EngineContext; defaults
        # are the shared no-op singletons so a bare broker stays silent.
        self._metrics = NULL_REGISTRY
        self._tracer = NULL_TRACER
        self._journal = NULL_JOURNAL

    def attach_obs(self, metrics=NULL_REGISTRY, tracer=NULL_TRACER,
                   journal=NULL_JOURNAL) -> None:
        """Point the broker at a run's observability (detach by calling
        with no arguments).  Only on-demand :meth:`prove` verdicts are
        journaled — the trial loop consumes them in deterministic
        candidate order in every worker configuration, whereas batch
        prefetches are a parallel-mode-only cache warmer."""
        self._metrics = metrics
        self._tracer = tracer
        self._journal = journal

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin_run(self) -> None:
        """Reset per-run counters (the cache survives across runs)."""
        self.counters = ProofCounters()

    def take_counters(self) -> ProofCounters:
        """Drain the per-run counters into the caller's stats."""
        counters = self.counters
        self.counters = ProofCounters()
        return counters

    def count_static_skip(self) -> None:
        """Record an obligation the static refuter discharged — the
        skip path: the broker never sees it, but its absence from
        ``obligations`` should be auditable, not silent."""
        self.counters.static_skips += 1

    def flush(self) -> None:
        self.cache.flush()

    def close(self) -> None:
        """Shut the worker pool down and persist the cache."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        self.flush()

    def __del__(self):  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # proving
    # ------------------------------------------------------------------
    def prove(self, original: Netlist, modified: Netlist,
              cand: Candidate) -> str:
        """Verdict for one candidate against the current netlists.

        Cache hit or in-process ladder — never raises; an undecided
        obligation comes back ``UNKNOWN`` and the caller drops it.
        """
        self.counters.obligations += 1
        if self.mode == "none":
            return VALID
        t0 = time.perf_counter()
        with self._tracer.span("proof.prove"):
            obligation = obligation_from_nets(original, modified, cand)
            if obligation is None:
                self._journal.record(
                    "verdict", obligation="", verdict=VALID,
                    cache_hit=False, wall_ms=0.0)
                return VALID
            cached = self.cache.get(obligation.key)
            if cached is not None:
                self.counters.cache_hits += 1
                self._metrics.counter("proof_verdicts",
                                      verdict=cached).inc()
                self._journal.record(
                    "verdict", obligation=obligation.key,
                    verdict=cached, cache_hit=True,
                    wall_ms=1e3 * (time.perf_counter() - t0))
                return cached
            self.counters.cache_misses += 1
            verdict = self._prove_miss(obligation)
        self._metrics.counter("proof_verdicts", verdict=verdict).inc()
        self._journal.record(
            "verdict", obligation=obligation.key, verdict=verdict,
            cache_hit=False, wall_ms=1e3 * (time.perf_counter() - t0))
        return verdict

    def prove_batch(
        self, obligations: Iterable[Optional[ProofObligation]]
    ) -> Dict[str, str]:
        """Prove a batch: dedupe by key, fan misses out, fill the cache.

        Returns the verdicts by key.  Order-insensitive by design — the
        caller consumes verdicts in its own deterministic candidate
        order via :meth:`prove` / the cache.
        """
        verdicts: Dict[str, str] = {}
        if self.mode == "none":
            return verdicts
        misses: List[ProofObligation] = []
        seen = set()
        for ob in obligations:
            if ob is None:
                continue
            self.counters.obligations += 1
            if ob.key in seen:
                self.counters.deduped += 1
                continue
            seen.add(ob.key)
            cached = self.cache.get(ob.key)
            if cached is not None:
                self.counters.cache_hits += 1
                verdicts[ob.key] = cached
                continue
            self.counters.cache_misses += 1
            misses.append(ob)
        if not misses:
            return verdicts
        self._metrics.histogram(
            "proof_batch_size", buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(len(misses))
        t0 = time.perf_counter()
        with self._tracer.span("proof.batch", size=len(misses)):
            results = self._dispatch(misses)
        # Queue wait ≈ batch wall over obligations: how long an average
        # obligation sat in the dispatch before its verdict landed.
        wall = time.perf_counter() - t0
        self._metrics.histogram("proof_queue_wait_seconds") \
            .observe(wall / max(1, len(misses)))
        for key, verdict, tally, worker_metrics in results:
            self.counters.dispatched += 1
            self.counters.absorb_tally(tally)
            self._metrics.merge_snapshot(worker_metrics)
            self.cache.put(key, verdict)
            verdicts[key] = verdict
        return verdicts

    # ------------------------------------------------------------------
    def _prove_miss(self, obligation: ProofObligation) -> str:
        key, verdict, tally, worker_metrics = prove_serialized(
            self._job(obligation))
        self.counters.dispatched += 1
        self.counters.absorb_tally(tally)
        self._metrics.merge_snapshot(worker_metrics)
        self.cache.put(key, verdict)
        return verdict

    def _job(self, ob: ProofObligation):
        return (ob.key, ob.left, ob.right, self.spec)

    def _dispatch(self, misses: List[ProofObligation]):
        jobs = [self._job(ob) for ob in misses]
        pool = self._ensure_pool() if len(jobs) > 1 else None
        if pool is None:
            return [prove_serialized(job) for job in jobs]
        try:
            if fault(FP_POOL_BREAK):
                raise RuntimeError("injected proof pool break")
            chunk = max(1, len(jobs) // (self.workers * 4))
            results = pool.map(prove_serialized, jobs, chunksize=chunk)
            self.counters.parallel_batches += 1
            return results
        except Exception:
            # A broken pool (pickling, interpreter teardown, resource
            # limits) degrades to in-process proving, never to a crash.
            self._pool_broken = True
            self.pool_breaks += 1
            self._metrics.counter("proof_pool_breaks").inc()
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
            self._pool = None
            return [prove_serialized(job) for job in jobs]

    def _ensure_pool(self):
        if self.workers <= 1 or self._pool_broken:
            return None
        if self._pool is None:
            try:
                import multiprocessing

                ctx = multiprocessing.get_context("fork")
                self._pool = ctx.Pool(processes=self.workers)
            except (ImportError, OSError, ValueError):
                self._pool_broken = True
                return None
        return self._pool
