"""Uniform proving backends over the SAT miter and the BDD engine.

Every backend call returns one of three verdicts instead of raising:

* ``VALID``   — the obligation's two cones are equivalent,
* ``INVALID`` — a distinguishing vector exists (the PVCC is refuted),
* ``UNKNOWN`` — the per-call budget (CDCL conflicts, BDD nodes, or the
  optional wall-clock timeout) ran out before a verdict.

``prove_serialized`` runs a whole *fallback ladder* for one obligation
— primary backend at base budget, retry at an escalated budget, then
the other backend — and is the unit of work shipped to pool workers.
The cones are rebuilt from the obligation's canonical form, so the
verdict (budget behaviour included, timeouts excluded) is a pure
function of the obligation key: parallel and serial runs agree.
"""

from __future__ import annotations

import random
import signal
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bdd.bdd import BddBudgetExceeded
from ..bdd.circuit_bdd import bdd_equivalent
from ..faults import fault, fault_arg, register_point
from ..netlist.netlist import Netlist
from ..sat.miter import miter_equivalent
from ..sat.solver import SolverBudgetExceeded

VALID = "valid"
INVALID = "invalid"
UNKNOWN = "unknown"

#: fault points of the proving ladder (DESIGN.md §11).  All three are
#: *fail-safe* by construction: a backend under fault only loses time
#: or returns UNKNOWN (dropping a candidate) — it never asserts a wrong
#: verdict, so injected faults cannot corrupt results.
FP_BACKEND_TIMEOUT = register_point(
    "proof.backend.timeout",
    "one ladder attempt expires as if its wall-clock budget ran out")
FP_BACKEND_FLAKY = register_point(
    "proof.backend.flaky",
    "one ladder attempt forgets its verdict and reports UNKNOWN")
FP_BACKEND_SLOW = register_point(
    "proof.backend.slow",
    "one ladder attempt takes `arg` extra seconds before answering")


@dataclass(frozen=True)
class LadderSpec:
    """Budgets and ordering of one proving ladder (picklable)."""

    mode: str = "sat"              # "sat" | "bdd" | "auto"
    max_conflicts: int = 30_000
    bdd_max_nodes: int = 200_000
    retry_factor: int = 4          # escalated-budget multiplier
    timeout: Optional[float] = None  # per-attempt wall clock; None = off
    #: base pause before a retry/fallback rung (0 = no pause).  Spreads
    #: retry herds out in time when many pool workers hit budget
    #: exhaustion together; purely temporal — verdicts are unaffected.
    retry_delay: float = 0.0
    #: jitter fraction on ``retry_delay``, drawn from an RNG seeded by
    #: (obligation key, attempt) — reproducible, and de-correlated
    #: across obligations so workers never re-synchronize.
    retry_jitter: float = 0.5

    def retry_pause(self, key: str, attempt: int) -> float:
        """The pause before ladder rung ``attempt`` (0 for the first)."""
        if attempt <= 0 or self.retry_delay <= 0.0:
            return 0.0
        rng = random.Random(f"ladder:{key}:{attempt}")
        return self.retry_delay * (1.0 + self.retry_jitter * rng.random())

    def rungs(self) -> List[Tuple[str, int]]:
        """The ``(backend, budget)`` attempts, in order."""
        c, n, f = self.max_conflicts, self.bdd_max_nodes, self.retry_factor
        if self.mode == "sat":
            return [("sat", c), ("sat", c * f), ("bdd", n)]
        if self.mode == "bdd":
            return [("bdd", n), ("bdd", n * f), ("sat", c)]
        if self.mode == "auto":
            # The paper's observation: BDDs win on small/medium cones,
            # ATPG-style SAT scales further — so BDD first, SAT after.
            return [("bdd", n), ("sat", c), ("sat", c * f)]
        raise ValueError(f"unknown proof mode {self.mode!r}")


class ProofTimeout(Exception):
    """The wall-clock budget of one attempt expired."""


def _run_with_timeout(fn, seconds: Optional[float]):
    """Run ``fn`` under SIGALRM when a timeout is set and usable.

    Wall-clock timeouts are inherently nondeterministic; they default
    to off and are only armed in a main thread on platforms with
    ``SIGALRM`` (pool workers qualify — each child's ladder runs in its
    main thread).
    """
    if not seconds or not hasattr(signal, "SIGALRM") or \
            threading.current_thread() is not threading.main_thread():
        return fn()

    def _raise(signum, frame):
        raise ProofTimeout()

    old = signal.signal(signal.SIGALRM, _raise)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def sat_verdict(left: Netlist, right: Netlist,
                max_conflicts: Optional[int]) -> str:
    """SAT-miter verdict with the conflict budget mapped to UNKNOWN."""
    try:
        equal = miter_equivalent(left, right, max_conflicts=max_conflicts)
    except SolverBudgetExceeded:
        return UNKNOWN
    return VALID if equal else INVALID


def bdd_verdict(left: Netlist, right: Netlist, max_nodes: int) -> str:
    """BDD verdict with the node budget mapped to UNKNOWN."""
    try:
        equal = bdd_equivalent(left, right, max_nodes=max_nodes)
    except BddBudgetExceeded:
        return UNKNOWN
    return VALID if equal else INVALID


def prove_pair(left: Netlist, right: Netlist, backend: str,
               budget: int) -> str:
    if backend == "sat":
        return sat_verdict(left, right, budget)
    if backend == "bdd":
        return bdd_verdict(left, right, budget)
    raise ValueError(f"unknown proof backend {backend!r}")


def prove_serialized(job) -> Tuple[str, str, Dict[str, int], dict]:
    """Pool-worker entry point: run the ladder for one obligation.

    ``job`` is ``(key, left, right, spec)`` with the serialized cones of
    :class:`~repro.proof.obligation.ProofObligation`.  Returns the key,
    the final verdict, a tally of per-backend outcomes / retries /
    fallbacks / timeouts for the broker's counters, and a mergeable
    metrics snapshot (per-backend attempt latency histograms) that the
    broker folds into the run's registry — how worker processes ship
    their observability back through the pool.
    """
    import time

    from ..obs.metrics import MetricsRegistry

    key, left_ser, right_ser, spec = job
    from .obligation import ProofObligation

    ob = ProofObligation(key=key, left=left_ser, right=right_ser)
    left, right = ob.netlists()
    tally: Dict[str, int] = {}
    metrics = MetricsRegistry()

    def bump(name: str) -> None:
        tally[name] = tally.get(name, 0) + 1

    rungs = spec.rungs()
    verdict = UNKNOWN
    for attempt, (backend, budget) in enumerate(rungs):
        pause = spec.retry_pause(key, attempt)
        if pause > 0.0:
            time.sleep(pause)
        slow = fault_arg(FP_BACKEND_SLOW)
        if slow is not None:
            time.sleep(slow)
        t0 = time.perf_counter()
        try:
            if fault(FP_BACKEND_TIMEOUT):
                raise ProofTimeout()
            verdict = _run_with_timeout(
                lambda: prove_pair(left, right, backend, budget),
                spec.timeout,
            )
        except ProofTimeout:
            bump("timeouts")
            verdict = UNKNOWN
        if verdict != UNKNOWN and fault(FP_BACKEND_FLAKY):
            # Fail-safe lie: the backend "forgets" — UNKNOWN walks the
            # ladder / drops the candidate, it never flips a verdict.
            bump("flaky")
            verdict = UNKNOWN
        metrics.histogram("proof_attempt_seconds", backend=backend) \
            .observe(time.perf_counter() - t0)
        metrics.counter("proof_attempts", backend=backend,
                        verdict=verdict).inc()
        bump(f"{backend}_{verdict}")
        if verdict != UNKNOWN:
            break
        if attempt + 1 < len(rungs):
            # Advance the ladder: same backend again is a retry with an
            # escalated budget, a different backend is a fallback.
            nxt = rungs[attempt + 1][0]
            bump("retries" if nxt == backend else "fallbacks")
    else:
        bump("unknown_final")
    return key, verdict, tally, metrics.snapshot()
