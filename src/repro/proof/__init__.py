"""Batched, cached, multi-backend proving of PVCC obligations."""

from .backends import (
    INVALID, LadderSpec, UNKNOWN, VALID, bdd_verdict, prove_pair,
    prove_serialized, sat_verdict,
)
from .broker import ProofBroker, ProofCounters
from .cache import ProofCache
from .obligation import (
    ProofObligation, align_interfaces, build_obligation,
    obligation_from_nets,
)

__all__ = [
    "INVALID", "LadderSpec", "UNKNOWN", "VALID", "bdd_verdict",
    "prove_pair", "prove_serialized", "sat_verdict",
    "ProofBroker", "ProofCounters", "ProofCache",
    "ProofObligation", "align_interfaces", "build_obligation",
    "obligation_from_nets",
]
