"""Verdict caches keyed by obligation structural hash.

Two layers:

* an in-memory LRU holding *all* verdicts of the current process —
  within one process the ladder budgets are fixed, so even ``unknown``
  is a sound memo;
* an optional on-disk JSON store holding only the *definitive* verdicts
  (``valid`` / ``invalid``).  Definitive verdicts are independent of
  the budget ladder that produced them, so they transfer across runs
  and across configurations; ``unknown`` does not (a later run with a
  bigger budget may decide it) and is never persisted.

Invalidation needs no bookkeeping: keys are content hashes of the
canonical cones (see :mod:`repro.proof.obligation`), so a netlist edit
that changes a cone changes the key, and stale entries simply stop
being referenced until the LRU evicts them.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Optional

from .backends import INVALID, VALID


class ProofCache:
    """LRU verdict memo with an optional persistent JSON mirror."""

    def __init__(self, max_entries: int = 4096,
                 path: Optional[str] = None):
        self.max_entries = max(1, max_entries)
        self.path = path
        self._mem: "OrderedDict[str, str]" = OrderedDict()
        self._disk: Dict[str, str] = {}
        self._disk_dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
                self._disk = {
                    k: v for k, v in data.items() if v in (VALID, INVALID)
                }
            except (OSError, ValueError):
                self._disk = {}

    def __len__(self) -> int:
        return len(self._mem)

    def get(self, key: str) -> Optional[str]:
        """The cached verdict, or ``None`` on a miss."""
        verdict = self._mem.get(key)
        if verdict is not None:
            self._mem.move_to_end(key)
            return verdict
        verdict = self._disk.get(key)
        if verdict is not None:
            # Promote so later hits stay in memory.
            self._put_mem(key, verdict)
        return verdict

    def put(self, key: str, verdict: str) -> None:
        self._put_mem(key, verdict)
        if self.path is not None and verdict in (VALID, INVALID) and \
                self._disk.get(key) != verdict:
            self._disk[key] = verdict
            self._disk_dirty = True

    def _put_mem(self, key: str, verdict: str) -> None:
        self._mem[key] = verdict
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def flush(self) -> None:
        """Write the persistent mirror atomically (tmp file + rename)."""
        if self.path is None or not self._disk_dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self._disk, fh)
            os.replace(tmp, self.path)
            self._disk_dirty = False
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
