"""Verdict caches keyed by obligation structural hash.

Two layers:

* an in-memory LRU holding *all* verdicts of the current process —
  within one process the ladder budgets are fixed, so even ``unknown``
  is a sound memo;
* an optional on-disk JSON store holding only the *definitive* verdicts
  (``valid`` / ``invalid``).  Definitive verdicts are independent of
  the budget ladder that produced them, so they transfer across runs
  and across configurations; ``unknown`` does not (a later run with a
  bigger budget may decide it) and is never persisted.

Invalidation needs no bookkeeping: keys are content hashes of the
canonical cones (see :mod:`repro.proof.obligation`), so a netlist edit
that changes a cone changes the key, and stale entries simply stop
being referenced until the LRU evicts them.

``flush`` *merges* with the file's current contents under an advisory
lock before writing: two processes sharing one ``proof_cache_path``
each contribute their verdicts instead of the last writer clobbering
the other's (verdicts are pure functions of the key, so a merge can
never conflict).  The single-JSON mirror remains the compatibility
shim; the service's sharded store
(:mod:`repro.service.store`) is the concurrent-first replacement.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from collections import OrderedDict
from typing import Dict, Iterator, Optional

from .backends import INVALID, VALID


def _read_definitive(path: str) -> Dict[str, str]:
    """The definitive verdicts in a mirror file (empty on any damage)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict):
        return {}
    return {k: v for k, v in data.items() if v in (VALID, INVALID)}


@contextlib.contextmanager
def _flush_lock(path: str) -> Iterator[None]:
    """Advisory exclusive lock serializing flushes on one mirror file.

    Best-effort: platforms without ``fcntl`` (or unlockable filesystems)
    fall back to unlocked merge-then-rename, which still never *drops*
    this process's verdicts — concurrent flushers may then race on each
    other's, the pre-fix behaviour, instead of corrupting the file.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = path + ".lock"
    try:
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:  # pragma: no cover - unwritable directory
        yield
        return
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - e.g. NFS without locks
            pass
        yield
    finally:
        os.close(fd)


class ProofCache:
    """LRU verdict memo with an optional persistent JSON mirror."""

    def __init__(self, max_entries: int = 4096,
                 path: Optional[str] = None):
        self.max_entries = max(1, max_entries)
        self.path = path
        self._mem: "OrderedDict[str, str]" = OrderedDict()
        self._disk: Dict[str, str] = {}
        self._disk_dirty = False
        if path is not None and os.path.exists(path):
            self._disk = _read_definitive(path)

    def __len__(self) -> int:
        return len(self._mem)

    def get(self, key: str) -> Optional[str]:
        """The cached verdict, or ``None`` on a miss."""
        verdict = self._mem.get(key)
        if verdict is not None:
            self._mem.move_to_end(key)
            return verdict
        verdict = self._disk.get(key)
        if verdict is not None:
            # Promote so later hits stay in memory.
            self._put_mem(key, verdict)
        return verdict

    def put(self, key: str, verdict: str) -> None:
        self._put_mem(key, verdict)
        if self.path is not None and verdict in (VALID, INVALID) and \
                self._disk.get(key) != verdict:
            self._disk[key] = verdict
            self._disk_dirty = True

    def _put_mem(self, key: str, verdict: str) -> None:
        self._mem[key] = verdict
        self._mem.move_to_end(key)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    def flush(self) -> None:
        """Merge this process's verdicts into the mirror atomically.

        Read-merge-write under :func:`_flush_lock`, then tmp + rename:
        verdicts flushed by other processes since our load are folded in
        rather than overwritten, and readers never see a torn file.
        """
        if self.path is None or not self._disk_dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with _flush_lock(self.path):
            merged = _read_definitive(self.path)
            merged.update(self._disk)
            self._disk = merged
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(merged, fh)
                os.replace(tmp, self.path)
                self._disk_dirty = False
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
