"""Journal-guided replay: resume a GDO run from its decision trail.

GDO is deterministic given (netlist, config, seed): re-executing a
crashed run makes the *identical* decision sequence.  Resuming from the
last committed substitution therefore does not need a state checkpoint —
it needs the expensive oracles answered from the journal instead of
recomputed.  :class:`ReplayCursor` wraps the journal prefix up to the
last ``commit`` record and supplies, in order:

* **refutation outcomes** (``refute`` records) — the per-candidate
  random-vector filter, normally a cone resimulation;
* **proof verdicts** (``verdict`` records) — normally an obligation
  extraction (O(net) copy) plus a broker dispatch.  Each journaled
  commit was individually proven before the crash, so the journal is a
  valid proof certificate for its own prefix.

Everything else — enumeration, trial edits, timing refreshes, static
classification — *is* re-executed: it is the cheap incremental part,
and re-executing it reconstructs the exact in-memory state (seed
stream, rejected-set, pass positions) the live continuation needs.
The resumed run re-emits the journal from seq 0, so a resumed journal
and an uninterrupted journal are comparable end to end (modulo
:data:`~repro.obs.journal.VOLATILE_FIELDS`).

Replay cross-checks every ``static`` and ``refute`` record against the
recomputed candidate description; a mismatch means the journal does not
belong to this (netlist, config, seed) and raises
:class:`ReplayDivergence` — the caller falls back to a fresh run, which
is always sound (and still warm: verdicts live in the shared store).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional


class ReplayDivergence(RuntimeError):
    """The journal's decisions do not match the re-executed run."""


def committed_prefix(records: List[dict]) -> Optional[List[dict]]:
    """The resumable prefix: records up to the last ``commit``.

    Everything after the last commit is uncommitted work the resumed
    run redoes live (its proofs are warm in the shared store anyway).
    ``None`` when the journal holds no commit — resuming would replay
    nothing, so the caller should just rerun from scratch.
    """
    last = None
    for i, rec in enumerate(records):
        if rec.get("type") == "commit":
            last = i
    if last is None:
        return None
    return records[: last + 1]


class ReplayCursor:
    """Ordered oracle queues over one journal prefix.

    The runner consumes ``refute``/``verdict`` outcomes through
    :meth:`refute` / :meth:`verdict` while re-executing everything
    else; when the queues drain the run continues live, seamlessly —
    the prefix ends at a commit boundary, so no epoch state straddles
    the transition.
    """

    def __init__(self, records: List[dict]):
        self._statics: Deque[dict] = deque(
            r for r in records if r.get("type") == "static")
        self._refutes: Deque[dict] = deque(
            r for r in records if r.get("type") == "refute")
        self._verdicts: Deque[dict] = deque(
            r for r in records if r.get("type") == "verdict")
        self.commits = sum(
            1 for r in records if r.get("type") == "commit")

    @property
    def active(self) -> bool:
        """Oracle records remain — prefetching is pointless and the
        expensive paths should keep consulting the journal."""
        return bool(self._statics or self._refutes or self._verdicts)

    def has_refute(self) -> bool:
        """Whether the *next* refutation outcome comes from the journal
        (decides if the epoch-base simulation can be skipped)."""
        return bool(self._refutes)

    # ------------------------------------------------------------------
    def static_check(self, desc: str, verdict: str) -> None:
        """Cross-check a recomputed static verdict against the journal.

        Static classification is a pure function of the netlist and is
        always recomputed; the journal record is only used to detect
        divergence as early as possible.
        """
        if not self._statics:
            return
        rec = self._statics.popleft()
        if rec.get("desc") != desc or rec.get("verdict") != verdict:
            raise ReplayDivergence(
                f"static record {rec!r} != recomputed "
                f"({desc!r}, {verdict!r})")

    def refute(self, desc: str) -> Optional[bool]:
        """The journaled refutation outcome for the next candidate, or
        ``None`` once the journal is exhausted (compute live)."""
        if not self._refutes:
            return None
        rec = self._refutes.popleft()
        if rec.get("desc") != desc:
            raise ReplayDivergence(
                f"refute record {rec!r} is not for candidate {desc!r}")
        refuted = rec.get("refuted")
        if not isinstance(refuted, bool):
            raise ReplayDivergence(f"malformed refute record {rec!r}")
        return refuted

    def verdict(self) -> Optional[dict]:
        """The journaled proof verdict record for the next proof, or
        ``None`` once the journal is exhausted (prove live)."""
        if not self._verdicts:
            return None
        rec = self._verdicts.popleft()
        if not isinstance(rec.get("verdict"), str):
            raise ReplayDivergence(f"malformed verdict record {rec!r}")
        return rec
