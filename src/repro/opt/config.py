"""Configuration for the GDO optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..obs import ObsConfig, ObsSnapshot
from ..proof.broker import ProofCounters


@dataclass
class GdoConfig:
    """Tuning knobs of :func:`repro.opt.gdo.gdo_optimize`.

    Defaults follow the paper's setup where it is described: random BPFS
    vectors, C2 substitutions before C3, critical gates only in the delay
    phase, area phase afterwards with periodic returns to the delay
    phase, XOR forms enabled (``mcnc_like`` has XOR cells).
    """

    # --- simulation (BPFS) ---
    n_words: int = 16          # 64 vectors per word
    seed: int = 0

    # --- engine ---
    # Maintain timing/simulation state across modifications with
    # dirty-cone refreshes instead of from-scratch rebuilds.  Both
    # settings compute identical results (same mod sequence, same final
    # delay/area); see DESIGN.md "Incremental engine".
    incremental: bool = True
    # Run full simulations, BPFS observability batches, and from-scratch
    # timing sweeps on the levelized flat-array kernels (repro.flat;
    # DESIGN.md §9).  Bitwise-identical to the dict engine, so journals
    # and commit sequences are unchanged; unsupported structures fall
    # back to the dict path per call (counted in engine.flat_fallbacks).
    flat: bool = True

    # --- candidate enumeration ---
    include_xor: bool = True
    use_c2_reduction: bool = True
    allow_inverted: bool = True
    max_pool: int = 48         # b/c-source pool cap per target
    level_skew: Optional[int] = None  # structural filter; None = off
    max_targets_per_pass: int = 24
    max_mods_per_pass: int = 8  # "several modifications per simulation"
    max_candidates_per_target: int = 16
    max_trials_per_pass: int = 96  # trial-apply budget per pass

    # --- proof backend ---
    proof: str = "sat"         # "sat" | "bdd" | "auto" | "none"
    max_conflicts: int = 30_000  # per-proof CDCL budget; abort = UNKNOWN
    bdd_max_nodes: int = 200_000
    max_proofs_per_pass: int = 64

    # --- proof broker (see repro.proof and DESIGN.md §6) ---
    # Worker processes for batched proving; None = os.cpu_count().
    # Verdicts are pure functions of the obligation, so any worker
    # count commits the identical modification sequence.
    proof_workers: Optional[int] = None
    # Top-ranked candidates whose obligations are proven in one batch
    # before the trial loop (only when workers > 1); None = twice
    # max_mods_per_pass.
    proof_prefetch: Optional[int] = None
    # Escalated-budget multiplier for the retry rung of the ladder.
    proof_retry_factor: int = 4
    # Per-attempt wall-clock timeout in seconds.  None (the default)
    # keeps proving fully deterministic; a finite timeout trades that
    # determinism for bounded latency on pathological obligations.
    proof_timeout: Optional[float] = None
    # Base pause (seconds) before retry/fallback rungs of the ladder,
    # with seeded jitter (fraction) so retry herds across pool workers
    # de-synchronize.  0 (the default) = no pause.  Purely temporal —
    # verdicts and the modification sequence are unaffected.
    proof_retry_delay: float = 0.0
    proof_retry_jitter: float = 0.5
    # Verdict LRU entries, and an optional JSON file persisting the
    # definitive (valid/invalid) verdicts across runs.
    proof_cache_size: int = 4096
    proof_cache_path: Optional[str] = None
    # Root of a sharded verdict store (repro.service.store) shared by
    # concurrent clients; takes precedence over proof_cache_path.  The
    # optimization service sets this for every worker so proof work is
    # shared across jobs, runs, and client processes.
    proof_store_path: Optional[str] = None
    # Re-tail the store's shard on a cache miss, picking up verdicts
    # other clients appended since the last look (cross-client hits).
    proof_store_refresh: bool = True

    # --- static analysis (see repro.analysis and DESIGN.md §8) ---
    # Invariant checking of the live netlist during the run:
    #   "off"      — never check (hard no-op fast path);
    #   "commits"  — dirty-region check after every committed
    #                modification (<5% overhead);
    #   "paranoid" — additionally after every trial edit and undo.
    # Violations raise repro.analysis.InvariantViolation immediately.
    check: str = "off"
    # Check every Nth eligible event (1 = all); sampling keeps paranoid
    # mode affordable on long runs while still catching drift.
    check_sample: int = 1
    # Static prove/refute funnel stage before BPFS: candidates whose
    # clause combination is implication-covered skip the proof broker,
    # statically refuted candidates skip the trial entirely.  Pure
    # function of the netlist, so serial == parallel determinism holds.
    # Inactive when proof == "none" (nothing to discharge).
    static_funnel: bool = True

    # --- observability (see repro.obs and DESIGN.md §7) ---
    # Default: metrics on, span tracing and the JSONL journal off.
    # Disabled pieces are hard no-ops (<2% overhead, asserted by
    # tests/obs/test_trace.py); journal records are deterministic
    # modulo repro.obs.journal.VOLATILE_FIELDS, so observability never
    # perturbs the modification sequence.
    obs: ObsConfig = field(default_factory=ObsConfig)

    # --- partitioned parallel GDO (repro.partition, DESIGN.md §12) ---
    # Worker processes for region-parallel optimization of one netlist;
    # 0 (the default) keeps the serial trial loop.  The partition plan
    # is fixed by partition_regions — never by the worker count — and
    # regions merge in canonical index order, so workers=1 and
    # workers=N produce identical netlists and journals.
    partition_workers: int = 0
    # Dominator-cone regions the partitioner cuts the netlist into.
    partition_regions: int = 4
    # Merge rounds before regions still re-queued by conflicts are
    # abandoned (their unmerged results are discarded, the master
    # netlist stays proven-equivalent).
    partition_max_rounds: int = 4
    # Netlists below this gate count are not worth cutting: the
    # partitioned path collapses to one region (serial semantics with
    # the partition journal envelope).
    partition_min_gates: int = 64

    # --- phases ---
    area_phase: bool = True
    area_mods_before_retry: int = 5
    max_rounds: int = 400
    max_passes_per_phase: int = 40  # safety cap against tie ping-pong
    max_seconds: Optional[float] = None  # wall-clock budget (None = off)

    # --- timing model ---
    po_load: float = 1.0
    eps: float = 1e-6
    # Equal-delay modifications must reduce the total PO arrival by at
    # least this much (absolute) — prevents epsilon-churn on ties.
    secondary_gain: float = 0.05

    # --- safety ---
    verify_final: bool = True
    verify_words: int = 32

    def make_broker(self):
        """A :class:`~repro.proof.broker.ProofBroker` for this config
        (``None`` in ``proof="none"`` mode — nothing is ever proven)."""
        if self.proof == "none":
            return None
        from ..proof.broker import ProofBroker

        cache = None
        if self.proof_store_path is not None:
            from ..service.store import (
                ShardedProofCache, ShardedVerdictStore,
            )

            cache = ShardedProofCache(
                ShardedVerdictStore(self.proof_store_path),
                max_entries=self.proof_cache_size,
                refresh_on_miss=self.proof_store_refresh,
            )
        return ProofBroker(
            mode=self.proof,
            workers=self.proof_workers,
            max_conflicts=self.max_conflicts,
            bdd_max_nodes=self.bdd_max_nodes,
            retry_factor=self.proof_retry_factor,
            timeout=self.proof_timeout,
            retry_delay=self.proof_retry_delay,
            retry_jitter=self.proof_retry_jitter,
            cache_size=self.proof_cache_size,
            cache_path=self.proof_cache_path,
            cache=cache,
        )

    @property
    def prefetch_limit(self) -> int:
        if self.proof_prefetch is not None:
            return self.proof_prefetch
        return 2 * self.max_mods_per_pass

    def region_config(self) -> "GdoConfig":
        """The derived config for one region-local GDO run.

        Regions recurse into the *serial* optimizer (partitioning does
        not nest), skip the final miter (the master run verifies the
        merged netlist once), prove single-process (the regions
        themselves are the parallelism — a proof pool per region would
        oversubscribe), and run observability off: partition decisions
        are journaled by the master coordinator, and region-local
        journals would interleave by scheduling.  Everything else —
        seed, engine mode, enumeration caps, proof knobs including the
        shared ``proof_store_path`` — is inherited, so every region
        still shares verdicts through the sharded store.
        """
        return replace(
            self,
            partition_workers=0,
            verify_final=False,
            proof_workers=1,
            proof_prefetch=None,
            obs=ObsConfig.off(),
        )


@dataclass
class ModRecord:
    """One accepted modification, for reporting."""

    phase: str        # "delay" | "area"
    description: str
    kind: str         # OS2/IS2/OS3/IS3
    delay_before: float
    delay_after: float
    area_before: float
    area_after: float


@dataclass
class EngineCounters:
    """Scratch vs. incremental update counts of the GDO engine layer."""

    sta_scratch: int = 0           # full timing recomputes
    sta_incremental: int = 0       # dirty-cone timing refreshes
    sta_signals_touched: int = 0   # signals visited by those refreshes
    sim_scratch: int = 0           # full word-parallel simulations
    sim_incremental: int = 0       # dirty-cone state carry-overs
    sim_signals_changed: int = 0   # word rows rewritten by carry-overs
    obs_rows_computed: int = 0     # observability rows resimulated
    obs_rows_reused: int = 0       # rows carried across engine refreshes
    flat_hits: int = 0             # calls served by flat-array kernels
    flat_fallbacks: int = 0        # flat calls that fell back to dicts
    sta_pi_root: int = 0           # trial edits touching a PI fanout root


@dataclass
class GdoStats:
    """Aggregate statistics of one GDO run (the Table 1/2 columns)."""

    gates_before: int = 0
    gates_after: int = 0
    literals_before: int = 0
    literals_after: int = 0
    area_before: float = 0.0
    area_after: float = 0.0
    delay_before: float = 0.0
    delay_after: float = 0.0
    mods2: int = 0             # OS2 + IS2 count
    mods3: int = 0             # OS3 + IS3 count
    proofs_attempted: int = 0
    proofs_passed: int = 0
    # Static funnel stage (repro.analysis): candidates discharged
    # before BPFS/broker, and invariant checks executed.
    static_proved: int = 0
    static_refuted: int = 0
    checks_run: int = 0
    # Crash recovery (repro.service): True when the run replayed a
    # journal prefix, and how many proof verdicts it took from the
    # journal instead of the broker.
    resumed: bool = False
    replayed_verdicts: int = 0
    # Partitioned parallel GDO (repro.partition): how many regions the
    # run was cut into (0 = serial path), merge conflicts that
    # re-queued a region, and merge rounds executed.
    partition_regions: int = 0
    partition_conflicts: int = 0
    partition_rounds: int = 0
    rounds: int = 0
    cpu_seconds: float = 0.0
    equivalent: Optional[bool] = None
    history: list = field(default_factory=list)
    engine: EngineCounters = field(default_factory=EngineCounters)
    proof: ProofCounters = field(default_factory=ProofCounters)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    # End-of-run observability snapshot (None when fully disabled);
    # spans/metrics/journal records per GdoConfig.obs.
    obs: Optional[ObsSnapshot] = None

    @property
    def delay_reduction(self) -> float:
        if self.delay_before <= 0:
            return 0.0
        return 1.0 - self.delay_after / self.delay_before

    @property
    def literal_reduction(self) -> float:
        if self.literals_before <= 0:
            return 0.0
        return 1.0 - self.literals_after / self.literals_before
