"""Engine plumbing for GDO: from-scratch vs. incremental updates.

The paper's inner loop re-anchors timing and simulation "after every
accepted modification" (Sec. 5).  :class:`EngineContext` centralizes
that re-anchoring behind one interface with two implementations selected
by ``GdoConfig.incremental``:

* **from scratch** — every checkout rebuilds ``Sta``, the compiled
  simulator, and the observability engine, and every trial edit is
  timed by a fresh ``Sta`` and refuted by a full simulation;
* **incremental** — one :class:`~repro.timing.incremental.IncrementalSta`
  is maintained across modifications (in-place trial edits refresh it
  undoably), trial refutation resimulates only the substitution cone of
  the epoch's base sim, the checkout simulator state is carried over
  with dirty-cone re-evaluation, and cached observability rows survive
  refreshes when their cone is untouched.

Both modes consume the same seed stream and compute bitwise-identical
values, so they produce the same modification sequence — enforced by
``tests/opt/test_gdo_determinism.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

import numpy as np

from ..analysis.invariants import InvariantViolation, check_netlist
from ..analysis.static_refuter import UNKNOWN, StaticRefuter
from ..clauses.candidates import CandidateEnumerator
from ..clauses.pvcc import Candidate
from ..flat.batchsim import FlatObservabilityEngine, flat_simulate
from ..flat.view import FlatView, FlatViewError
from ..library.cells import TechLibrary
from ..netlist.netlist import Branch, Netlist
from ..obs import Observability
from ..proof.broker import ProofBroker
from ..sim.bitsim import BitSimulator, SimState
from ..sim.observability import ObservabilityEngine, SignalRef
from ..sim.vectors import random_words
from ..timing.incremental import IncrementalSta, StaTrialUndo
from ..timing.sta import Sta
from ..transform.realize import realize_form
from ..transform.substitution import InplaceSubstitution
from .config import GdoConfig, GdoStats


def make_sta(net: Netlist, library: TechLibrary, cfg: GdoConfig) -> Sta:
    """The single construction point for GDO timing snapshots — keeps
    the po_load/eps conventions from drifting between call sites."""
    return Sta(net, library, po_load=cfg.po_load, eps=cfg.eps)


class EngineContext:
    """Owns the timing and simulation state of one GDO run over ``net``.

    The runner asks for snapshots (:meth:`timing`, :meth:`checkout`),
    evaluates in-place trial edits (:meth:`begin_trial`, :meth:`refutes`),
    and resolves them (:meth:`reject_trial` / :meth:`commit_trial`); the context
    decides whether each answer is rebuilt or refreshed and counts both
    in ``stats.engine``.
    """

    def __init__(self, net: Netlist, library: TechLibrary,
                 cfg: GdoConfig, stats: GdoStats,
                 broker: Optional[ProofBroker] = None):
        if cfg.partition_workers:
            raise ValueError(
                "EngineContext drives the serial trial loop; a config "
                "with partition_workers > 0 must enter through "
                "gdo_optimize, which routes it to repro.partition "
                "(region runs use cfg.region_config())")
        self.net = net
        self.library = library
        self.cfg = cfg
        self.stats = stats
        self.incremental = cfg.incremental
        # Per-run observability (tracer/metrics/journal per cfg.obs);
        # threaded through every engine layer and detached in finish().
        self.obs = Observability.from_config(cfg.obs)
        # The proof broker may be caller-owned and outlive this run
        # (warm verdict cache across gdo_optimize invocations); its
        # counters are per-run, so reset them here and drain them into
        # this run's stats in finish().
        self._owns_broker = broker is None
        self.broker = broker if broker is not None else cfg.make_broker()
        if self.broker is not None:
            self.broker.begin_run()
            self.broker.attach_obs(self.obs.metrics, self.obs.tracer,
                                   self.obs.journal)
        self.seed_counter = cfg.seed
        self._phase_seed = cfg.seed
        self._sim: Optional[BitSimulator] = None
        self._state = None
        self._engine: Optional[ObservabilityEngine] = None
        self._enum: Optional[CandidateEnumerator] = None
        self._pending: Set[str] = set()
        self._pending_removed: Set[str] = set()
        self._refute_base: Optional[Tuple[BitSimulator, object]] = None
        # Seed drawn for the current refutation epoch; set at the first
        # prepare_refutation of the epoch even when the base simulation
        # itself is skipped (journal replay), so the seed stream is
        # identical with and without resume.
        self._refute_seed: Optional[int] = None
        self._trial_undo: Optional[StaTrialUndo] = None
        self._sta: Optional[IncrementalSta] = None
        # Static funnel stage (repro.analysis): rebuilt lazily per
        # netlist state, discarded on commit.  Inactive with
        # proof="none" — there is no broker work to discharge.
        self._static: Optional[StaticRefuter] = None
        self._static_enabled = cfg.static_funnel and cfg.proof != "none"
        self._check_counter = 0
        if self.incremental:
            self._sta = IncrementalSta(net, library,
                                       po_load=cfg.po_load, eps=cfg.eps,
                                       flat=cfg.flat)
            self._sta.metrics = self.obs.metrics
            self._drain_sta(self._sta)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def timing(self) -> Sta:
        """Timing snapshot of the current net (maintained or rebuilt)."""
        if not self.incremental:
            self.stats.engine.sta_scratch += 1
            return make_sta(self.net, self.library, self.cfg)
        return self._sta

    def begin_trial(self, dirty: Set[str], removed: Set[str]) -> Sta:
        """Timing of the net after an in-place trial edit.

        Incremental mode refreshes the maintained annotation undoably
        (forward sweep over the dirty cone, required times deferred);
        from-scratch mode builds a fresh :class:`Sta` of the edited net.
        The caller must follow up with :meth:`reject_trial` (undo) or
        :meth:`commit_trial` (keep) before the next trial.

        Noteworthy trial edits are journaled here: dirty sets covering
        too much of the net force a from-scratch timing recompute
        (``sta_scratch`` records), and dirty sets touching a PI fanout
        cone root — handled in-cone, previously indistinguishable from
        a silent scratch fallback — are counted and journaled as
        ``sta_pi_root`` records.  Both classifications are pure
        functions of the edit, so the record sequence is identical
        under scratch/incremental engines, flat on/off, and any worker
        count.
        """
        live = {s for s in dirty if self.net.has_signal(s)}
        event = IncrementalSta.trial_event(self.net, live)
        if event == "dirty_fraction":
            self.obs.journal.record("sta_scratch", cause=event,
                                    dirty=len(live))
        elif event == "pi_root":
            self.obs.journal.record("sta_pi_root", dirty=len(live))
            self.stats.engine.sta_pi_root += 1
        if not self.incremental:
            self.stats.engine.sta_scratch += 1
            return make_sta(self.net, self.library, self.cfg)
        assert self._trial_undo is None, "unfinished trial"
        self._trial_undo = self._sta.refresh_trial(dirty, removed)
        self._drain_sta(self._sta)
        return self._sta

    def reject_trial(self) -> None:
        """Restore the pre-trial timing annotation (incremental mode)."""
        if self._trial_undo is not None:
            self._trial_undo.apply()
            self._trial_undo = None

    def _drain_sta(self, sta: IncrementalSta) -> None:
        e = self.stats.engine
        e.sta_scratch += sta.scratch_updates
        e.sta_incremental += sta.incremental_updates
        e.sta_signals_touched += sta.signals_touched
        e.flat_hits += sta.flat_hits
        e.flat_fallbacks += sta.flat_fallbacks
        sta.scratch_updates = sta.incremental_updates = 0
        sta.signals_touched = 0
        sta.flat_hits = sta.flat_fallbacks = 0

    # ------------------------------------------------------------------
    # simulation / observability
    # ------------------------------------------------------------------
    def begin_phase(self) -> None:
        """Fresh BPFS vectors for one delay/area phase invocation."""
        self.seed_counter += 1
        self._phase_seed = self.seed_counter
        self._retire_engine()
        self._sim = self._state = None
        self._pending.clear()
        self._pending_removed.clear()

    def checkout(self) -> Tuple[Sta, ObservabilityEngine, CandidateEnumerator]:
        """Per-pass snapshot ``(sta, engine, enumerator)`` synchronized
        to the current net and the current phase's vectors."""
        cfg = self.cfg
        counters = self.stats.engine
        if self.incremental and self._engine is not None:
            if self._pending or self._pending_removed:
                dirty = set(self._pending)
                sim, state, changed = BitSimulator.incremental(
                    self.net, self._sim, self._state, dirty,
                    metrics=self.obs.metrics)
                affected = dirty | changed | self._pending_removed
                engine = self._engine.refreshed(sim, state, affected)
                self._retire_engine()
                self._sim, self._state, self._engine = sim, state, engine
                counters.sim_incremental += 1
                counters.sim_signals_changed += len(changed)
                self._pending.clear()
                self._pending_removed.clear()
        else:
            self._retire_engine()
            with self.obs.span("sim.scratch"):
                sim = BitSimulator(self.net)
                state = self._scratch_state(sim, self._phase_seed)
            self._sim, self._state = sim, state
            engine_cls = (
                FlatObservabilityEngine if cfg.flat else ObservabilityEngine
            )
            self._engine = engine_cls(sim, state)
            counters.sim_scratch += 1
            self.obs.metrics.counter("sim_scratch_rebuilds",
                                     site="checkout").inc()
            self._pending.clear()
            self._pending_removed.clear()
        sta = self.timing()
        if self._enum is None:
            self._enum = CandidateEnumerator(
                self.net, sta, self._engine, self.library,
                include_xor=cfg.include_xor,
                use_c2_reduction=cfg.use_c2_reduction,
                allow_inverted=cfg.allow_inverted,
                max_pool=cfg.max_pool,
                level_skew=cfg.level_skew,
            )
        else:
            self._enum.rebind(sta, self._engine)
        return sta, self._engine, self._enum

    def _retire_engine(self) -> None:
        if self._engine is not None:
            self.stats.engine.obs_rows_computed += self._engine.computed
            self.stats.engine.obs_rows_reused += self._engine.reused
            self.stats.engine.flat_hits += getattr(
                self._engine, "flat_hits", 0)
            self.stats.engine.flat_fallbacks += getattr(
                self._engine, "flat_fallbacks", 0)
            self._engine = None

    def _scratch_state(self, sim: BitSimulator, seed: int) -> SimState:
        """Full simulation of the current net on the seed's word batch —
        one vectorized level sweep when the flat kernels are on (same
        words, bitwise-identical values), the compiled gate loop
        otherwise or on fallback."""
        words = random_words(self.net.pis, self.cfg.n_words, seed)
        if self.cfg.flat:
            try:
                view = FlatView.build(self.net)
                values = flat_simulate(view, words)
            except FlatViewError:
                self.stats.engine.flat_fallbacks += 1
            else:
                self.stats.engine.flat_hits += 1
                return SimState(sim, values)
        return sim.simulate(words)

    def prefetch_observability(self, refs: Iterable[SignalRef]) -> None:
        """Batch-compute the observability rows of a pass's target refs
        (flat engine only; a no-op otherwise).  Rows are bitwise what
        the lazy per-cone path would derive, so enumeration decisions —
        and journals — are unchanged; only the loop shape differs.
        """
        engine = self._engine
        if engine is not None and hasattr(engine, "prefetch"):
            with self.obs.span("sim.obs_prefetch"):
                engine.prefetch(refs)

    # ------------------------------------------------------------------
    # refutation (the pre-proof random-word filter)
    # ------------------------------------------------------------------
    def prepare_refutation(self, simulate: bool = True) -> None:
        """Simulate the base netlist for this adoption epoch, if not done.

        Must run *before* the trial edit mutates the net — the base sim
        is the reference both modes compare trials against.

        ``simulate=False`` (journal replay: the refutation outcome will
        come from the records) draws the epoch's seed without building
        the base.  If a later candidate of the same epoch runs out of
        journal and needs a live refutation, the base is materialized
        then, from the same (unchanged, pre-edit) netlist with the same
        seed — bitwise what an uninterrupted run computed up front.
        """
        if self._refute_base is not None:
            return
        if self._refute_seed is None:
            self.seed_counter += 1
            self._refute_seed = self.seed_counter
        if not simulate:
            return
        with self.obs.span("sim.refute_base"):
            sim = BitSimulator(self.net)
            state = self._scratch_state(sim, self._refute_seed)
        self._refute_base = (sim, state)
        self.stats.engine.sim_scratch += 1
        self.obs.metrics.counter("sim_scratch_rebuilds",
                                 site="refute_base").inc()

    def refutes(self, cand: Candidate, edit: InplaceSubstitution) -> bool:
        """True if the epoch's random vectors distinguish the applied
        trial edit from the base netlist.

        Incremental mode resimulates only the substitution's fanout cone
        of the *base* sim with the replacement's word value overriding
        the target — the edited net is never compiled.  From-scratch
        mode compiles and fully simulates the edited net on the same
        words.  Both compute the trial's exact PO words, so the verdicts
        are identical.
        """
        sim, state = self._refute_base
        counters = self.stats.engine
        if self.incremental:
            word = self._replacement_word(state, cand)
            if isinstance(cand.target, Branch):
                sink = (sim.index_of[cand.target.gate], cand.target.pin)
                overrides = sim.resimulate_cone(
                    state, edit.old_branch_signal, word, sink_filter=sink)
            else:
                overrides = sim.resimulate_cone(state, cand.target, word)
            counters.sim_incremental += 1
            counters.sim_signals_changed += len(overrides)
            return bool(np.any(sim.po_difference(state, overrides)))
        words = {pi: state.word(pi) for pi in self.net.pis}
        t_state = BitSimulator(self.net).simulate(words)
        counters.sim_scratch += 1
        self.obs.metrics.counter("sim_scratch_rebuilds",
                                 site="refute").inc()
        for l_po, r_po in zip(sim.pos, self.net.pos):
            if np.any(state.word(l_po) ^ t_state.word(r_po)):
                return True
        return False

    @staticmethod
    def _replacement_word(state, cand: Candidate) -> np.ndarray:
        """Base-sim word of the replacement signal, mirroring the exact
        bit operations of the gate :func:`apply_candidate` builds."""
        if cand.kind in ("OS2", "IS2"):
            w = state.word(cand.sources[0])
            return ~w if cand.inverted else w
        func, swap = realize_form(cand.form)
        b, c = cand.sources
        if swap:
            b, c = c, b
        return func.eval_words([state.word(b), state.word(c)])

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------
    def commit_trial(self, dirty: Set[str], removed: Set[str]) -> None:
        """Keep the current trial edit: the maintained annotation already
        reflects it; queue the dirty sets for the next sim checkout."""
        self._trial_undo = None
        self._pending |= dirty
        self._pending_removed |= removed
        self._refute_base = None
        self._refute_seed = None
        self._static = None  # verdicts were against the pre-commit net

    # ------------------------------------------------------------------
    # static analysis (repro.analysis; DESIGN.md §8)
    # ------------------------------------------------------------------
    def static_classify(self, cand: Candidate) -> str:
        """Static funnel verdict for ``cand`` against the current net:
        ``proved`` / ``refuted`` / ``unknown`` (memoized per net state;
        always ``unknown`` when the stage is disabled).

        Pure — no journal or metrics side effects, so it is safe to call
        from the prefetch path without perturbing serial == parallel
        journal determinism.
        """
        if not self._static_enabled:
            return UNKNOWN
        if self._static is None:
            with self.obs.span("gdo.static_build"):
                self._static = StaticRefuter(self.net)
        return self._static.classify(cand)

    def check_invariants(self, event: str,
                         scope: Optional[Set[str]] = None) -> None:
        """Dirty-region invariant check hook (``GdoConfig.check``).

        ``event`` is ``"trial"``, ``"undo"`` or ``"commit"``; the mode
        decides which events check, ``check_sample`` thins them.  Any
        error-severity diagnostic raises :class:`InvariantViolation` —
        a corrupted netlist must stop the run, not optimize garbage.
        """
        mode = self.cfg.check
        if mode == "off":
            return
        if mode == "commits" and event != "commit":
            return
        self._check_counter += 1
        sample = self.cfg.check_sample
        if sample > 1 and self._check_counter % sample:
            return
        live_scope = None
        if scope is not None:
            live_scope = {s for s in scope if self.net.has_signal(s)}
        with self.obs.span("gdo.check", event=event):
            report = check_netlist(self.net, self.library,
                                   scope=live_scope)
        self.stats.checks_run += 1
        self.obs.metrics.counter("gdo_checks", event=event).inc()
        if not report.ok():
            raise InvariantViolation(report.errors, context=event)

    def finish(self) -> None:
        """Flush per-object counters into ``stats``; release the broker.

        The observability bundle stays open — ``gdo_optimize`` journals
        the final verification and ``run_end`` after this, then
        snapshots it onto ``stats.obs``.
        """
        self._retire_engine()
        if self._sta is not None:
            self._drain_sta(self._sta)
        if self.broker is not None:
            self.stats.proof.merge(self.broker.take_counters())
            # Detach this run's observability — the broker may be
            # caller-owned and must not journal into a closed run.
            self.broker.attach_obs()
            if self._owns_broker:
                self.broker.close()
            else:
                self.broker.flush()
