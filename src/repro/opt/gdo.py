"""GDO — Global Delay Optimization (Sec. 5 of the paper).

Two alternating phases over a mapped netlist:

* **delay reduction phase** — only critical gates are a-signals.  C2
  substitutions (OS2/IS2) are tried first, C3 substitutions (OS3/IS3)
  when C2 runs dry.  Surviving PVCCs are ranked by NCP (number of
  critical paths through the a-signal), ties broken by LDS (local delay
  save), proven with the configured backend, and applied; slacks are
  recomputed after every accepted modification.
* **area optimization phase** — substitutions of non-critical gates that
  reduce area without creating new critical paths.  After a few area
  modifications the optimizer returns to the delay phase (area moves can
  re-enable delay moves); it terminates when neither phase finds a
  permissible improving substitution.

Every accepted modification is individually proven permissible, so the
optimized netlist is equivalent to the input by construction; a final
random-simulation + SAT-miter verification is run as a safety net.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..clauses.candidates import CandidateEnumerator
from ..clauses.pvcc import Candidate
from ..library.cells import TechLibrary
from ..netlist.netlist import Branch, Netlist
from ..sim.bitsim import BitSimulator
from ..sim.observability import ObservabilityEngine
from ..timing.sta import Sta
from ..transform.substitution import (
    TransformError, apply_candidate, prove_candidate,
)
from .config import GdoConfig, GdoStats, ModRecord


class GdoResult:
    """Optimized netlist plus run statistics."""

    def __init__(self, net: Netlist, stats: GdoStats):
        self.net = net
        self.stats = stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"GdoResult(delay {s.delay_before:.2f}->{s.delay_after:.2f}, "
            f"literals {s.literals_before}->{s.literals_after}, "
            f"mods2={s.mods2}, mods3={s.mods3})"
        )


def gdo_optimize(
    net: Netlist,
    library: TechLibrary,
    config: Optional[GdoConfig] = None,
) -> GdoResult:
    """Run GDO on a mapped netlist; the input is not modified."""
    cfg = config or GdoConfig()
    work = net.copy(name=net.name)
    library.rebind(work)
    stats = GdoStats()
    start = time.perf_counter()
    sta = Sta(work, library, po_load=cfg.po_load, eps=cfg.eps)
    stats.gates_before = work.num_gates
    stats.literals_before = work.num_literals
    stats.area_before = library.netlist_area(work)
    stats.delay_before = sta.delay

    runner = _GdoRunner(work, library, cfg, stats)
    runner.run()

    sta = Sta(work, library, po_load=cfg.po_load, eps=cfg.eps)
    stats.gates_after = work.num_gates
    stats.literals_after = work.num_literals
    stats.area_after = library.netlist_area(work)
    stats.delay_after = sta.delay
    stats.cpu_seconds = time.perf_counter() - start
    if cfg.verify_final:
        from ..sat.solver import SolverBudgetExceeded
        from ..verify.equiv import check_equivalence

        try:
            stats.equivalent = check_equivalence(
                net, work, n_words=cfg.verify_words, seed=cfg.seed,
                max_conflicts=cfg.max_conflicts,
            )
        except SolverBudgetExceeded:
            # Refutation already failed on verify_words * 64 random
            # vectors; the formal proof ran out of budget: unknown.
            stats.equivalent = None
    return GdoResult(work, stats)


class _GdoRunner:
    """Holds the mutable optimization state for one run."""

    def __init__(self, net: Netlist, library: TechLibrary,
                 cfg: GdoConfig, stats: GdoStats):
        self.net = net
        self.library = library
        self.cfg = cfg
        self.stats = stats
        self.seed_counter = cfg.seed
        self.deadline = (
            time.perf_counter() + cfg.max_seconds
            if cfg.max_seconds is not None else None
        )

    def _out_of_time(self) -> bool:
        return self.deadline is not None and \
            time.perf_counter() > self.deadline

    # ------------------------------------------------------------------
    def run(self) -> None:
        cfg = self.cfg
        rounds = 0
        previous = self._progress_metric()
        while rounds < cfg.max_rounds and not self._out_of_time():
            rounds += 1
            made_delay = self._delay_phase()
            made_area = self._area_phase() if cfg.area_phase else False
            if not made_delay and not made_area:
                break
            current = self._progress_metric()
            if current >= previous:
                # The round only shuffled ties (e.g. delay moves adding
                # the area the area phase just reclaimed): stop.
                break
            previous = current
        self.stats.rounds = rounds

    def _progress_metric(self):
        cfg = self.cfg
        sta = Sta(self.net, self.library, po_load=cfg.po_load, eps=cfg.eps)
        arrival_sum = sum(sta.arrival.get(po, 0.0) for po in self.net.pos)
        grain = max(cfg.secondary_gain, cfg.eps)
        return (
            round(sta.delay / grain),
            round(arrival_sum / grain),
            round(self.library.netlist_area(self.net) / grain),
        )

    # ------------------------------------------------------------------
    def _fresh_engine(self) -> ObservabilityEngine:
        self.seed_counter += 1
        sim = BitSimulator(self.net)
        state = sim.simulate_random(
            n_words=self.cfg.n_words, seed=self.seed_counter
        )
        return ObservabilityEngine(sim, state)

    def _enumerator(self, sta: Sta, engine: ObservabilityEngine
                    ) -> CandidateEnumerator:
        cfg = self.cfg
        return CandidateEnumerator(
            self.net, sta, engine, self.library,
            include_xor=cfg.include_xor,
            use_c2_reduction=cfg.use_c2_reduction,
            allow_inverted=cfg.allow_inverted,
            max_pool=cfg.max_pool,
            level_skew=cfg.level_skew,
        )

    # ------------------------------------------------------------------
    # delay reduction phase
    # ------------------------------------------------------------------
    def _delay_phase(self) -> bool:
        """Repeated delay passes; C2 first, then C3 (Sec. 5)."""
        made_any = False
        for _ in range(self.cfg.max_passes_per_phase):
            if self._out_of_time():
                break
            if self._delay_pass(with_three=False):
                made_any = True
                continue
            if self._delay_pass(with_three=True):
                made_any = True
                continue
            break
        return made_any

    def _delay_pass(self, with_three: bool) -> bool:
        cfg = self.cfg
        sta = Sta(self.net, self.library, po_load=cfg.po_load, eps=cfg.eps)
        engine = self._fresh_engine()
        enum = self._enumerator(sta, engine)
        targets = enum.delay_targets()[: cfg.max_targets_per_pass]
        candidates: List[Candidate] = []
        for ref in targets:
            limit = enum.point_arrival(ref) - cfg.eps
            if with_three:
                found = enum.three_subs(ref, limit)
            else:
                found = enum.two_subs(ref, limit)
            found.sort(key=lambda c: -c.lds)
            candidates.extend(found[: cfg.max_candidates_per_target])
        candidates.sort(key=lambda c: (-c.ncp, -c.lds))
        return self._apply_best(candidates, sta, phase="delay") > 0

    # ------------------------------------------------------------------
    # area optimization phase
    # ------------------------------------------------------------------
    def _area_phase(self) -> bool:
        made_any = False
        mods = 0
        while mods < self.cfg.area_mods_before_retry and \
                not self._out_of_time():
            got = self._area_pass(with_three=False)
            if not got:
                got = self._area_pass(with_three=True)
            if not got:
                break
            mods += got
            made_any = True
        return made_any

    def _area_pass(self, with_three: bool) -> int:
        cfg = self.cfg
        sta = Sta(self.net, self.library, po_load=cfg.po_load, eps=cfg.eps)
        engine = self._fresh_engine()
        enum = self._enumerator(sta, engine)
        # Non-critical stems ranked by reclaimable logic (Fig. 3b gain).
        targets = [
            out for out in self.net.topo_order()
            if not sta.is_critical(out)
        ]
        from ..netlist.traverse import mffc

        targets.sort(
            key=lambda s: -len(mffc(self.net, s))
        )
        candidates: List[Candidate] = []
        for out in targets[: cfg.max_targets_per_pass]:
            limit = sta.required.get(out, float("inf"))
            if limit == float("inf"):
                limit = sta.delay
            if with_three:
                found = enum.three_subs(out, limit)
            else:
                found = enum.two_subs(out, limit)
            found.sort(key=lambda c: -c.lds)
            candidates.extend(found[: cfg.max_candidates_per_target])
        candidates.sort(key=lambda c: -c.lds)
        return self._apply_best(candidates, sta, phase="area")

    # ------------------------------------------------------------------
    def _apply_best(self, candidates: List[Candidate], sta: Sta,
                    phase: str) -> int:
        """Prove and apply the ranked candidates; returns #applied.

        Each accepted modification is validated against a trial copy:
        LDS is only an upper bound on the gain (other paths may become
        critical, fanout loads shift), so the overall delay/area is
        re-measured and the modification rolled back if it regressed.
        """
        cfg = self.cfg
        applied = 0
        proofs = 0
        trials = 0
        delay_now = sta.delay
        arrival_sum_now = sum(sta.arrival.get(po, 0.0) for po in self.net.pos)
        area_now = self.library.netlist_area(self.net)
        touched: set = set()
        for cand in candidates:
            if applied >= cfg.max_mods_per_pass:
                break
            if proofs >= cfg.max_proofs_per_pass:
                break
            if trials >= cfg.max_trials_per_pass:
                break
            if self._out_of_time():
                break
            trials += 1
            point = (
                cand.target if not isinstance(cand.target, Branch)
                else cand.target.gate
            )
            if point in touched or any(s in touched for s in cand.sources):
                continue  # stale bookkeeping after earlier mods this pass
            trial = self.net.copy()
            try:
                applied_rec = apply_candidate(
                    trial, cand, library=self.library, prune=True
                )
            except TransformError:
                continue
            trial_sta = Sta(trial, self.library,
                            po_load=cfg.po_load, eps=cfg.eps)
            trial_area = self.library.netlist_area(trial)
            trial_arrival_sum = sum(
                trial_sta.arrival.get(po, 0.0) for po in trial.pos
            )
            if phase == "delay":
                # LDS is local (Sec. 5): a permissible modification that
                # shortens its own paths is worth applying even when
                # parallel critical paths keep the overall delay pinned —
                # the gains compound across modifications.  Total PO
                # arrival is the monotone progress measure.
                secondary = max(cfg.eps, cfg.secondary_gain)
                ok = trial_sta.delay < delay_now - cfg.eps or (
                    trial_sta.delay <= delay_now + cfg.eps
                    and (trial_arrival_sum < arrival_sum_now - secondary
                         or self._critical_shrunk(trial_sta, sta))
                )
            else:
                ok = (trial_area < area_now - cfg.eps
                      and trial_sta.delay <= delay_now + cfg.eps)
            if not ok:
                continue
            # Cheap refutation on fresh random vectors before the formal
            # proof: the BPFS filter used one vector batch; most false
            # positives die on a second, different batch.
            from ..verify.equiv import random_sim_refutes

            self.seed_counter += 1
            if random_sim_refutes(self.net, trial, n_words=cfg.n_words,
                                  seed=self.seed_counter):
                continue
            proofs += 1
            self.stats.proofs_attempted += 1
            if not prove_candidate(
                self.net, cand, library=self.library, proof=cfg.proof,
                max_conflicts=cfg.max_conflicts,
                bdd_max_nodes=cfg.bdd_max_nodes,
            ):
                continue
            self.stats.proofs_passed += 1
            # Adopt the trial netlist.
            self._adopt(trial)
            touched.add(point)
            touched.update(cand.sources)
            if cand.kind in ("OS2", "IS2"):
                self.stats.mods2 += 1
            else:
                self.stats.mods3 += 1
            self.stats.history.append(ModRecord(
                phase=phase, description=cand.describe(), kind=cand.kind,
                delay_before=delay_now, delay_after=trial_sta.delay,
                area_before=area_now, area_after=trial_area,
            ))
            delay_now = trial_sta.delay
            arrival_sum_now = trial_arrival_sum
            area_now = trial_area
            applied += 1
        return applied

    def _critical_shrunk(self, new_sta: Sta, old_sta: Sta) -> bool:
        """Accept equal-delay moves that reduce critical-path breadth."""
        return len(new_sta.critical_gates()) < len(old_sta.critical_gates())

    def _adopt(self, trial: Netlist) -> None:
        self.net.gates = trial.gates
        self.net.pos = trial.pos
        self.net.pis = trial.pis
        self.net._pi_set = trial._pi_set
        self.net._name_counter = trial._name_counter
        self.net.invalidate()
