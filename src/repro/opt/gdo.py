"""GDO — Global Delay Optimization (Sec. 5 of the paper).

Two alternating phases over a mapped netlist:

* **delay reduction phase** — only critical gates are a-signals.  C2
  substitutions (OS2/IS2) are tried first, C3 substitutions (OS3/IS3)
  when C2 runs dry.  Surviving PVCCs are ranked by NCP (number of
  critical paths through the a-signal), ties broken by LDS (local delay
  save), proven with the configured backend, and applied; slacks are
  recomputed after every accepted modification.
* **area optimization phase** — substitutions of non-critical gates that
  reduce area without creating new critical paths.  After a few area
  modifications the optimizer returns to the delay phase (area moves can
  re-enable delay moves); it terminates when neither phase finds a
  permissible improving substitution.

Every accepted modification is individually proven permissible, so the
optimized netlist is equivalent to the input by construction; a final
random-simulation + SAT-miter verification is run as a safety net.
"""

from __future__ import annotations

import time
from typing import List, Optional, Set, Tuple

from ..analysis.static_refuter import PROVED, REFUTED, UNKNOWN
from ..clauses.pvcc import Candidate
from ..library.cells import TechLibrary
from ..netlist.netlist import Branch, Netlist
from ..netlist.traverse import extract_cone
from ..proof.backends import VALID
from ..proof.broker import ProofBroker
from ..proof.obligation import align_interfaces, build_obligation
from ..timing.sta import Sta
from ..transform.substitution import (
    InplaceSubstitution, TransformError, affected_outputs,
    apply_candidate_inplace,
)
from .config import GdoConfig, GdoStats, ModRecord
from .engine import EngineContext
from .replay import ReplayCursor


class GdoResult:
    """Optimized netlist plus run statistics."""

    def __init__(self, net: Netlist, stats: GdoStats):
        self.net = net
        self.stats = stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats
        return (
            f"GdoResult(delay {s.delay_before:.2f}->{s.delay_after:.2f}, "
            f"literals {s.literals_before}->{s.literals_after}, "
            f"mods2={s.mods2}, mods3={s.mods3})"
        )


def gdo_optimize(
    net: Netlist,
    library: TechLibrary,
    config: Optional[GdoConfig] = None,
    broker: Optional[ProofBroker] = None,
    resume: Optional[List[dict]] = None,
) -> GdoResult:
    """Run GDO on a mapped netlist; the input is not modified.

    ``broker`` optionally supplies a caller-owned
    :class:`~repro.proof.broker.ProofBroker`, letting its verdict cache
    (and worker pool) survive across runs; by default the run builds
    and tears down its own per ``config``.

    ``resume`` optionally supplies the journal prefix of an interrupted
    run over the same (netlist, config): refutation outcomes and proof
    verdicts up to the last committed substitution are replayed from
    the records instead of recomputed (see :mod:`repro.opt.replay`),
    after which the run continues live.  The journal is re-emitted from
    seq 0 and the final netlist is identical to an uninterrupted run —
    the crash-recovery contract of :mod:`repro.service`.
    """
    cfg = config or GdoConfig()
    if cfg.partition_workers:
        # Region-parallel execution plane (repro.partition): cut the
        # netlist into dominator-cone regions, optimize them in fork
        # workers, merge in canonical order.  Region runs recurse into
        # this function with partition_workers=0.
        from ..partition.runner import run_partitioned

        return run_partitioned(net, library, cfg, broker=broker,
                               resume=resume)
    work = net.copy(name=net.name)
    library.rebind(work)
    stats = GdoStats()
    start = time.perf_counter()
    ctx = EngineContext(work, library, cfg, stats, broker=broker)
    obs = ctx.obs
    sta = ctx.timing()
    stats.gates_before = work.num_gates
    stats.literals_before = work.num_literals
    stats.area_before = library.netlist_area(work)
    stats.delay_before = sta.delay
    obs.journal.record(
        "run_begin", circuit=work.name, gates=stats.gates_before,
        seed=cfg.seed, n_words=cfg.n_words,
    )

    runner = _GdoRunner(work, library, cfg, stats, ctx, resume=resume)
    with obs.span("gdo.optimize"):
        runner.run()

    sta = ctx.timing()
    stats.gates_after = work.num_gates
    stats.literals_after = work.num_literals
    stats.area_after = library.netlist_area(work)
    stats.delay_after = sta.delay
    ctx.finish()
    stats.cpu_seconds = time.perf_counter() - start
    if cfg.verify_final:
        from ..verify.equiv import check_equivalence

        t0 = time.perf_counter()
        # None when refutation already failed on verify_words * 64
        # random vectors and the formal proof ran out of budget.
        with obs.span("gdo.verify"):
            stats.equivalent = check_equivalence(
                net, work, n_words=cfg.verify_words, seed=cfg.seed,
                max_conflicts=cfg.max_conflicts,
            )
        stats.phase_seconds["verify"] = time.perf_counter() - t0
    obs.journal.record(
        "run_end", delay_after=stats.delay_after,
        area_after=stats.area_after, mods=len(stats.history),
        rounds=stats.rounds,
    )
    stats.obs = obs.snapshot()
    obs.close()
    return GdoResult(work, stats)


class _GdoRunner:
    """Holds the mutable optimization state for one run."""

    def __init__(self, net: Netlist, library: TechLibrary,
                 cfg: GdoConfig, stats: GdoStats, ctx: EngineContext,
                 resume: Optional[List[dict]] = None):
        self.net = net
        self.library = library
        self.cfg = cfg
        self.stats = stats
        self.ctx = ctx
        self.obs = ctx.obs
        self.replay = ReplayCursor(resume) if resume else None
        stats.resumed = self.replay is not None
        self._round = 0
        # Candidates that failed trial/refutation/proof since the last
        # adoption: nothing they depend on has changed, so re-evaluating
        # them in a later pass of the same epoch must fail identically.
        self._rejected: Set[Tuple[str, bool, str]] = set()
        self.deadline = (
            time.perf_counter() + cfg.max_seconds
            if cfg.max_seconds is not None else None
        )

    def _out_of_time(self) -> bool:
        return self.deadline is not None and \
            time.perf_counter() > self.deadline

    # ------------------------------------------------------------------
    def run(self) -> None:
        cfg = self.cfg
        rounds = 0
        previous = self._progress_metric()
        while rounds < cfg.max_rounds and not self._out_of_time():
            rounds += 1
            self._round = rounds
            made_delay = self._delay_phase()
            made_area = self._area_phase() if cfg.area_phase else False
            if not made_delay and not made_area:
                break
            current = self._progress_metric()
            if current >= previous:
                # The round only shuffled ties (e.g. delay moves adding
                # the area the area phase just reclaimed): stop.
                break
            previous = current
        self.stats.rounds = rounds

    def _progress_metric(self):
        cfg = self.cfg
        sta = self.ctx.timing()
        arrival_sum = sum(sta.arrival.get(po, 0.0) for po in self.net.pos)
        grain = max(cfg.secondary_gain, cfg.eps)
        return (
            round(sta.delay / grain),
            round(arrival_sum / grain),
            round(self.library.netlist_area(self.net) / grain),
        )

    # ------------------------------------------------------------------
    # delay reduction phase
    # ------------------------------------------------------------------
    def _delay_phase(self) -> bool:
        """Repeated delay passes; C2 first, then C3 (Sec. 5)."""
        t0 = time.perf_counter()
        self.obs.journal.record("phase_begin", phase="delay",
                                round=self._round)
        self.ctx.begin_phase()
        self._rejected.clear()
        made_any = False
        with self.obs.span("gdo.delay_phase"):
            for _ in range(self.cfg.max_passes_per_phase):
                if self._out_of_time():
                    break
                if self._delay_pass(with_three=False):
                    made_any = True
                    continue
                if self._delay_pass(with_three=True):
                    made_any = True
                    continue
                break
        self.stats.phase_seconds["delay"] = (
            self.stats.phase_seconds.get("delay", 0.0)
            + time.perf_counter() - t0
        )
        return made_any

    def _delay_pass(self, with_three: bool) -> bool:
        cfg = self.cfg
        sta, _engine, enum = self.ctx.checkout()
        candidates: List[Candidate] = []
        with self.obs.span("gdo.enumerate", phase="delay"):
            targets = enum.delay_targets()[: cfg.max_targets_per_pass]
            # One batched BPFS sweep over every target's fault site
            # (flat engine only); the per-target lookups below then hit
            # the row cache instead of resimulating cone by cone.
            self.ctx.prefetch_observability(targets)
            for ref in targets:
                limit = enum.point_arrival(ref) - cfg.eps
                if with_three:
                    found = enum.three_subs(ref, limit)
                else:
                    found = enum.two_subs(ref, limit)
                found.sort(key=lambda c: -c.lds)
                candidates.extend(found[: cfg.max_candidates_per_target])
        candidates.sort(key=lambda c: (-c.ncp, -c.lds))
        self.obs.metrics.counter("gdo_candidates_generated",
                                 phase="delay").inc(len(candidates))
        return self._apply_best(candidates, sta, phase="delay") > 0

    # ------------------------------------------------------------------
    # area optimization phase
    # ------------------------------------------------------------------
    def _area_phase(self) -> bool:
        t0 = time.perf_counter()
        self.obs.journal.record("phase_begin", phase="area",
                                round=self._round)
        self.ctx.begin_phase()
        self._rejected.clear()
        made_any = False
        mods = 0
        with self.obs.span("gdo.area_phase"):
            while mods < self.cfg.area_mods_before_retry and \
                    not self._out_of_time():
                got = self._area_pass(with_three=False)
                if not got:
                    got = self._area_pass(with_three=True)
                if not got:
                    break
                mods += got
                made_any = True
        self.stats.phase_seconds["area"] = (
            self.stats.phase_seconds.get("area", 0.0)
            + time.perf_counter() - t0
        )
        return made_any

    def _area_pass(self, with_three: bool) -> int:
        cfg = self.cfg
        sta, _engine, enum = self.ctx.checkout()
        # Non-critical stems ranked by reclaimable logic (Fig. 3b gain).
        targets = [
            out for out in self.net.topo_order()
            if not sta.is_critical(out)
        ]
        from ..netlist.traverse import mffc

        targets.sort(
            key=lambda s: -len(mffc(self.net, s))
        )
        candidates: List[Candidate] = []
        with self.obs.span("gdo.enumerate", phase="area"):
            self.ctx.prefetch_observability(
                targets[: cfg.max_targets_per_pass])
            for out in targets[: cfg.max_targets_per_pass]:
                limit = sta.required.get(out, float("inf"))
                if limit == float("inf"):
                    limit = sta.delay
                if with_three:
                    found = enum.three_subs(out, limit)
                else:
                    found = enum.two_subs(out, limit)
                found.sort(key=lambda c: -c.lds)
                candidates.extend(found[: cfg.max_candidates_per_target])
        candidates.sort(key=lambda c: -c.lds)
        self.obs.metrics.counter("gdo_candidates_generated",
                                 phase="area").inc(len(candidates))
        return self._apply_best(candidates, sta, phase="area")

    # ------------------------------------------------------------------
    def _apply_best(self, candidates: List[Candidate], sta: Sta,
                    phase: str) -> int:
        """Prove and apply the ranked candidates; returns #applied.

        Each candidate is applied to the live netlist *in place* and
        validated there: LDS is only an upper bound on the gain (other
        paths may become critical, fanout loads shift), so the overall
        delay/area is re-measured and the edit undone if it regressed,
        was refuted, or failed its proof.  This keeps a trial O(cone)
        instead of O(netlist) — no trial copy, no netlist diff.
        """
        cfg = self.cfg
        applied = 0
        proofs = 0
        trials = 0
        self._prefetch_proofs(candidates)
        delay_now = sta.delay
        arrival_sum_now = sum(sta.arrival.get(po, 0.0) for po in self.net.pos)
        area_now = self.library.netlist_area(self.net)
        # Critical-path breadth at pass begin: the tie-break baseline for
        # equal-delay moves (captured now — trial edits mutate the net).
        crit_now = len(sta.critical_gates()) if phase == "delay" else 0
        touched: set = set()
        for cand in candidates:
            if applied >= cfg.max_mods_per_pass:
                break
            if proofs >= cfg.max_proofs_per_pass:
                break
            if trials >= cfg.max_trials_per_pass:
                break
            if self._out_of_time():
                break
            point = (
                cand.target if not isinstance(cand.target, Branch)
                else cand.target.gate
            )
            if point in touched or any(s in touched for s in cand.sources):
                continue  # stale bookkeeping after earlier mods this pass
            key = (cand.kind, cand.inverted, cand.describe())
            if key in self._rejected:
                continue  # deterministic re-failure: net unchanged
            desc = cand.describe()
            # Static funnel stage (repro.analysis): refuted candidates
            # skip the trial entirely, proved ones will skip BPFS and
            # the broker below.  Pure — identical under any worker
            # count, so the journal stays deterministic.
            verdict = self.ctx.static_classify(cand)
            if self.replay is not None and verdict != UNKNOWN:
                # Early divergence check: static verdicts are pure, so
                # a mismatch means the journal is not this run's.
                self.replay.static_check(
                    desc, "refuted" if verdict == REFUTED else "proved")
            if verdict == REFUTED:
                self._rejected.add(key)
                self.stats.static_refuted += 1
                self.obs.journal.record("static", desc=desc,
                                        verdict="refuted")
                self.obs.metrics.counter("gdo_static_refuted",
                                         phase=phase).inc()
                continue
            if verdict == PROVED:
                self.obs.journal.record("static", desc=desc,
                                        verdict="proved")
            trials += 1
            self.obs.journal.record("trial", phase=phase,
                                    kind=cand.kind, desc=desc)
            self.obs.metrics.counter("gdo_trials", phase=phase).inc()
            if verdict != PROVED:
                # During replay the refutation outcome comes from the
                # journal, so the epoch-base simulation is skipped (the
                # seed stream still advances — see prepare_refutation).
                self.ctx.prepare_refutation(
                    simulate=self.replay is None
                    or not self.replay.has_refute())
            try:
                edit = apply_candidate_inplace(
                    self.net, cand, library=self.library
                )
            except TransformError:
                self._rejected.add(key)
                self.obs.journal.record("reject", desc=desc,
                                        reason="transform")
                continue
            self.ctx.check_invariants("trial", edit.dirty | edit.removed)
            trial_sta = self.ctx.begin_trial(edit.dirty, edit.removed)
            trial_area = area_now + edit.area_delta
            trial_arrival_sum = sum(
                trial_sta.arrival.get(po, 0.0) for po in self.net.pos
            )
            if phase == "delay":
                # LDS is local (Sec. 5): a permissible modification that
                # shortens its own paths is worth applying even when
                # parallel critical paths keep the overall delay pinned —
                # the gains compound across modifications.  Total PO
                # arrival is the monotone progress measure.
                secondary = max(cfg.eps, cfg.secondary_gain)
                ok = trial_sta.delay < delay_now - cfg.eps or (
                    trial_sta.delay <= delay_now + cfg.eps
                    and (trial_arrival_sum < arrival_sum_now - secondary
                         or len(trial_sta.critical_gates()) < crit_now)
                )
            else:
                ok = (trial_area < area_now - cfg.eps
                      and trial_sta.delay <= delay_now + cfg.eps)
            if not ok:
                self._revert(edit, key, desc, reason="timing")
                continue
            if verdict == PROVED:
                # Statically proved: no falsifying vector exists, so
                # BPFS cannot refute it and the broker would answer
                # VALID — discharge both.
                self.stats.static_proved += 1
                self.obs.metrics.counter("gdo_static_proved",
                                         phase=phase).inc()
                self.obs.metrics.counter("gdo_bpfs_survived",
                                         phase=phase).inc()
                if self.ctx.broker is not None:
                    self.ctx.broker.count_static_skip()
            else:
                # Cheap refutation on fresh random vectors before the
                # formal proof: the BPFS filter used one vector batch;
                # most false positives die on a second, different batch.
                self.obs.metrics.counter("gdo_to_bpfs",
                                         phase=phase).inc()
                replayed = (self.replay.refute(desc)
                            if self.replay is not None else None)
                if replayed is None:
                    with self.obs.span("gdo.refute"):
                        refuted = self.ctx.refutes(cand, edit)
                else:
                    refuted = replayed
                self.obs.journal.record("refute", desc=desc,
                                        refuted=refuted)
                if refuted:
                    self._revert(edit, key, desc, reason="refuted")
                    continue
                self.obs.metrics.counter("gdo_bpfs_survived",
                                         phase=phase).inc()
                proofs += 1
                self.stats.proofs_attempted += 1
                with self.obs.span("gdo.prove"):
                    proven = self._prove(cand, edit)
                if not proven:
                    self._revert(edit, key, desc, reason="proof")
                    continue
                self.stats.proofs_passed += 1
            self.obs.metrics.counter("gdo_proved", phase=phase).inc()
            # Adopt: the edit stays in; flush the dirty sets downstream.
            self.ctx.commit_trial(edit.dirty, edit.removed)
            self.ctx.check_invariants("commit", edit.dirty | edit.removed)
            self.obs.metrics.counter("gdo_committed", phase=phase).inc()
            self.obs.journal.record(
                "commit", phase=phase, kind=cand.kind, desc=desc,
                delay_after=trial_sta.delay, area_after=trial_area,
            )
            self._rejected.clear()
            touched.add(point)
            touched.update(cand.sources)
            if cand.kind in ("OS2", "IS2"):
                self.stats.mods2 += 1
            else:
                self.stats.mods3 += 1
            self.stats.history.append(ModRecord(
                phase=phase, description=cand.describe(), kind=cand.kind,
                delay_before=delay_now, delay_after=trial_sta.delay,
                area_before=area_now, area_after=trial_area,
            ))
            delay_now = trial_sta.delay
            arrival_sum_now = trial_arrival_sum
            area_now = trial_area
            applied += 1
        return applied

    def _revert(self, edit: InplaceSubstitution, key, desc: str,
                reason: str) -> None:
        """Undo a rejected in-place trial (netlist and timing)."""
        self.ctx.reject_trial()
        edit.undo(self.net)
        self.ctx.check_invariants("undo", edit.dirty | edit.removed)
        self._rejected.add(key)
        self.obs.journal.record("reject", desc=desc, reason=reason)
        self.obs.metrics.counter("gdo_rejected", reason=reason).inc()

    # ------------------------------------------------------------------
    # proving (through the broker)
    # ------------------------------------------------------------------
    def _prove(self, cand: Candidate, edit: InplaceSubstitution) -> bool:
        """Prove the applied trial edit permissible.

        The live netlist *is* the modified circuit; the original is
        reconstructed by undoing the edit on a copy — one O(net) copy
        per proof, not per trial.  The broker answers from its verdict
        cache when the obligation was prefetched (or proven in an
        earlier pass and the cone is unchanged); UNKNOWN drops the
        candidate, it never raises.
        """
        if self.cfg.proof == "none":
            return True
        if self.replay is not None:
            rec = self.replay.verdict()
            if rec is not None:
                # The journal is the proof certificate: this verdict was
                # computed (and, if a commit followed, acted on) before
                # the crash.  Re-emit it so the resumed journal matches
                # the uninterrupted one; skip the O(net) undo-copy and
                # the broker entirely.
                self.obs.journal.record(
                    "verdict", obligation=rec.get("obligation", ""),
                    verdict=rec["verdict"], cache_hit=True, wall_ms=0.0)
                self.stats.replayed_verdicts += 1
                return rec["verdict"] == VALID
        original = self.net.copy()
        edit.undo(original)
        broker = self.ctx.broker
        return broker.prove(original, self.net, cand) == VALID

    def _prefetch_proofs(self, candidates: List[Candidate]) -> None:
        """Batch-prove the top-ranked candidates' obligations up front.

        Runs against the pass-begin netlist, before any trial edit, so
        each obligation is extracted O(cone) by applying the candidate
        in place and undoing it.  Only warms the broker's cache —
        verdicts are pure functions of the obligation, so the trial
        loop commits the same modifications with or without prefetch
        (and with any worker count); a batch merely computes them in
        parallel.  Obligations whose cone is later invalidated by an
        earlier adoption in the same pass miss the cache and are
        re-proven on demand.
        """
        broker = self.ctx.broker
        if broker is None or broker.workers <= 1 or \
                self.cfg.proof == "none":
            return
        if self.replay is not None and self.replay.active:
            # Replayed verdicts never reach the broker; warming the
            # cache for them would burn the obligation extractions the
            # resume exists to skip.  Prefetch resumes with live play.
            return
        with self.obs.span("gdo.prefetch"):
            obligations = []
            budget = self.cfg.prefetch_limit
            # Trial-applies below consume fresh names; restore the
            # counter so prefetch leaves the net bit-identical to a run
            # without it (workers=1 skips prefetch entirely and must
            # stay in lockstep).
            name_counter = self.net._name_counter
            try:
                for cand in candidates:
                    if len(obligations) >= budget:
                        break
                    if (cand.kind, cand.inverted,
                            cand.describe()) in self._rejected:
                        continue
                    # Statically discharged candidates never reach the
                    # broker — don't burn prefetch slots on them (the
                    # verdict is memoized for the trial loop).
                    if self.ctx.static_classify(cand) != UNKNOWN:
                        continue
                    po_idx = affected_outputs(self.net, cand)
                    if not po_idx:
                        continue
                    try:
                        edit = apply_candidate_inplace(
                            self.net, cand, library=self.library
                        )
                    except TransformError:
                        continue
                    try:
                        r_cone = extract_cone(
                            self.net,
                            [self.net.pos[i] for i in po_idx], "right")
                    finally:
                        edit.undo(self.net)
                    l_cone = extract_cone(
                        self.net, [self.net.pos[i] for i in po_idx],
                        "left")
                    align_interfaces(l_cone, r_cone, self.net.pis)
                    obligations.append(
                        build_obligation(l_cone, r_cone, cand))
            finally:
                self.net._name_counter = name_counter
            broker.prove_batch(obligations)
