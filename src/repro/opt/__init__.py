"""The GDO optimizer and companion optimizations."""

from ..proof.broker import ProofBroker, ProofCounters
from .config import EngineCounters, GdoConfig, GdoStats, ModRecord
from .engine import EngineContext, make_sta
from .fanout import FanoutStats, optimize_fanout
from .gdo import GdoResult, gdo_optimize
from .rar import RarStats, rar_optimize
from .report import compare_report, critical_path_report, format_result

__all__ = [
    "ProofBroker", "ProofCounters",
    "EngineCounters", "GdoConfig", "GdoStats", "ModRecord",
    "EngineContext", "make_sta", "FanoutStats", "optimize_fanout",
    "GdoResult", "gdo_optimize", "RarStats", "rar_optimize",
    "compare_report", "critical_path_report", "format_result",
]
