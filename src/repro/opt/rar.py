"""Redundancy addition and removal (RAR) — the single-C2-clause
optimization strategy of Sec. 3.

"Adding a new gate perturbs the network and can make other signals
stuck-at redundant such that after removal of these redundancies an
optimization gain is achieved.  This concept is exploited in
[Kunz/Menon 94] and [Cheng/Entrena 93]."

The loop: (1) sweep existing redundancies; (2) enumerate permissible
bridges (Fig. 2 insertions whose single C2-clause survives BPFS and is
proven by the miter); (3) apply a bridge on a trial copy, run
redundancy removal, and keep the result when the netlist got smaller.
GDO uses clause *combinations* directly; RAR is the indirect,
insertion-first strategy — implemented here both for completeness and
as the baseline the paper positions itself against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..atpg.redundancy import remove_all_redundancies
from ..library.cells import TechLibrary
from ..netlist.edit import dirty_between
from ..netlist.netlist import Branch, Netlist
from ..sim.bitsim import BitSimulator
from ..sim.observability import ObservabilityEngine
from ..sim.vectors import random_words
from ..transform.insertion import (
    Insertion, apply_insertion, candidate_insertions,
)
from ..transform.substitution import TransformError
from ..netlist.gatefunc import AND, OR
from ..sat.miter import miter_equivalent
from ..sat.solver import SolverBudgetExceeded


@dataclass
class RarStats:
    """Aggregate statistics of one RAR run."""

    literals_before: int = 0
    literals_after: int = 0
    gates_before: int = 0
    gates_after: int = 0
    insertions: int = 0
    removals: int = 0
    iterations: int = 0
    cpu_seconds: float = 0.0
    equivalent: Optional[bool] = None
    log: List[str] = field(default_factory=list)

    @property
    def literal_reduction(self) -> float:
        if self.literals_before <= 0:
            return 0.0
        return 1.0 - self.literals_after / self.literals_before


def _prove_insertion(net: Netlist, insertion: Insertion,
                     max_conflicts: Optional[int]) -> bool:
    trial = net.copy()
    try:
        apply_insertion(trial, insertion)
    except TransformError:
        return False
    try:
        return miter_equivalent(net, trial, max_conflicts=max_conflicts)
    except SolverBudgetExceeded:
        return False


def rar_optimize(
    net: Netlist,
    library: Optional[TechLibrary] = None,
    n_words: int = 8,
    seed: int = 0,
    max_iterations: int = 10,
    max_targets: int = 24,
    max_pool: int = 24,
    max_trials_per_iteration: int = 12,
    max_conflicts: Optional[int] = 50_000,
    verify_final: bool = True,
    incremental: bool = True,
) -> RarStats:
    """Run RAR on a netlist; the input is not modified.

    With ``incremental=True`` the bit-parallel simulation state and the
    observability cache are carried across iterations by dirty-cone
    refresh instead of rebuilt from scratch; both settings see the same
    vectors and adopt the same bridges.

    Returns the statistics; the optimized netlist is ``stats.net``.
    """
    work = net.copy(name=net.name)
    stats = RarStats(
        literals_before=work.num_literals, gates_before=work.num_gates,
    )
    start = time.perf_counter()
    # Phase 0: clean existing redundancies.
    stats.removals += remove_all_redundancies(
        work, n_words=n_words, seed=seed, max_conflicts=max_conflicts,
    )
    # One vector batch for the whole run: iteration k simulates the
    # current netlist on the same PI words, which is what makes state
    # carry-over across adoptions possible.
    sim = BitSimulator(work)
    state = sim.simulate(random_words(work.pis, n_words, seed))
    engine = ObservabilityEngine(sim, state)
    for iteration in range(max_iterations):
        stats.iterations = iteration + 1
        delta = _rar_iteration(work, engine, stats, n_words, seed,
                               max_targets, max_pool,
                               max_trials_per_iteration, max_conflicts)
        if delta is None:
            break
        dirty, removed = delta
        if incremental and set(work.pis) == set(engine.sim.net.pis):
            sim, state, changed = BitSimulator.incremental(
                work, engine.sim, engine.state, dirty)
            engine = engine.refreshed(sim, state, dirty | changed | removed)
        else:
            sim = BitSimulator(work)
            state = sim.simulate(random_words(work.pis, n_words, seed))
            engine = ObservabilityEngine(sim, state)
    stats.literals_after = work.num_literals
    stats.gates_after = work.num_gates
    stats.cpu_seconds = time.perf_counter() - start
    if verify_final:
        from ..verify.equiv import check_equivalence

        stats.equivalent = check_equivalence(net, work)
    stats.net = work  # type: ignore[attr-defined]
    return stats


def _rar_iteration(work, engine, stats, n_words, seed, max_targets,
                   max_pool, max_trials, max_conflicts):
    """One insertion attempt over ``engine``'s view of ``work``.

    Returns ``(dirty, removed)`` signal sets of the adopted edit, or
    ``None`` when no profitable bridge was found.
    """
    # Prefer targets deep in the netlist (richer observability DC sets).
    order = work.topo_order()
    targets: List[Branch] = []
    for out in reversed(order):
        gate = work.gates[out]
        targets.extend(Branch(out, pin) for pin in range(gate.nin))
        if len(targets) >= max_targets:
            break
    pool = [s for s in order[-max_pool:]]
    trials = 0
    for target in targets:
        if trials >= max_trials:
            break
        for func in (AND, OR):
            found = candidate_insertions(engine, target, pool, func)
            for insertion in found:
                if insertion.side == work.gates[target.gate].inputs[target.pin]:
                    continue  # bridging a wire with itself is a no-op
                trials += 1
                if trials > max_trials:
                    break
                if not _prove_insertion(work, insertion, max_conflicts):
                    continue
                trial = work.copy()
                try:
                    apply_insertion(trial, insertion)
                except TransformError:
                    continue
                removed = remove_all_redundancies(
                    trial, n_words=n_words, seed=seed,
                    max_conflicts=max_conflicts, max_rounds=6,
                )
                if trial.num_literals < work.num_literals:
                    stats.insertions += 1
                    stats.removals += removed
                    stats.log.append(
                        f"bridge {func.name}({insertion.side}) on "
                        f"{target.gate}/{target.pin}: literals "
                        f"{work.num_literals} -> {trial.num_literals}"
                    )
                    delta = dirty_between(work, trial)
                    _adopt(work, trial)
                    return delta
    return None


def _adopt(work: Netlist, trial: Netlist) -> None:
    work.gates = trial.gates
    work.pos = trial.pos
    work.pis = trial.pis
    work._pi_set = trial._pi_set
    work._name_counter = trial._name_counter
    work.invalidate()
