"""Fanout optimization — the extension the paper defers.

Sec. 6: "Mapping was done without fanout optimization since at this
point we do not consider fanout dependencies in our implementation."
Under the genlib delay model a gate slows down linearly in the load it
drives, so a critical gate with many sinks pays for all of them.  This
module implements the classic remedy as a post-pass: move the
*slackiest* sinks of an overloaded critical net behind a buffer, keeping
the critical sinks on the original driver.  Each split is accepted only
if the measured circuit delay improves — the same trial discipline GDO
uses — and is functionally trivial (a buffer), so no proof is needed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..library.cells import TechLibrary
from ..netlist.edit import insert_gate, replace_input
from ..netlist.gatefunc import BUF
from ..netlist.netlist import Netlist
from ..timing.sta import Sta


@dataclass
class FanoutStats:
    """Results of one fanout-optimization run."""

    delay_before: float = 0.0
    delay_after: float = 0.0
    buffers_added: int = 0
    iterations: int = 0
    cpu_seconds: float = 0.0
    log: List[str] = field(default_factory=list)

    @property
    def delay_reduction(self) -> float:
        if self.delay_before <= 0:
            return 0.0
        return 1.0 - self.delay_after / self.delay_before


def optimize_fanout(
    net: Netlist,
    library: TechLibrary,
    max_iterations: int = 50,
    min_fanout: int = 3,
    po_load: float = 1.0,
    eps: float = 1e-6,
) -> FanoutStats:
    """Buffer overloaded critical nets; the input is not modified.

    Returns statistics with the optimized netlist as ``stats.net``.
    """
    buf_cell = library.cell_for(BUF, 1)
    if buf_cell is None:
        raise ValueError("library has no buffer cell")
    work = net.copy(name=net.name)
    library.rebind(work)
    stats = FanoutStats()
    start = time.perf_counter()
    sta = Sta(work, library, po_load=po_load, eps=eps)
    stats.delay_before = sta.delay
    for iteration in range(max_iterations):
        stats.iterations = iteration + 1
        candidate = _worst_overloaded_net(work, sta, min_fanout)
        if candidate is None:
            break
        if not _try_split(work, library, sta, candidate, buf_cell,
                          stats, po_load, eps):
            break
        sta = Sta(work, library, po_load=po_load, eps=eps)
    stats.delay_after = Sta(work, library, po_load=po_load, eps=eps).delay
    stats.cpu_seconds = time.perf_counter() - start
    stats.net = work  # type: ignore[attr-defined]
    return stats


def _worst_overloaded_net(net: Netlist, sta: Sta,
                          min_fanout: int) -> Optional[str]:
    """The critical signal driving the most fanout pins."""
    best, best_count = None, min_fanout - 1
    for sig in sta.critical_signals():
        count = len(net.fanouts(sig))
        if count > best_count:
            best, best_count = sig, count
    return best


def _try_split(net, library, sta, signal, buf_cell, stats,
               po_load, eps) -> bool:
    """Move the slackiest half of ``signal``'s sinks behind a buffer."""
    branches = list(net.fanouts(signal))
    if len(branches) < 2:
        return False
    # Critical sinks stay on the driver; slack sinks move.
    ranked = sorted(
        branches,
        key=lambda b: sta.slack.get(b.gate, float("inf")),
        reverse=True,
    )
    movers = [
        b for b in ranked[: len(branches) // 2]
        if not sta.is_critical_edge(b)
    ]
    if not movers:
        return False
    trial = net.copy()
    buf_sig = insert_gate(trial, BUF, [signal], cell=buf_cell.name,
                          hint="fbuf")
    for branch in movers:
        replace_input(trial, branch, buf_sig)
    trial_sta = Sta(trial, library, po_load=po_load, eps=eps)
    if trial_sta.delay >= sta.delay - eps:
        return False
    stats.buffers_added += 1
    stats.log.append(
        f"buffered {len(movers)}/{len(branches)} sinks of {signal}: "
        f"delay {sta.delay:.3f} -> {trial_sta.delay:.3f}"
    )
    net.gates = trial.gates
    net.pos = trial.pos
    net.pis = trial.pis
    net._pi_set = trial._pi_set
    net._name_counter = trial._name_counter
    net.invalidate()
    return True
