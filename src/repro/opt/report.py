"""Human-readable reports for GDO runs."""

from __future__ import annotations

from typing import List, Optional

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from ..obs import hot_spans
from ..obs.export import funnel_counts
from ..timing.paths import longest_path
from ..timing.sta import Sta
from .gdo import GdoResult


def _bar(fraction: float, width: int = 30) -> str:
    filled = max(0, min(width, int(round(fraction * width))))
    return "#" * filled + "." * (width - filled)


def format_result(result: GdoResult, library: TechLibrary,
                  max_history: int = 12) -> str:
    """Multi-line summary of one GDO run (metrics, phases, mod log)."""
    s = result.stats
    lines: List[str] = []
    lines.append(f"GDO result for {result.net.name!r}")
    lines.append(
        f"  delay    {s.delay_before:10.3f} -> {s.delay_after:10.3f}   "
        f"[{_bar(s.delay_reduction)}] {100 * s.delay_reduction:5.1f}%"
    )
    lines.append(
        f"  literals {s.literals_before:10d} -> {s.literals_after:10d}   "
        f"[{_bar(s.literal_reduction)}] {100 * s.literal_reduction:5.1f}%"
    )
    lines.append(
        f"  gates    {s.gates_before:10d} -> {s.gates_after:10d}"
    )
    lines.append(
        f"  area     {s.area_before:10.2f} -> {s.area_after:10.2f}"
    )
    lines.append(
        f"  modifications: {s.mods2} OS/IS2, {s.mods3} OS/IS3 over "
        f"{s.rounds} round(s); proofs {s.proofs_passed}/"
        f"{s.proofs_attempted} passed"
    )
    lines.append(f"  cpu: {s.cpu_seconds:.2f}s   "
                 f"equivalence verified: {s.equivalent}")
    delay_mods = sum(1 for r in s.history if r.phase == "delay")
    area_mods = len(s.history) - delay_mods
    lines.append(f"  phases: {delay_mods} delay-phase mods, "
                 f"{area_mods} area-phase mods")
    if s.phase_seconds:
        lines.append("  phase wall time: " + ", ".join(
            f"{name} {sec:.2f}s" for name, sec in s.phase_seconds.items()
        ))
    e = s.engine
    lines.append(
        f"  engine: sta {e.sta_incremental} incremental / "
        f"{e.sta_scratch} scratch ({e.sta_signals_touched} signals), "
        f"sim {e.sim_incremental} incremental / {e.sim_scratch} scratch "
        f"({e.sim_signals_changed} signals)"
    )
    lines.append(
        f"  observability rows: {e.obs_rows_reused} reused, "
        f"{e.obs_rows_computed} computed"
    )
    if e.flat_hits or e.flat_fallbacks:
        lines.append(
            f"  flat kernels: {e.flat_hits} hits, "
            f"{e.flat_fallbacks} fallbacks, "
            f"{e.sta_pi_root} PI-root trials"
        )
    p = s.proof
    lines.append(
        f"  proof broker: {p.dispatched} dispatched "
        f"({p.parallel_batches} parallel batches, {p.deduped} deduped), "
        f"cache {p.cache_hits}/{p.cache_hits + p.cache_misses} hits "
        f"({100 * p.hit_rate:.1f}%), {p.static_skips} static skips"
    )
    lines.append(
        f"  proof backends: sat {p.sat_valid}/{p.sat_invalid}/"
        f"{p.sat_unknown} bdd {p.bdd_valid}/{p.bdd_invalid}/"
        f"{p.bdd_unknown} (valid/invalid/unknown); "
        f"{p.retries} retries, {p.fallbacks} fallbacks, "
        f"{p.timeouts} timeouts, {p.unknown_final} undecided"
    )
    # Observability extras (metrics funnel, span table): every line is
    # guarded so a run with observability disabled prints exactly the
    # report of the pre-obs releases.
    obs = s.obs
    if obs is not None and obs.counter_sum("gdo_candidates_generated"):
        f = funnel_counts(obs)
        lines.append(
            f"  candidate funnel: {f['generated']} generated -> "
            f"{f['static_proved']} static_proved / "
            f"{f['static_refuted']} static_refuted / "
            f"{f['to_bpfs']} to_bpfs -> "
            f"{f['bpfs_survived']} BPFS-survived -> "
            f"{f['proved']} proved -> {f['committed']} committed"
        )
    if obs is not None and obs.spans:
        lines.append("  hot spans (top 8 by wall time):")
        lines.append(
            f"    {'span':24} {'count':>8} {'wall[s]':>10} {'cpu[s]':>10}"
        )
        for name, count, wall, cpu in hot_spans(obs.spans, top=8):
            lines.append(
                f"    {name:24} {count:>8d} {wall:>10.3f} {cpu:>10.3f}"
            )
    if s.history:
        lines.append("  modification log" +
                     ("" if len(s.history) <= max_history
                      else f" (first {max_history})") + ":")
        for rec in s.history[:max_history]:
            lines.append(
                f"    [{rec.phase:5}] {rec.description:44} "
                f"delay {rec.delay_before:8.3f} -> {rec.delay_after:8.3f}"
            )
    return "\n".join(lines)


def critical_path_report(net: Netlist, library: TechLibrary,
                         sta: Optional[Sta] = None) -> str:
    """The current critical path with per-stage arrivals."""
    timing = sta if sta is not None else Sta(net, library)
    path = longest_path(timing)
    lines = [f"critical path of {net.name!r} (delay {timing.delay:.3f}):"]
    for sig in path:
        gate = net.gates.get(sig)
        kind = "PI" if net.is_pi(sig) else (
            gate.cell or gate.func.name if gate else "?"
        )
        lines.append(
            f"  {sig:20} {kind:10} arrival {timing.arrival.get(sig, 0.0):8.3f}"
        )
    return "\n".join(lines)


def compare_report(before: Netlist, after: Netlist,
                   library: TechLibrary) -> str:
    """Side-by-side metric table for two netlists."""
    sta_b = Sta(before, library)
    sta_a = Sta(after, library)
    rows = [
        ("gates", before.num_gates, after.num_gates),
        ("literals", before.num_literals, after.num_literals),
        ("area", round(library.netlist_area(before), 2),
         round(library.netlist_area(after), 2)),
        ("delay", round(sta_b.delay, 3), round(sta_a.delay, 3)),
        ("depth", before.depth(), after.depth()),
        ("critical gates", len(sta_b.critical_gates()),
         len(sta_a.critical_gates())),
    ]
    width = max(len(r[0]) for r in rows)
    lines = [f"{'metric':{width}}  {'before':>12}  {'after':>12}"]
    for name, b_val, a_val in rows:
        lines.append(f"{name:{width}}  {b_val:>12}  {a_val:>12}")
    return "\n".join(lines)
