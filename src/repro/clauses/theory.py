"""Clauses over signal and observability variables (Sec. 2 of the paper).

A :class:`Clause` is a sum of literals over

* *signal variables* — the value of a stem or branch signal, and
* *observability variables* ``Oa`` — whether a change of the signal is
  visible at some primary output,

and is *valid* iff it evaluates to 1 for every assignment produced by a
primary input vector (Definition 1).  Validity against a set of
simulated vectors is decided word-parallel through the
:class:`~repro.sim.observability.ObservabilityEngine` — this is the BPFS
filtering of Sec. 4: one falsifying vector discards a clause.

This module also derives the per-gate characteristic clauses and the
structural observability clauses shown for Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

import numpy as np

from ..netlist.netlist import Branch, Netlist
from ..sim.observability import ObservabilityEngine, SignalRef

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SigLit:
    """Literal of a signal variable: the signal's value or its complement."""

    ref: SignalRef
    positive: bool = True

    def complement(self) -> "SigLit":
        return SigLit(self.ref, not self.positive)

    def describe(self) -> str:
        name = _ref_name(self.ref)
        return name if self.positive else f"~{name}"


@dataclass(frozen=True)
class ObsLit:
    """Literal of an observability variable ``O_ref``."""

    ref: SignalRef
    positive: bool = True

    def complement(self) -> "ObsLit":
        return ObsLit(self.ref, not self.positive)

    def describe(self) -> str:
        name = f"O[{_ref_name(self.ref)}]"
        return name if self.positive else f"~{name}"


Literal = Union[SigLit, ObsLit]


def _ref_name(ref: SignalRef) -> str:
    if isinstance(ref, Branch):
        return f"{ref.gate}/{ref.pin}"
    return str(ref)


class Clause:
    """A sum (disjunction) of signal/observability literals."""

    def __init__(self, literals: Iterable[Literal]):
        self.literals: Tuple[Literal, ...] = tuple(literals)
        if not self.literals:
            raise ValueError("empty clause")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "(" + " + ".join(l.describe() for l in self.literals) + ")"

    def describe(self) -> str:
        return repr(self)

    @property
    def order(self) -> int:
        """Number of *signal* literals — the paper's C1/C2/C3 classes."""
        return sum(1 for l in self.literals if isinstance(l, SigLit))

    # ------------------------------------------------------------------
    def words(self, engine: ObservabilityEngine) -> np.ndarray:
        """Word-parallel truth of the clause on the engine's vectors."""
        acc = None
        for lit in self.literals:
            if isinstance(lit, ObsLit):
                word = engine.observability(lit.ref)
            else:
                word = engine.value(engine.signal_of(lit.ref))
            if not lit.positive:
                word = ~word
            acc = word.copy() if acc is None else (acc | word)
        return acc

    def falsified_by(self, engine: ObservabilityEngine) -> bool:
        """True iff some simulated vector falsifies the clause (the BPFS
        discard test)."""
        return bool(np.any(~self.words(engine)))

    def holds_on(self, engine: ObservabilityEngine) -> bool:
        return not self.falsified_by(engine)


def clause(*lits: Literal) -> Clause:
    return Clause(lits)


# ----------------------------------------------------------------------
# the clause families of Sec. 2 (the C1/C2/C3 table)
# ----------------------------------------------------------------------
def c1_clauses(a: SignalRef) -> List[Clause]:
    """Both C1-clauses of ``a``: ``(~Oa + ~a)`` and ``(~Oa + a)``."""
    return [
        Clause([ObsLit(a, False), SigLit(a, False)]),
        Clause([ObsLit(a, False), SigLit(a, True)]),
    ]


def c2_clauses(a: SignalRef, b: str) -> List[Clause]:
    """All four C2-clauses of the pair (a, b)."""
    out = []
    for pa in (False, True):
        for pb in (False, True):
            out.append(Clause([ObsLit(a, False), SigLit(a, pa), SigLit(b, pb)]))
    return out


def c3_clauses(a: SignalRef, b: str, c: str) -> List[Clause]:
    """All eight C3-clauses of the triple (a, b, c)."""
    out = []
    for pa in (False, True):
        for pb in (False, True):
            for pc in (False, True):
                out.append(Clause([
                    ObsLit(a, False), SigLit(a, pa),
                    SigLit(b, pb), SigLit(c, pc),
                ]))
    return out


# ----------------------------------------------------------------------
# characteristic formulas (Sec. 2, after Larrabee)
# ----------------------------------------------------------------------
def gate_characteristic_clauses(net: Netlist, output: str) -> List[Clause]:
    """The CNF characteristic formula of one gate as Clause objects.

    For the AND gate of Figure 1 this yields
    ``(~d + a) . (~d + b) . (d + ~a + ~b)``.
    """
    gate = net.gate_of(output)
    int_clauses = gate.func.cnf(
        len(gate.inputs) + 1,
        list(range(1, len(gate.inputs) + 1)),
    )
    names = list(gate.inputs) + [output]
    result = []
    for cl in int_clauses:
        result.append(Clause([
            SigLit(names[abs(l) - 1], l > 0) for l in cl
        ]))
    return result


def circuit_characteristic_clauses(net: Netlist) -> List[Clause]:
    """Conjunction (as a list) of every gate's characteristic clauses."""
    out: List[Clause] = []
    for sig in net.topo_order():
        out.extend(gate_characteristic_clauses(net, sig))
    return out


def structural_observability_clauses(net: Netlist, output: str) -> List[Clause]:
    """Local observability clauses derivable from one gate (Sec. 2).

    For every input pin ``x`` of the gate driving ``output``:

    * ``(~O_x + O_out)`` — an observable input implies an observable
      output, and
    * for AND/NAND (dually OR/NOR): ``(~O_x + y)`` for every other input
      ``y`` — the side inputs must be non-controlling.

    Input observabilities are *branch* observabilities of the pins.
    """
    gate = net.gate_of(output)
    clauses: List[Clause] = []
    fname = gate.func.name
    for pin in range(gate.nin):
        pin_ref = Branch(output, pin)
        clauses.append(Clause([ObsLit(pin_ref, False), ObsLit(output, True)]))
        if fname in ("AND", "NAND", "OR", "NOR"):
            side_positive = fname in ("AND", "NAND")
            for other_pin, other_sig in enumerate(gate.inputs):
                if other_pin == pin:
                    continue
                clauses.append(Clause([
                    ObsLit(pin_ref, False),
                    SigLit(other_sig, side_positive),
                ]))
    return clauses
