"""Clause analysis: the paper's core (Secs. 2-4)."""

from .theory import (
    Clause, ObsLit, SigLit, c1_clauses, c2_clauses, c3_clauses,
    circuit_characteristic_clauses, gate_characteristic_clauses,
    structural_observability_clauses, clause,
)
from .pvcc import Candidate
from .candidates import CandidateEnumerator, EnumerationStats
from .implications import ImplicationGraph, propagate_assumption

__all__ = [
    "Clause", "ObsLit", "SigLit", "c1_clauses", "c2_clauses", "c3_clauses",
    "circuit_characteristic_clauses", "gate_characteristic_clauses",
    "structural_observability_clauses", "clause",
    "Candidate", "CandidateEnumerator", "EnumerationStats",
    "ImplicationGraph", "propagate_assumption",
]
