"""Implication graph over signal literals (Sec. 4's "other method").

Besides BPFS, the paper notes valid clauses can be computed from "global
implications using the circuit structure [Schulz/Auth, Kunz/Menon], or
an implication graph [Larrabee, Chakradhar]".  This module implements
that route:

* every gate contributes its *direct* binary implications between
  terminal literals (derived uniformly from the gate truth table, so
  complex cells work too);
* the transitive closure of the graph yields *global* implications;
* a mutual implication ``a=1 <=> b=1`` proves the two signals equal on
  every input vector — an OS2/IS2 substitution that is valid without
  any observability weakening (and therefore without an ATPG/BDD
  proof); literal SCCs enumerate all such equivalence classes.

Every implication ``(s1=v1) => (s2=v2)`` is exactly the valid global
clause ``(~s1^v1 + s2^v2)`` in the paper's notation, e.g.
``a=1 => b=0`` is the valid clause ``(~a + ~b)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple,
)

from ..netlist.netlist import Netlist
from .theory import Clause, SigLit

Lit = Tuple[str, int]  # (signal, value)


def negate(lit: Lit) -> Lit:
    return (lit[0], 1 - lit[1])


class Conflict(Exception):
    """Assumption propagation derived both values for a signal."""


def propagate_assumption(net: Netlist, lit: Lit) -> Dict[str, int]:
    """All signal values forced by assuming ``lit`` (Schulz-style
    "improved deterministic" implication: forward 3-valued evaluation
    plus backward justification, iterated to a fixpoint).

    Returns ``{signal: value}`` including the assumption itself; raises
    :class:`Conflict` if the assumption is infeasible (the literal is
    structurally constant at the opposite value).
    """
    return propagate_assumptions(net, [lit])


def propagate_assumptions(
    net: Netlist,
    lits: Iterable[Lit],
    gates: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Joint fixpoint propagation of several assumed literals.

    Same evaluation as :func:`propagate_assumption` but with all
    assumptions asserted together, so multi-antecedent consequences
    (``b=1 => {i1=1, i2=1} => a=1`` through a re-converging gate) are
    derived.  ``gates`` optionally restricts the sweep to a sub-region
    (in topological order): consequences escaping the region are lost,
    which only weakens the result — restriction is always sound.

    Raises :class:`Conflict` when the assumption set is jointly
    infeasible (this is how the static refuter proves a clause valid:
    assume every literal false and derive a contradiction).
    """
    values: Dict[str, int] = {}
    for sig, val in lits:
        if values.get(sig, val) != val:
            raise Conflict((sig, val))
        values[sig] = val
    assumed = list(values.items())
    changed = True
    order = net.topo_order() if gates is None else list(gates)
    while changed:
        changed = False
        for out in order:
            gate = net.gates.get(out)
            if gate is None:
                continue
            if gate.nin == 0 or gate.nin > 4:
                if gate.func.name in ("CONST0", "CONST1"):
                    val = 1 if gate.func.name == "CONST1" else 0
                    changed |= _assign(values, out, val)
                continue
            known_in = [values.get(s) for s in gate.inputs]
            known_out = values.get(out)
            feasible = []
            for bits in itertools.product((0, 1), repeat=gate.nin):
                if any(k is not None and k != b
                       for k, b in zip(known_in, bits)):
                    continue
                o = gate.func.eval_bits(bits)
                if known_out is not None and o != known_out:
                    continue
                feasible.append(bits + (o,))
            if not feasible:
                raise Conflict(assumed[0] if assumed else (out, 0))
            for pin, sig in enumerate(list(gate.inputs) + [out]):
                forced = {row[pin] for row in feasible}
                if len(forced) == 1:
                    changed |= _assign(values, sig, forced.pop())
    return values


def _assign(values: Dict[str, int], signal: str, value: int) -> bool:
    old = values.get(signal)
    if old is None:
        values[signal] = value
        return True
    if old != value:
        raise Conflict((signal, value))
    return False


class ImplicationGraph:
    """Gate implications plus on-demand transitive closure.

    ``learn=True`` additionally runs assumption propagation for every
    literal (static learning): multi-antecedent consequences such as
    ``m=0 => {a=0, b=0} => n=1`` become graph edges, at quadratic cost.
    """

    def __init__(self, net: Netlist, learn: bool = False):
        self.net = net
        self._edges: Dict[Lit, Set[Lit]] = {}
        self._closure_cache: Dict[Lit, FrozenSet[Lit]] = {}
        for out in net.topo_order():
            self._add_gate_implications(out)
        if learn:
            self._static_learning()

    def _static_learning(self) -> None:
        for signal in list(self.net.signals()):
            for value in (0, 1):
                src = (signal, value)
                try:
                    forced = propagate_assumption(self.net, src)
                except Conflict:
                    # The literal is infeasible: it implies everything;
                    # record the self-contradiction.
                    self._add_edge(src, negate(src))
                    continue
                for sig, val in forced.items():
                    if sig != signal:
                        self._add_edge(src, (sig, val))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add_edge(self, src: Lit, dst: Lit) -> None:
        if src == dst:
            return
        self._edges.setdefault(src, set()).add(dst)
        # contrapositive
        self._edges.setdefault(negate(dst), set()).add(negate(src))

    def _add_gate_implications(self, output: str) -> None:
        gate = self.net.gates[output]
        nin = gate.nin
        if nin == 0 or nin > 4:
            return
        terminals = list(gate.inputs) + [output]
        rows = []
        for bits in itertools.product((0, 1), repeat=nin):
            rows.append(tuple(bits) + (gate.func.eval_bits(bits),))
        n_term = nin + 1
        for i in range(n_term):
            for vi in (0, 1):
                holding = [r for r in rows if r[i] == vi]
                if not holding:
                    continue
                for j in range(n_term):
                    if i == j or terminals[i] == terminals[j]:
                        continue
                    for vj in (0, 1):
                        if all(r[j] == vj for r in holding):
                            self._add_edge(
                                (terminals[i], vi), (terminals[j], vj)
                            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def direct(self, lit: Lit) -> Set[Lit]:
        return self._edges.get(lit, set())

    def implications(self, lit: Lit) -> FrozenSet[Lit]:
        """All literals transitively implied by ``lit`` (excluding it)."""
        cached = self._closure_cache.get(lit)
        if cached is not None:
            return cached
        seen: Set[Lit] = set()
        queue = deque(self._edges.get(lit, ()))
        while queue:
            cur = queue.popleft()
            if cur in seen or cur == lit:
                continue
            seen.add(cur)
            queue.extend(self._edges.get(cur, ()))
        result = frozenset(seen)
        self._closure_cache[lit] = result
        return result

    def implies(self, src: Lit, dst: Lit) -> bool:
        return dst in self.implications(src)

    def contradiction(self, lit: Lit) -> bool:
        """``lit`` implies its own complement: the literal is constant."""
        return negate(lit) in self.implications(lit)

    def clause_for(self, src: Lit, dst: Lit) -> Clause:
        """The valid global clause expressed by ``src => dst``."""
        return Clause([
            SigLit(src[0], src[1] == 0),   # ~src literal
            SigLit(dst[0], dst[1] == 1),
        ])

    def implication_clauses(self, signal: str) -> List[Clause]:
        """All valid 2-literal global clauses rooted at ``signal``."""
        out: List[Clause] = []
        for value in (0, 1):
            for dst in self.implications((signal, value)):
                out.append(self.clause_for((signal, value), dst))
        return out

    # ------------------------------------------------------------------
    # equivalences via SCCs (Tarjan, iterative)
    # ------------------------------------------------------------------
    def equivalence_classes(self) -> List[List[Lit]]:
        """Literal classes that mutually imply each other.

        A class containing ``(a,1)`` and ``(b,1)`` proves ``a == b`` on
        all vectors; containing ``(a,1)`` and ``(b,0)`` proves
        ``a == ~b``.  Only classes with at least two distinct signals
        are returned.
        """
        index: Dict[Lit, int] = {}
        lowlink: Dict[Lit, int] = {}
        on_stack: Set[Lit] = set()
        stack: List[Lit] = []
        counter = [0]
        sccs: List[List[Lit]] = []

        def strongconnect(root: Lit) -> None:
            work = [(root, iter(self._edges.get(root, ())))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(self._edges.get(succ, ())))
                        )
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc: List[Lit] = []
                    while True:
                        lit = stack.pop()
                        on_stack.discard(lit)
                        scc.append(lit)
                        if lit == node:
                            break
                    if len({s for s, _ in scc}) > 1:
                        sccs.append(scc)

        for lit in list(self._edges):
            if lit not in index:
                strongconnect(lit)
        return sccs

    def equivalent_signal_pairs(self) -> List[Tuple[str, str, bool]]:
        """(a, b, inverted) pairs with ``a == b`` (or ``a == ~b``)
        guaranteed structurally — deduplicated, a later in topo order.

        These feed OS2/IS2 substitutions that need no further proof.
        """
        order = {s: k for k, s in enumerate(self.net.topo_order())}
        order.update({s: -1 for s in self.net.pis})
        pairs: Dict[Tuple[str, str], bool] = {}
        for scc in self.equivalence_classes():
            positives = sorted(
                {lit for lit in scc},
                key=lambda l: order.get(l[0], 0),
            )
            for (s1, v1), (s2, v2) in itertools.combinations(positives, 2):
                if s1 == s2:
                    continue
                a, b = (s2, s1) if order.get(s1, 0) < order.get(s2, 0) \
                    else (s1, s2)
                key = (a, b)
                pairs.setdefault(key, v1 != v2)
        return [(a, b, inv) for (a, b), inv in pairs.items()]


def count_implications(graph: ImplicationGraph) -> int:
    """Total number of direct implication edges (for reporting)."""
    return sum(len(v) for v in graph._edges.values())
