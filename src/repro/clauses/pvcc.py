"""Potentially valid clause combinations (PVCCs) and the substitution
candidates they authorize (Sec. 3, Theorems 1 and 2).

A :class:`Candidate` bundles

* the *target* — the stem signal (OS) or branch (IS) to substitute,
* the replacement — an existing signal ``b`` (possibly inverted) for
  OS2/IS2, or a new 2-input gate over ``b``, ``c`` for OS3/IS3,
* the bookkeeping used for ranking: LDS (local delay save) and NCP
  (number of critical paths through the target).

``clause_combination`` materializes the exact conjunction of C2/C3
clauses whose validity is equivalent to permissibility; ``holds_on``
performs the word-parallel check of that condition on simulated vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..netlist.gatefunc import TwoInputForm
from ..netlist.netlist import Branch
from ..sim.observability import ObservabilityEngine, SignalRef
from .theory import Clause, ObsLit, SigLit


@dataclass
class Candidate:
    """One substitution candidate with its PVCC."""

    target: SignalRef
    kind: str                      # "OS2" | "IS2" | "OS3" | "IS3"
    sources: Tuple[str, ...]
    inverted: bool = False         # 2-subs: substitute by the complement
    form: Optional[TwoInputForm] = None  # 3-subs: the new gate's function
    lds: float = 0.0
    ncp: int = 0

    def __post_init__(self) -> None:
        if self.kind in ("OS2", "IS2"):
            if len(self.sources) != 1 or self.form is not None:
                raise ValueError("2-substitution takes one source, no form")
        elif self.kind in ("OS3", "IS3"):
            if len(self.sources) != 2 or self.form is None:
                raise ValueError("3-substitution takes two sources and a form")
        else:
            raise ValueError(f"unknown substitution kind {self.kind!r}")
        if self.kind.startswith("OS") != (not isinstance(self.target, Branch)):
            raise ValueError("OS targets are stems, IS targets are branches")

    @property
    def is_output_substitution(self) -> bool:
        return self.kind.startswith("OS")

    def describe(self) -> str:
        tgt = (
            f"{self.target.gate}/{self.target.pin}"
            if isinstance(self.target, Branch) else str(self.target)
        )
        if self.kind in ("OS2", "IS2"):
            src = ("~" if self.inverted else "") + self.sources[0]
        else:
            tag_b = ("~" if self.form.inv_b else "") + self.sources[0]
            tag_c = ("~" if self.form.inv_c else "") + self.sources[1]
            src = f"{self.form.base.name}({tag_b},{tag_c})"
        return f"{self.kind}({tgt} <- {src})"

    # ------------------------------------------------------------------
    def clause_combination(self) -> List[Clause]:
        """The conjunction of clauses equivalent to permissibility."""
        a = self.target
        no = ObsLit(a, False)
        if self.kind in ("OS2", "IS2"):
            b = self.sources[0]
            pos = not self.inverted
            # (~Oa + a + ~b~)(~Oa + ~a + b~)  with b~ = b or its complement
            return [
                Clause([no, SigLit(a, True), SigLit(b, not pos)]),
                Clause([no, SigLit(a, False), SigLit(b, pos)]),
            ]
        b, c = self.sources
        form = self.form
        def lb(positive):
            return SigLit(b, positive != form.inv_b)

        def lc(positive):
            return SigLit(c, positive != form.inv_c)
        base = form.base.name
        if base == "AND":
            # a == b~ & c~ :  two C2-clauses and one C3-clause (Thm. 2)
            return [
                Clause([no, SigLit(a, False), lb(True)]),
                Clause([no, SigLit(a, False), lc(True)]),
                Clause([no, SigLit(a, True), lb(False), lc(False)]),
            ]
        if base == "OR":
            return [
                Clause([no, SigLit(a, True), lb(False)]),
                Clause([no, SigLit(a, True), lc(False)]),
                Clause([no, SigLit(a, False), lb(True), lc(True)]),
            ]
        if base == "XOR":
            return [
                Clause([no, SigLit(a, False), lb(True), lc(True)]),
                Clause([no, SigLit(a, False), lb(False), lc(False)]),
                Clause([no, SigLit(a, True), lb(False), lc(True)]),
                Clause([no, SigLit(a, True), lb(True), lc(False)]),
            ]
        if base == "XNOR":
            return [
                Clause([no, SigLit(a, False), lb(False), lc(True)]),
                Clause([no, SigLit(a, False), lb(True), lc(False)]),
                Clause([no, SigLit(a, True), lb(True), lc(True)]),
                Clause([no, SigLit(a, True), lb(False), lc(False)]),
            ]
        raise ValueError(f"unsupported form base {base!r}")

    # ------------------------------------------------------------------
    def replacement_words(self, engine: ObservabilityEngine) -> np.ndarray:
        """Word values of the replacement signal/function."""
        if self.kind in ("OS2", "IS2"):
            word = engine.value(self.sources[0])
            return ~word if self.inverted else word
        return self.form.eval_words(
            engine.value(self.sources[0]), engine.value(self.sources[1])
        )

    def holds_on(self, engine: ObservabilityEngine) -> bool:
        """Word-parallel permissibility check on the simulated vectors:
        ``Oa -> (a == replacement)`` — equivalent to the validity of
        :meth:`clause_combination` on the same vectors."""
        obs = engine.observability(self.target)
        a_val = engine.value(engine.signal_of(self.target))
        return not bool(np.any(obs & (a_val ^ self.replacement_words(engine))))
