"""Enumeration of substitution candidates via BPFS (Sec. 4).

The number of potential C3-clauses is cubic in the netlist size, so the
paper reduces the considered set *before* simulation with three filters,
all implemented here:

1. **no-loss filter** — only stem signals as b/c-sources; drop any source
   whose arrival time cannot yield a gain (the arrival-limit argument);
2. **C2-reuse filter** — results of the (cheap) C2 simulation restrict
   the C3 source pools for AND/OR forms exactly, and heuristically for
   XOR/XNOR (the paper notes XOR substitutions may be lost this way);
3. **structural filter** — optional bound on the topological-level skew
   between target and source signals.

Candidates that survive word-parallel simulation are the PVCCs handed to
the proof backends in :mod:`repro.transform.substitution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from ..library.cells import TechLibrary
from ..netlist.edit import find_inverted
from ..netlist.gatefunc import INV, TwoInputForm, two_input_forms
from ..netlist.netlist import Branch, Netlist
from ..sim.observability import ObservabilityEngine, SignalRef
from ..timing.sta import Sta
from .pvcc import Candidate
from ..transform.realize import form_cell_delay


@dataclass
class EnumerationStats:
    """Counters for the Sec.-4 reduction ablations."""

    pool_size: int = 0
    c2_checked: int = 0
    c2_survived: int = 0
    c3_pairs_full: int = 0
    c3_pairs_checked: int = 0
    c3_survived: int = 0

    def merge(self, other: "EnumerationStats") -> None:
        self.pool_size += other.pool_size
        self.c2_checked += other.c2_checked
        self.c2_survived += other.c2_survived
        self.c3_pairs_full += other.c3_pairs_full
        self.c3_pairs_checked += other.c3_pairs_checked
        self.c3_survived += other.c3_survived


class CandidateEnumerator:
    """Produces simulation-filtered substitution candidates for targets."""

    def __init__(
        self,
        net: Netlist,
        sta: Sta,
        engine: ObservabilityEngine,
        library: TechLibrary,
        include_xor: bool = True,
        use_c2_reduction: bool = True,
        allow_inverted: bool = True,
        max_pool: int = 64,
        level_skew: Optional[int] = None,
        eps: float = 1e-9,
    ):
        self.net = net
        self.sta = sta
        self.engine = engine
        self.library = library
        self.include_xor = include_xor
        self.use_c2_reduction = use_c2_reduction
        self.allow_inverted = allow_inverted
        self.max_pool = max_pool
        self.level_skew = level_skew
        self.eps = eps
        self.stats = EnumerationStats()
        self._sync()

    def _sync(self) -> None:
        net = self.net
        self._levels = net.levels() if self.level_skew is not None else None
        # Signals never used as sources: constants and buffers of them.
        self._banned_sources = {
            g.output for g in net.gates.values()
            if g.func.name in ("CONST0", "CONST1")
        }
        # Per-view caches: the netlist is fixed between rebinds (trial
        # edits are undone before enumeration resumes), so forbidden sets
        # and the arrival-ranked source list can be computed once.
        self._forb_cache: Dict[object, Set[str]] = {}
        arr = self.sta.arrival
        self._sources_by_arrival = sorted(
            ((sig, arr[sig]) for sig in net.signals()),
            key=lambda t: -t[1],
        )

    def rebind(self, sta: Sta, engine: ObservabilityEngine) -> None:
        """Point the enumerator at refreshed timing/simulation views of
        the (possibly edited) netlist; enumeration statistics keep
        accumulating across rebinds."""
        self.sta = sta
        self.engine = engine
        self.net = engine.sim.net
        self._sync()

    # ------------------------------------------------------------------
    # target selection
    # ------------------------------------------------------------------
    def point_signal(self, ref: SignalRef) -> str:
        return self.engine.signal_of(ref)

    def point_arrival(self, ref: SignalRef) -> float:
        return self.sta.arrival[self.point_signal(ref)]

    def delay_targets(self) -> List[SignalRef]:
        """Critical stems and critical branches (the paper's critical
        gates, Sec. 5), ranked by NCP."""
        refs: List[SignalRef] = []
        for out in self.sta.critical_gates():
            gate = self.net.gates[out]
            for pin in range(gate.nin):
                branch = Branch(out, pin)
                if self.sta.is_critical_edge(branch):
                    refs.append(branch)
            if self.sta.ncp(out) > 0:
                refs.append(out)
        refs.sort(key=lambda r: -self.sta.ncp_of(r))
        return refs

    # ------------------------------------------------------------------
    # source pools
    # ------------------------------------------------------------------
    def _forbidden(self, ref: SignalRef) -> Set[str]:
        key = ref if isinstance(ref, str) else (ref.gate, ref.pin)
        cached = self._forb_cache.get(key)
        if cached is not None:
            return cached
        if isinstance(ref, Branch):
            root = ref.gate
            current = self.net.gates[ref.gate].inputs[ref.pin]
            forb = self.net.transitive_fanout(root, include_self=True)
            forb.add(current)
        else:
            forb = self.net.transitive_fanout(ref, include_self=True)
        self._forb_cache[key] = forb
        return forb

    def source_pool(
        self, ref: SignalRef, arrival_limit: float,
        forbidden: Optional[Set[str]] = None,
    ) -> List[str]:
        """Arrival/cycle/structure-filtered b/c-source signals.

        Latest arrivals first: sources arriving just under the limit are
        the ones logically correlated with a deep target (a signal near
        the PIs is almost never equivalent to one deep in the cone), and
        any pool member already guarantees the gain bound.  Walking the
        pre-ranked signal list lets the scan stop at ``max_pool``.
        """
        if forbidden is None:
            forbidden = self._forbidden(ref)
        a_sig = self.point_signal(ref)
        limit = arrival_limit + self.eps
        banned = self._banned_sources
        levels = self._levels
        a_level = levels.get(a_sig, 0) if levels is not None else 0
        cap = self.max_pool
        pool: List[str] = []
        for sig, arrival in self._sources_by_arrival:
            if arrival > limit:
                continue
            if sig in forbidden or sig == a_sig or sig in banned:
                continue
            if levels is not None and abs(
                levels.get(sig, 0) - a_level
            ) > self.level_skew:
                continue
            pool.append(sig)
            if cap is not None and len(pool) >= cap:
                break
        return pool

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------
    def two_subs(self, ref: SignalRef, arrival_limit: float) -> List[Candidate]:
        """OS2/IS2 candidates surviving BPFS, newest-arrival bounded."""
        obs = self.engine.observability(ref)
        if not obs.any():
            return []  # target unobservable on all vectors: a C1 matter
        a_val = self.engine.value(self.point_signal(ref))
        pool = self.source_pool(ref, arrival_limit)
        self.stats.pool_size += len(pool)
        if not pool:
            return []
        kind = "IS2" if isinstance(ref, Branch) else "OS2"
        matrix = np.stack([self.engine.value(s) for s in pool])
        diff = (matrix ^ a_val[None, :]) & obs[None, :]
        straight = ~diff.any(axis=1)
        inv_diff = (~(matrix ^ a_val[None, :])) & obs[None, :]
        inverted = ~inv_diff.any(axis=1)
        self.stats.c2_checked += 2 * len(pool)
        out: List[Candidate] = []
        point_arr = self.point_arrival(ref)
        ncp = self.sta.ncp_of(ref)
        for idx, sig in enumerate(pool):
            if straight[idx]:
                out.append(Candidate(
                    target=ref, kind=kind, sources=(sig,),
                    lds=point_arr - self.sta.arrival[sig], ncp=ncp,
                ))
            if inverted[idx] and self.allow_inverted:
                inv_arr = self._inverted_arrival(sig, ref)
                if inv_arr is not None and inv_arr <= arrival_limit + self.eps:
                    out.append(Candidate(
                        target=ref, kind=kind, sources=(sig,), inverted=True,
                        lds=point_arr - inv_arr, ncp=ncp,
                    ))
        self.stats.c2_survived += len(out)
        return out

    def _inverted_arrival(self, sig: str, ref: SignalRef) -> Optional[float]:
        """Arrival of the complement of ``sig``: an existing structural
        complement if available, else through a new inverter."""
        existing = find_inverted(self.net, sig)
        if existing is not None and existing not in self._forbidden(ref):
            return self.sta.arrival[existing]
        inv_cell = self.library.cell_for(INV, 1)
        if inv_cell is None:
            return None
        load = self._target_load(ref)
        return self.sta.arrival[sig] + inv_cell.pins[0].delay(load)

    def _target_load(self, ref: SignalRef) -> float:
        if isinstance(ref, Branch):
            gate = self.net.gates[ref.gate]
            return self.library.gate_input_load(gate, ref.pin)
        return self.sta.load.get(ref, 1.0)

    # ------------------------------------------------------------------
    def three_subs(self, ref: SignalRef, arrival_limit: float) -> List[Candidate]:
        """OS3/IS3 candidates surviving BPFS."""
        obs = self.engine.observability(ref)
        if not obs.any():
            return []
        a_val = self.engine.value(self.point_signal(ref))
        load = self._target_load(ref)
        forms = two_input_forms(include_xor=self.include_xor)
        # The fastest candidate gate bounds the usable source arrivals.
        delays = {}
        for form in forms:
            d = form_cell_delay(self.library, form, load)
            if d is not None:
                delays[form.name] = d
        if not delays:
            return []
        min_delay = min(delays.values())
        pool = self.source_pool(ref, arrival_limit - min_delay)
        self.stats.pool_size += len(pool)
        if len(pool) < 2:
            return []
        kind = "IS3" if isinstance(ref, Branch) else "OS3"
        matrix = np.stack([self.engine.value(s) for s in pool])
        self.stats.c3_pairs_full += (len(pool) * (len(pool) - 1)) // 2
        act1 = obs & a_val        # observable vectors with a = 1
        act0 = obs & ~a_val       # observable vectors with a = 0
        # C2-style per-source facts (the reuse filter of Sec. 4).
        v1 = ~((act1[None, :] & ~matrix).any(axis=1))  # Oa&a  => s=1
        v0 = ~((act1[None, :] & matrix).any(axis=1))   # Oa&a  => s=0
        w1 = ~((act0[None, :] & ~matrix).any(axis=1))  # Oa&~a => s=1
        w0 = ~((act0[None, :] & matrix).any(axis=1))   # Oa&~a => s=0
        out: List[Candidate] = []
        point_arr = self.point_arrival(ref)
        ncp = self.sta.ncp_of(ref)

        def emit(form: TwoInputForm, bi: int, ci: int) -> None:
            gate_delay = delays.get(form.name)
            if gate_delay is None:
                return
            t_new = max(self.sta.arrival[pool[bi]],
                        self.sta.arrival[pool[ci]]) + gate_delay
            if t_new > arrival_limit + self.eps:
                return
            out.append(Candidate(
                target=ref, kind=kind, sources=(pool[bi], pool[ci]),
                form=form, lds=point_arr - t_new, ncp=ncp,
            ))

        for form in forms:
            base = form.base.name
            if base == "AND":
                req_b = v0 if form.inv_b else v1
                req_c = v0 if form.inv_c else v1
                idx_b = np.flatnonzero(req_b)
                idx_c = np.flatnonzero(req_c)
                for bi in idx_b:
                    if not len(idx_c):
                        break
                    bt = matrix[bi] if not form.inv_b else ~matrix[bi]
                    # third clause: no vector with Oa&~a and b~ & c~
                    blocked = act0 & bt
                    cs = matrix[idx_c] if not form.inv_c else ~matrix[idx_c]
                    bad = (cs & blocked[None, :]).any(axis=1)
                    self.stats.c3_pairs_checked += len(idx_c)
                    for k, ci in enumerate(idx_c):
                        if ci == bi or bad[k]:
                            continue
                        if form.inv_b == form.inv_c and ci < bi:
                            continue  # symmetric form: pair already emitted
                        emit(form, int(bi), int(ci))
            elif base == "OR":
                req_b = w1 if form.inv_b else w0
                req_c = w1 if form.inv_c else w0
                idx_b = np.flatnonzero(req_b)
                idx_c = np.flatnonzero(req_c)
                for bi in idx_b:
                    if not len(idx_c):
                        break
                    bt = matrix[bi] if not form.inv_b else ~matrix[bi]
                    # third clause: no vector with Oa&a and ~b~ & ~c~
                    blocked = act1 & ~bt
                    cs = matrix[idx_c] if not form.inv_c else ~matrix[idx_c]
                    bad = ((~cs) & blocked[None, :]).any(axis=1)
                    self.stats.c3_pairs_checked += len(idx_c)
                    for k, ci in enumerate(idx_c):
                        if ci == bi or bad[k]:
                            continue
                        if form.inv_b == form.inv_c and ci < bi:
                            continue
                        emit(form, int(bi), int(ci))
            else:  # XOR / XNOR
                if self.use_c2_reduction:
                    idx = np.flatnonzero(v1 | v0 | w1 | w0)
                else:
                    idx = np.arange(len(pool))
                target = a_val if base == "XOR" else ~a_val
                for pos_b in range(len(idx)):
                    bi = idx[pos_b]
                    want = (target ^ matrix[bi])  # needed value of c
                    cs = matrix[idx[pos_b + 1:]]
                    bad = ((cs ^ want[None, :]) & obs[None, :]).any(axis=1)
                    self.stats.c3_pairs_checked += len(bad)
                    for k, ci in enumerate(idx[pos_b + 1:]):
                        if not bad[k]:
                            emit(form, int(bi), int(ci))
        self.stats.c3_survived += len(out)
        return out

    # ------------------------------------------------------------------
    def all_candidates(
        self, ref: SignalRef, arrival_limit: float,
        with_three: bool = True,
    ) -> List[Candidate]:
        found = self.two_subs(ref, arrival_limit)
        if with_three:
            found += self.three_subs(ref, arrival_limit)
        found.sort(key=lambda c: (-c.ncp, -c.lds))
        return found
