"""A CDCL SAT solver (two-watched literals, 1UIP learning, VSIDS,
Luby restarts, phase saving).

This is the reproduction's stand-in for the "techniques which originated
in the test area": Larrabee's SAT-based test generation [9] is the
engine the paper uses to prove potentially valid clause combinations.
The solver supports assumptions, so ATPG-style queries (is this fault
testable? is this miter satisfiable?) are single calls.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

TRUE, FALSE, UNASSIGNED = 1, 0, -1


class SatResult:
    """Outcome of a solve: ``sat`` flag and, if SAT, a model."""

    def __init__(self, sat: bool, model: Optional[Dict[int, bool]] = None,
                 conflicts: int = 0, decisions: int = 0):
        self.sat = sat
        self.model = model or {}
        self.conflicts = conflicts
        self.decisions = decisions

    def __bool__(self) -> bool:
        return self.sat

    def value(self, var: int) -> bool:
        return self.model.get(var, False)


class Solver:
    """CDCL solver over DIMACS-style integer literals."""

    def __init__(self, n_vars: int = 0):
        self.n_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: Dict[int, List[int]] = {}
        self.assign: List[int] = [UNASSIGNED]
        self.level: List[int] = [0]
        self.reason: List[Optional[int]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.prop_head = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.ok = True
        self.conflicts = 0
        self.decisions = 0
        self._order_heap: List[Tuple[float, int]] = []
        self.ensure_vars(n_vars)

    # ------------------------------------------------------------------
    def ensure_vars(self, n_vars: int) -> None:
        while self.n_vars < n_vars:
            self.n_vars += 1
            self.assign.append(UNASSIGNED)
            self.level.append(0)
            self.reason.append(None)
            self.activity.append(0.0)
            self.phase.append(False)
            heapq.heappush(self._order_heap, (0.0, self.n_vars))

    def add_clause(self, lits: Iterable[int]) -> None:
        clause = sorted(set(lits), key=abs)
        if not clause:
            self.ok = False
            return
        for lit in clause:
            self.ensure_vars(abs(lit))
        # Tautology?
        seen = set(clause)
        if any(-l in seen for l in clause):
            return
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
            return
        idx = len(self.clauses)
        self.clauses.append(clause)
        self.watches.setdefault(clause[0], []).append(idx)
        self.watches.setdefault(clause[1], []).append(idx)

    def add_cnf(self, cnf) -> None:
        """Add all clauses of a :class:`repro.cnf.CNF`."""
        self.ensure_vars(cnf.n_vars)
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        val = self.assign[abs(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val if lit > 0 else 1 - val

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        val = self._lit_value(lit)
        if val == FALSE:
            return False
        if val == TRUE:
            return True
        var = abs(lit)
        self.assign[var] = TRUE if lit > 0 else FALSE
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            falsified = -lit
            watch_list = self.watches.get(falsified, [])
            keep: List[int] = []
            w = 0
            while w < len(watch_list):
                cidx = watch_list[w]
                w += 1
                clause = self.clauses[cidx]
                # Ensure falsified literal is at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == TRUE:
                    keep.append(cidx)
                    continue
                # Search replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches.setdefault(clause[1], []).append(cidx)
                        moved = True
                        break
                if moved:
                    continue
                keep.append(cidx)
                if not self._enqueue(first, cidx):
                    keep.extend(watch_list[w:])
                    self.watches[falsified] = keep
                    return cidx
            self.watches[falsified] = keep
        return None

    # ------------------------------------------------------------------
    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """1UIP conflict analysis; returns (learnt clause, backtrack level)."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        lit = None
        cidx: Optional[int] = conflict
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)
        while True:
            clause = self.clauses[cidx]
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Find next literal to resolve on.
            while not seen[abs(self.trail[index])]:
                index -= 1
            lit = self.trail[index]
            var = abs(lit)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                learnt[0] = -lit
                break
            cidx = self.reason[var]
        if len(learnt) == 1:
            return learnt, 0
        # Backtrack to the second-highest level in the clause.
        levels = sorted((self.level[abs(l)] for l in learnt[1:]), reverse=True)
        back = levels[0]
        # Move a literal of that level to position 1 (watch invariant).
        for k in range(1, len(learnt)):
            if self.level[abs(learnt[k])] == back:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, back

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.n_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._order_heap = [
                (-self.activity[v], v) for v in range(1, self.n_vars + 1)
                if self.assign[v] == UNASSIGNED
            ]
            heapq.heapify(self._order_heap)
            return
        heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _decay(self) -> None:
        self.var_inc /= self.var_decay

    def _backtrack(self, back_level: int) -> None:
        while len(self.trail_lim) > back_level:
            mark = self.trail_lim.pop()
            for lit in reversed(self.trail[mark:]):
                var = abs(lit)
                self.phase[var] = self.assign[var] == TRUE
                self.assign[var] = UNASSIGNED
                self.reason[var] = None
                heapq.heappush(self._order_heap,
                               (-self.activity[var], var))
            del self.trail[mark:]
        self.prop_head = min(self.prop_head, len(self.trail))

    def _decide(self) -> Optional[int]:
        # Lazy VSIDS heap: entries may be stale; skip assigned vars.
        while self._order_heap:
            _act, var = heapq.heappop(self._order_heap)
            if self.assign[var] == UNASSIGNED:
                return var if self.phase[var] else -var
        for var in range(1, self.n_vars + 1):  # safety net
            if self.assign[var] == UNASSIGNED:
                return var if self.phase[var] else -var
        return None

    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> SatResult:
        """Solve under ``assumptions``.

        Raises :class:`SolverBudgetExceeded` when ``max_conflicts`` is
        hit — the caller must treat the query as undecided.
        """
        if not self.ok:
            return SatResult(False)
        self._backtrack(0)
        if self._propagate() is not None:
            self.ok = False
            return SatResult(False)
        self.conflicts = 0
        self.decisions = 0
        luby_idx = 1
        restart_limit = 64 * _luby(luby_idx)
        conflicts_at_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_at_restart += 1
                if len(self.trail_lim) == 0:
                    if not assumptions:
                        self.ok = False
                    return SatResult(False, conflicts=self.conflicts,
                                     decisions=self.decisions)
                learnt, back = self._analyze(conflict)
                self._backtrack(back)
                self._learn(learnt)
                self._decay()
                if max_conflicts is not None and self.conflicts >= max_conflicts:
                    raise SolverBudgetExceeded(self.conflicts)
                continue
            if conflicts_at_restart >= restart_limit:
                luby_idx += 1
                restart_limit = 64 * _luby(luby_idx)
                conflicts_at_restart = 0
                self._backtrack(0)
                continue
            # Re-place any pending assumption as the next decision.
            if len(self.trail_lim) < len(assumptions):
                lit = assumptions[len(self.trail_lim)]
                val = self._lit_value(lit)
                if val == FALSE:
                    # The assumptions themselves are contradictory with
                    # the formula under the current implications.
                    return SatResult(False, conflicts=self.conflicts,
                                     decisions=self.decisions)
                # Open a decision level even when already TRUE so the
                # level <-> assumption-index correspondence holds.
                self.trail_lim.append(len(self.trail))
                if val == UNASSIGNED:
                    self._enqueue(lit, None)
                continue
            lit = self._decide()
            if lit is None:
                model = {
                    v: self.assign[v] == TRUE
                    for v in range(1, self.n_vars + 1)
                }
                result = SatResult(True, model, self.conflicts, self.decisions)
                self._backtrack(0)
                return result
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    def _learn(self, learnt: List[int]) -> None:
        if len(learnt) == 1:
            if not self._enqueue(learnt[0], None):
                self.ok = False
            return
        idx = len(self.clauses)
        self.clauses.append(learnt)
        self.watches.setdefault(learnt[0], []).append(idx)
        self.watches.setdefault(learnt[1], []).append(idx)
        self._enqueue(learnt[0], idx)


class SolverBudgetExceeded(Exception):
    """The conflict budget was exhausted before a verdict."""


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed)."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while (1 << k) - 1 != i:
        # i lies inside the repeated prefix of block k: recurse on it.
        i -= (1 << (k - 1)) - 1
        k = 1
        while (1 << k) - 1 < i:
            k += 1
    return 1 << (k - 1)


def solve_cnf(cnf, assumptions: Sequence[int] = (),
              max_conflicts: Optional[int] = None) -> SatResult:
    """One-shot convenience: build a solver for ``cnf`` and solve."""
    solver = Solver()
    solver.add_cnf(cnf)
    return solver.solve(assumptions, max_conflicts=max_conflicts)
