"""CDCL SAT solving and miter-based equivalence checking."""

from .miter import (
    InterfaceMismatch, build_miter_cnf, miter_counterexample,
    miter_equivalent, miter_verdict,
)
from .solver import SatResult, Solver, SolverBudgetExceeded, solve_cnf

__all__ = [
    "InterfaceMismatch", "build_miter_cnf", "miter_counterexample",
    "miter_equivalent", "miter_verdict", "SatResult", "Solver",
    "SolverBudgetExceeded", "solve_cnf",
]
