"""Miter construction and SAT equivalence checking.

A miter of two netlists with matching PI/PO interfaces is SAT iff some
input vector distinguishes them.  The paper proves PVCC validity either
this way ("ATPG", since the miter query *is* a test-generation query for
the difference) or with BDDs; :mod:`repro.verify.equiv` exposes both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..cnf.formula import CNF, encode_netlist
from ..netlist.netlist import Netlist
from .solver import Solver, SolverBudgetExceeded


class InterfaceMismatch(Exception):
    """The two netlists do not share a PI/PO interface."""


def build_miter_cnf(
    left: Netlist,
    right: Netlist,
    po_indices: Optional[Sequence[int]] = None,
) -> Tuple[CNF, Dict[str, int]]:
    """CNF satisfiable iff some input makes selected POs differ.

    POs are compared positionally; ``po_indices`` restricts the
    comparison (used to check only the outputs affected by a local
    netlist modification).  Returns the CNF and the shared PI varmap.
    """
    if set(left.pis) != set(right.pis):
        raise InterfaceMismatch("primary input sets differ")
    if len(left.pos) != len(right.pos):
        raise InterfaceMismatch("primary output counts differ")
    cnf = CNF()
    # Shared structural hashing collapses all logic common to the two
    # netlists; for a local modification the miter shrinks to the
    # changed cone, which is what keeps thousands of PVCC proofs cheap.
    strash: Dict[Tuple, int] = {}
    _, varmap_l = encode_netlist(left, cnf, tag="L", share_pis=True,
                                 strash=strash)
    _, varmap_r = encode_netlist(right, cnf, tag="R", share_pis=True,
                                 strash=strash)
    indices = range(len(left.pos)) if po_indices is None else po_indices
    diff_lits: List[int] = []
    for idx in indices:
        lv = varmap_l[left.pos[idx]]
        rv = varmap_r[right.pos[idx]]
        if lv == rv:
            continue  # structurally identical output
        d = cnf.pool.fresh()
        # d <-> (lv XOR rv)
        cnf.add((-d, lv, rv))
        cnf.add((-d, -lv, -rv))
        cnf.add((d, -lv, rv))
        cnf.add((d, lv, -rv))
        diff_lits.append(d)
    if not diff_lits:
        # Outputs are literally the same variables: force UNSAT.
        fresh = cnf.pool.fresh()
        cnf.add((fresh,))
        cnf.add((-fresh,))
    else:
        cnf.add(tuple(diff_lits))
    pi_vars = {pi: varmap_l[pi] for pi in left.pis}
    return cnf, pi_vars


def miter_equivalent(
    left: Netlist,
    right: Netlist,
    po_indices: Optional[Sequence[int]] = None,
    max_conflicts: Optional[int] = None,
) -> bool:
    """True iff the selected POs are functionally equivalent.

    Raises :class:`SolverBudgetExceeded` when the budget runs out —
    callers that want an explicit undecided verdict instead of an
    exception use :func:`miter_verdict`.
    """
    cnf, _ = build_miter_cnf(left, right, po_indices=po_indices)
    solver = Solver()
    solver.add_cnf(cnf)
    return not solver.solve(max_conflicts=max_conflicts).sat


#: Budget overflows observed by :func:`miter_verdict` since import —
#: the explicit tally that replaces silently-propagating exceptions.
budget_overflows = 0


def miter_verdict(
    left: Netlist,
    right: Netlist,
    po_indices: Optional[Sequence[int]] = None,
    max_conflicts: Optional[int] = None,
) -> Optional[bool]:
    """Exception-free equivalence verdict.

    ``True`` = equivalent, ``False`` = a distinguishing vector exists,
    ``None`` = undecided within ``max_conflicts`` (counted in
    :data:`budget_overflows`).
    """
    global budget_overflows
    try:
        return miter_equivalent(
            left, right, po_indices=po_indices,
            max_conflicts=max_conflicts,
        )
    except SolverBudgetExceeded:
        budget_overflows += 1
        return None


def miter_counterexample(
    left: Netlist,
    right: Netlist,
    po_indices: Optional[Sequence[int]] = None,
    max_conflicts: Optional[int] = None,
) -> Optional[Dict[str, int]]:
    """A distinguishing input vector, or ``None`` if equivalent."""
    cnf, pi_vars = build_miter_cnf(left, right, po_indices=po_indices)
    solver = Solver()
    solver.add_cnf(cnf)
    result = solver.solve(max_conflicts=max_conflicts)
    if not result.sat:
        return None
    return {pi: int(result.value(var)) for pi, var in pi_vars.items()}
