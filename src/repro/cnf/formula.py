"""CNF formulas and the characteristic function of a netlist.

Following Sec. 2 of the paper (after Larrabee): each gate contributes a
formula in conjunctive normal form that is true iff the values assigned
to its terminal variables are consistent with the gate's truth table;
the conjunction over all gates is the circuit's characteristic function.

Literals use the DIMACS convention: variables are positive integers,
negation is arithmetic negation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..netlist.netlist import Netlist

Clause = Tuple[int, ...]


class VarPool:
    """Allocates CNF variables for named objects."""

    def __init__(self) -> None:
        self._by_name: Dict[object, int] = {}
        self.n_vars = 0

    def var(self, name: object) -> int:
        """Variable for ``name`` (created on first use)."""
        found = self._by_name.get(name)
        if found is not None:
            return found
        self.n_vars += 1
        self._by_name[name] = self.n_vars
        return self.n_vars

    def fresh(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def lookup(self, name: object) -> Optional[int]:
        return self._by_name.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name


class CNF:
    """A CNF formula: a list of clauses over a shared variable pool."""

    def __init__(self, pool: Optional[VarPool] = None):
        self.pool = pool if pool is not None else VarPool()
        self.clauses: List[Clause] = []

    @property
    def n_vars(self) -> int:
        return self.pool.n_vars

    def add(self, clause: Iterable[int]) -> None:
        lits = tuple(clause)
        if not lits:
            raise ValueError("empty clause added to CNF")
        self.clauses.append(lits)

    def extend(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add(clause)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True iff every clause is satisfied by a complete assignment."""
        for clause in self.clauses:
            if not any(
                assignment[abs(l)] == (l > 0) for l in clause
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self.clauses)


def encode_netlist(
    net: Netlist,
    cnf: Optional[CNF] = None,
    tag: object = None,
    share_pis: bool = True,
    strash: Optional[Dict[Tuple, int]] = None,
) -> Tuple[CNF, Dict[str, int]]:
    """Encode the characteristic function of ``net``.

    Returns the CNF and the signal -> variable map.  ``tag`` namespaces
    the gate-output variables so two netlists can coexist in one formula
    (a miter): PI variables are keyed by bare signal name when
    ``share_pis`` so both sides read identical inputs.

    ``strash`` enables structural hashing at the CNF level: gates whose
    (function, operand variables) match a previously encoded gate reuse
    its output variable and contribute no clauses.  Passing the same
    dict to two ``encode_netlist`` calls makes all logic the netlists
    share collapse to a single encoding — essential for fast miters of
    a circuit against a locally modified copy.
    """
    if cnf is None:
        cnf = CNF()
    varmap: Dict[str, int] = {}
    for pi in net.pis:
        key = pi if share_pis else (tag, pi)
        varmap[pi] = cnf.pool.var(key)
    for out in net.topo_order():
        gate = net.gates[out]
        in_vars = [varmap[s] for s in gate.inputs]
        if strash is not None:
            key = _strash_key(gate.func, in_vars)
            hit = strash.get(key)
            if hit is not None:
                varmap[out] = hit
                continue
            var = cnf.pool.var((tag, out))
            strash[key] = var
        else:
            var = cnf.pool.var((tag, out))
        varmap[out] = var
        cnf.extend(gate.func.cnf(var, in_vars))
    return cnf, varmap


_COMMUTATIVE = {"AND", "NAND", "OR", "NOR", "XOR", "XNOR"}


def _strash_key(func, in_vars) -> Tuple:
    if func.name in _COMMUTATIVE:
        return (func.name, tuple(sorted(in_vars)))
    return (func.name, tuple(in_vars))


def to_dimacs(cnf: CNF, comment: str = "") -> str:
    """Serialize to DIMACS CNF text."""
    lines = []
    if comment:
        for part in comment.splitlines():
            lines.append(f"c {part}")
    lines.append(f"p cnf {cnf.n_vars} {len(cnf.clauses)}")
    for clause in cnf.clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> CNF:
    """Parse DIMACS CNF text."""
    cnf = CNF()
    declared = 0
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            declared = int(parts[2])
            continue
        lits = [int(tok) for tok in line.split()]
        if lits and lits[-1] == 0:
            lits = lits[:-1]
        if lits:
            cnf.add(lits)
    while cnf.pool.n_vars < declared:
        cnf.pool.fresh()
    for clause in cnf.clauses:
        for lit in clause:
            while cnf.pool.n_vars < abs(lit):
                cnf.pool.fresh()
    return cnf
