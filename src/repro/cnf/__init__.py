"""CNF formulas, netlist characteristic functions, DIMACS I/O."""

from .formula import CNF, Clause, VarPool, encode_netlist, from_dimacs, to_dimacs

__all__ = ["CNF", "Clause", "VarPool", "encode_netlist", "from_dimacs", "to_dimacs"]
