"""Experiment harness regenerating the paper's Tables 1 and 2.

Each row runs the same pipeline the paper describes:

* Table 1 — ``script.rugged``-style synthesis, area mapping, then GDO;
* Table 2 — ``script.delay``-style synthesis, delay mapping, then GDO;

and reports gates / literals / delay before and after, the OS/IS2 and
OS/IS3 modification counts, and CPU seconds — the exact columns of the
paper.  Absolute values differ (our substrate is not the authors' SIS +
DEC 3000), but the shape claims are asserted in the benchmark suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .circuits.registry import SUITE, TABLE2_NAMES, build
from .library.builtin import mcnc_like
from .library.cells import TechLibrary
from .opt.config import GdoConfig
from .opt.gdo import gdo_optimize
from .synth.scripts import script_delay, script_rugged


@dataclass
class TableRow:
    """One benchmark line of Table 1 / Table 2."""

    circuit: str
    gates_before: int
    gates_after: int
    literals_before: int
    literals_after: int
    delay_before: float
    delay_after: float
    mods2: int
    mods3: int
    cpu_seconds: float
    equivalent: Optional[bool]

    @property
    def delay_reduction(self) -> float:
        return 0.0 if self.delay_before <= 0 else \
            1.0 - self.delay_after / self.delay_before


def run_circuit(
    name: str,
    library: Optional[TechLibrary] = None,
    script: str = "rugged",
    small: bool = True,
    config: Optional[GdoConfig] = None,
) -> TableRow:
    """Synthesize + map + GDO one suite circuit; returns its table row."""
    lib = library or mcnc_like()
    net = build(name, small=small)
    front = script_rugged if script == "rugged" else script_delay
    mapped = front(net, lib)
    cfg = config or GdoConfig()
    start = time.perf_counter()
    result = gdo_optimize(mapped, lib, cfg)
    elapsed = time.perf_counter() - start
    s = result.stats
    return TableRow(
        circuit=name,
        gates_before=s.gates_before, gates_after=s.gates_after,
        literals_before=s.literals_before, literals_after=s.literals_after,
        delay_before=s.delay_before, delay_after=s.delay_after,
        mods2=s.mods2, mods3=s.mods3, cpu_seconds=elapsed,
        equivalent=s.equivalent,
    )


def run_table1(
    names: Optional[List[str]] = None,
    small: bool = True,
    config: Optional[GdoConfig] = None,
    library: Optional[TechLibrary] = None,
) -> List[TableRow]:
    """All rows of the Table-1 experiment (area script + GDO)."""
    picked = names if names is not None else list(SUITE)
    return [
        run_circuit(nm, library=library, script="rugged", small=small,
                    config=config)
        for nm in picked
    ]


def run_table2(
    names: Optional[List[str]] = None,
    small: bool = True,
    config: Optional[GdoConfig] = None,
    library: Optional[TechLibrary] = None,
) -> List[TableRow]:
    """All rows of the Table-2 experiment (delay script + GDO)."""
    picked = names if names is not None else list(TABLE2_NAMES)
    return [
        run_circuit(nm, library=library, script="delay", small=small,
                    config=config)
        for nm in picked
    ]


def format_table(rows: List[TableRow], title: str) -> str:
    """Render rows in the paper's table layout (plus Σ / red. lines)."""
    header = (
        f"{'circuit':10} {'#gates':>13} {'#literals':>13} "
        f"{'delay':>15} {'#mod.':>11} {'CPU[s]':>8} {'equiv':>5}"
    )
    sub = (
        f"{'':10} {'before':>6} {'after':>6} {'before':>6} {'after':>6} "
        f"{'before':>7} {'after':>7} {'2-sub':>5} {'3-sub':>5}"
    )
    lines = [title, header, sub, "-" * len(header)]
    tot = dict(gb=0, ga=0, lb=0, la=0, db=0.0, da=0.0)
    for r in rows:
        lines.append(
            f"{r.circuit:10} {r.gates_before:6d} {r.gates_after:6d} "
            f"{r.literals_before:6d} {r.literals_after:6d} "
            f"{r.delay_before:7.1f} {r.delay_after:7.1f} "
            f"{r.mods2:5d} {r.mods3:5d} {r.cpu_seconds:8.1f} "
            f"{str(r.equivalent):>5}"
        )
        tot["gb"] += r.gates_before
        tot["ga"] += r.gates_after
        tot["lb"] += r.literals_before
        tot["la"] += r.literals_after
        tot["db"] += r.delay_before
        tot["da"] += r.delay_after
    lines.append("-" * len(header))
    lines.append(
        f"{'SUM':10} {tot['gb']:6d} {tot['ga']:6d} {tot['lb']:6d} "
        f"{tot['la']:6d} {tot['db']:7.1f} {tot['da']:7.1f}"
    )
    def red(b, a):
        return 0.0 if b == 0 else 100.0 * (1 - a / b)
    lines.append(
        f"{'red.':10} {'':6} {red(tot['gb'], tot['ga']):5.1f}% "
        f"{'':6} {red(tot['lb'], tot['la']):5.1f}% "
        f"{'':7} {red(tot['db'], tot['da']):6.1f}%"
    )
    return "\n".join(lines)


def summarize(rows: List[TableRow]) -> Dict[str, float]:
    """Aggregate reductions (the paper's Σ/red. lines)."""
    gb = sum(r.gates_before for r in rows)
    ga = sum(r.gates_after for r in rows)
    lb = sum(r.literals_before for r in rows)
    la = sum(r.literals_after for r in rows)
    db = sum(r.delay_before for r in rows)
    da = sum(r.delay_after for r in rows)
    return {
        "gate_reduction": 0.0 if not gb else 1 - ga / gb,
        "literal_reduction": 0.0 if not lb else 1 - la / lb,
        "delay_reduction": 0.0 if not db else 1 - da / db,
        "mods2": sum(r.mods2 for r in rows),
        "mods3": sum(r.mods3 for r in rows),
        "cpu_seconds": sum(r.cpu_seconds for r in rows),
    }
