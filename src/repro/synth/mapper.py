"""Cut-based technology mapping onto a genlib library.

The stand-in for SIS's ``map`` (and the paper's ``map -n 1``: no fanout
optimization).  K-feasible cuts are enumerated on the AIG, cut functions
(<= 4 leaves) are matched against library-cell truth tables under all
input permutations, and dynamic programming selects covers in one of two
modes:

* ``mode="area"``  — minimize area flow (the area script's mapper),
* ``mode="delay"`` — minimize arrival time (the delay script's mapper).

Both phases of every node are costed, with explicit inverters bridging
phases, so NAND/NOR/AOI-style negative-phase cells are used naturally.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..library.cells import Cell, TechLibrary
from ..netlist.gatefunc import INV
from ..netlist.netlist import Netlist
from .aig import Aig, lit_compl, lit_node

MAX_CUT_LEAVES = 4
MAX_CUTS_PER_NODE = 8

_VAR_MASKS_4 = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00]


class MappingError(Exception):
    """The library cannot realize some required function."""


# ----------------------------------------------------------------------
# library pattern table
# ----------------------------------------------------------------------
class PatternTable:
    """Truth-table -> (cell, pin permutation, leaf-phase mask) index.

    ``mask`` bit ``j`` set means cell pin ``j`` reads the *complement*
    of its leaf, i.e. the instantiation connects that pin to the leaf's
    negative-phase signal.  Phase-aware matching is what lets sparse
    libraries (e.g. NAND/NOR/INV only) cover every function.
    """

    MAX_MATCHES_PER_TT = 10

    def __init__(self, library: TechLibrary):
        self.library = library
        self.matches: Dict[
            Tuple[int, int], List[Tuple[Cell, Tuple[int, ...], int]]
        ] = {}
        self.inv_cell = library.cell_for(INV, 1)
        if self.inv_cell is None:
            raise MappingError("library has no inverter")
        for cell in library:
            if cell.nin < 1 or cell.nin > MAX_CUT_LEAVES:
                continue
            table = cell.func.truth_table(cell.nin)
            for perm in itertools.permutations(range(cell.nin)):
                for mask in range(1 << cell.nin):
                    tt = 0
                    for row in range(1 << cell.nin):
                        # pin j of the cell reads leaf perm[j], possibly
                        # complemented.
                        bits = [
                            ((row >> perm[j]) & 1) ^ ((mask >> j) & 1)
                            for j in range(cell.nin)
                        ]
                        idx = sum(b << j for j, b in enumerate(bits))
                        if table[idx]:
                            tt |= 1 << row
                    bucket = self.matches.setdefault((cell.nin, tt), [])
                    if len(bucket) < self.MAX_MATCHES_PER_TT:
                        bucket.append((cell, perm, mask))
        # Prefer matches with fewer complemented pins (cheaper leaves).
        for bucket in self.matches.values():
            bucket.sort(key=lambda m: (bin(m[2]).count("1"), m[0].area))

    def lookup(self, nin: int, tt: int
               ) -> List[Tuple[Cell, Tuple[int, ...], int]]:
        return self.matches.get((nin, tt), [])


# ----------------------------------------------------------------------
# cut enumeration
# ----------------------------------------------------------------------
def _merge_cuts(c1: Tuple[int, ...], c2: Tuple[int, ...]
                ) -> Optional[Tuple[int, ...]]:
    merged = tuple(sorted(set(c1) | set(c2)))
    if len(merged) > MAX_CUT_LEAVES:
        return None
    return merged


def enumerate_cuts(aig: Aig) -> List[List[Tuple[int, ...]]]:
    """Per-node K-feasible cuts (node's trivial cut first)."""
    cuts: List[List[Tuple[int, ...]]] = [[] for _ in range(aig.n_nodes)]
    for node in range(aig.n_nodes):
        fin = aig.fanins[node]
        if fin is None:
            cuts[node] = [(node,)]
            continue
        found = {(node,)}
        a, b = lit_node(fin[0]), lit_node(fin[1])
        for c1 in cuts[a]:
            for c2 in cuts[b]:
                merged = _merge_cuts(c1, c2)
                if merged is not None:
                    found.add(merged)
        ordered = sorted(found, key=lambda c: (len(c), c))
        cuts[node] = ordered[:MAX_CUTS_PER_NODE]
        if (node,) not in cuts[node]:
            cuts[node].insert(0, (node,))
    return cuts


def _fanout_free_cone(aig: Aig, refs: List[int], root: int,
                      leaves: Tuple[int, ...]) -> bool:
    """True iff every internal node of the cut cone (excluding the root
    and the leaves) has a single fanout — the tree-mapping discipline."""
    leaf_set = set(leaves)
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node != root and node not in leaf_set and refs[node] > 1:
            return False
        if node in leaf_set:
            continue
        fin = aig.fanins[node]
        if fin is None:
            continue
        stack.append(lit_node(fin[0]))
        stack.append(lit_node(fin[1]))
    return True


def cut_truth_table(aig: Aig, node: int, leaves: Tuple[int, ...]) -> int:
    """Truth table (bitmask over 2^len(leaves) rows) of ``node`` as a
    function of the cut leaves."""
    masks: Dict[int, int] = {0: 0}
    width_mask = (1 << (1 << len(leaves))) - 1
    for k, leaf in enumerate(leaves):
        masks[leaf] = _VAR_MASKS_4[k] & width_mask

    def value(n: int) -> int:
        found = masks.get(n)
        if found is not None:
            return found
        f0, f1 = aig.fanins[n]
        v0 = value(lit_node(f0))
        if lit_compl(f0):
            v0 ^= width_mask
        v1 = value(lit_node(f1))
        if lit_compl(f1):
            v1 ^= width_mask
        masks[n] = v0 & v1
        return masks[n]

    return value(node) & width_mask


# ----------------------------------------------------------------------
# dynamic-programming cover selection
# ----------------------------------------------------------------------
class _Choice:
    __slots__ = ("cost", "arrival", "kind", "cut", "cell", "perm", "mask")

    def __init__(self, cost, arrival, kind, cut=None, cell=None, perm=None,
                 mask=0):
        self.cost = cost
        self.arrival = arrival
        self.kind = kind      # "cell" | "inv" | "pi" | "const"
        self.cut = cut
        self.cell = cell
        self.perm = perm
        self.mask = mask      # bit j: cell pin j reads the leaf inverted


def map_netlist(
    source: Netlist,
    library: TechLibrary,
    mode: str = "area",
    name: Optional[str] = None,
    tree: bool = False,
) -> Netlist:
    """Map a netlist onto ``library`` via its AIG."""
    from .aig import aig_from_netlist

    return map_aig(aig_from_netlist(source), library, mode=mode,
                   name=name or source.name, tree=tree)


def map_aig(
    aig: Aig,
    library: TechLibrary,
    mode: str = "area",
    name: str = "mapped",
    tree: bool = False,
) -> Netlist:
    """Cover an AIG with library cells; returns a mapped netlist.

    ``tree=True`` restricts matches to fanout-free cones (every internal
    cone node single-fanout), the DAGON/SIS tree-mapping discipline of
    the paper's era.  Tree mapping never looks across a fanout point, so
    redundant reconvergent structure in the subject graph survives into
    the mapped netlist — the precondition for the paper's rewiring gains
    on circuits like C6288.  ``tree=False`` is the modern cut mapper.
    """
    if mode not in ("area", "delay"):
        raise ValueError("mode must be 'area' or 'delay'")
    patterns = PatternTable(library)
    inv_cell = patterns.inv_cell
    inv_cost = inv_cell.area
    inv_delay = inv_cell.pins[0].delay(1.0)
    cuts = enumerate_cuts(aig)
    refs = aig.refs()
    best: List[List[Optional[_Choice]]] = [
        [None, None] for _ in range(aig.n_nodes)
    ]
    best[0][0] = _Choice(0.0, 0.0, "const")
    best[0][1] = _Choice(0.0, 0.0, "const")
    for k in range(len(aig.pi_names)):
        best[1 + k][0] = _Choice(0.0, 0.0, "pi")
        best[1 + k][1] = _Choice(inv_cost, inv_delay, "inv")

    def metric(choice: _Choice) -> float:
        return choice.arrival if mode == "delay" else choice.cost

    for node in range(1 + len(aig.pi_names), aig.n_nodes):
        if aig.fanins[node] is None:
            continue
        options: List[List[_Choice]] = [[], []]
        for cut in cuts[node]:
            if node in cut:
                continue
            if any(best[l][0] is None for l in cut):
                continue
            if tree and not _fanout_free_cone(aig, refs, node, cut):
                continue
            tt = cut_truth_table(aig, node, cut)
            width_mask = (1 << (1 << len(cut))) - 1
            for phase, want in ((0, tt), (1, tt ^ width_mask)):
                for cell, perm, mask in patterns.lookup(len(cut), want):
                    arrival = 0.0
                    cost = cell.area
                    worst_pin = max(p.delay(1.0) for p in cell.pins)
                    feasible = True
                    for j in range(cell.nin):
                        leaf = cut[perm[j]]
                        leaf_phase = (mask >> j) & 1
                        leaf_choice = best[leaf][leaf_phase]
                        if leaf_choice is None:
                            feasible = False
                            break
                        arrival = max(arrival,
                                      leaf_choice.arrival + worst_pin)
                        if tree:
                            # DAGON-exact within a tree: multi-fanout
                            # leaves are tree roots, costed once overall
                            # — but a complemented read still pays its
                            # (dedicated) inverter.
                            if refs[leaf] <= 1:
                                cost += leaf_choice.cost
                            elif leaf_phase == 1:
                                cost += inv_cost
                        else:
                            share = max(refs[leaf], 1)
                            cost += leaf_choice.cost / share
                    if not feasible:
                        continue
                    options[phase].append(_Choice(
                        cost, arrival, "cell", cut=cut, cell=cell,
                        perm=perm, mask=mask,
                    ))
        for phase in (0, 1):
            if options[phase]:
                best[node][phase] = min(options[phase], key=metric)
        # Phase bridging with inverters (both directions, one pass).
        for phase in (0, 1):
            other = best[node][1 - phase]
            if other is None or other.kind == "inv":
                continue  # never stack inverter on inverter (cycle)
            bridged = _Choice(other.cost + inv_cost,
                              other.arrival + inv_delay, "inv")
            if best[node][phase] is None or \
                    metric(bridged) < metric(best[node][phase]):
                best[node][phase] = bridged

    return _instantiate(aig, library, best, inv_cell, name)


def _instantiate(aig, library, best, inv_cell, name: str) -> Netlist:
    net = Netlist(name)
    for pi in aig.pi_names:
        net.add_pi(pi)
    memo: Dict[Tuple[int, int], str] = {}

    def build(node: int, phase: int) -> str:
        key = (node, phase)
        if key in memo:
            return memo[key]
        choice = best[node][phase]
        if choice is None:
            raise MappingError(f"no cover for node {node} phase {phase}")
        if choice.kind == "const":
            from ..netlist.netlist import constant_signal

            # Node 0 is FALSE: phase 0 -> const0, phase 1 -> const1.
            sig = constant_signal(net, phase)
        elif choice.kind == "pi":
            sig = aig.pi_names[node - 1]
        elif choice.kind == "inv":
            src = build(node, 1 - phase)
            sig = net.add_gate(net.fresh_name("minv"), INV, [src],
                               cell=inv_cell.name)
        else:
            cell, perm, cut = choice.cell, choice.perm, choice.cut
            # pin j of the cell reads leaf perm[j] in the phase the
            # match's mask dictates.
            ins = [
                build(cut[perm[j]], (choice.mask >> j) & 1)
                for j in range(cell.nin)
            ]
            sig = net.add_gate(net.fresh_name("m"), cell.func, ins,
                               cell=cell.name)
        memo[key] = sig
        return sig

    for po_lit, po_name in zip(aig.pos, aig.po_names):
        node = lit_node(po_lit)
        phase = 1 if lit_compl(po_lit) else 0
        driver = build(node, phase)
        net.add_po(driver)
    return net
