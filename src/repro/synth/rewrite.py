"""Technology-independent AIG cleanup (the area script's work-horse).

``compress`` rebuilds the AIG through the hashed constructor until a
fixpoint: structural duplicates merge, the one-level boolean rules
(idempotence, absorption, containment) fire on the rebuilt structure,
and unreachable nodes disappear.  This plays the role of the iterated
simplification passes of ``script.rugged`` in our SIS stand-in.
"""

from __future__ import annotations

from typing import Dict

from .aig import Aig, lit_compl, lit_node


def _rebuild(aig: Aig) -> Aig:
    fresh = Aig(aig.pi_names, rules=aig.rules)
    mapping: Dict[int, int] = {0: 0}
    for k in range(len(aig.pi_names)):
        mapping[1 + k] = fresh.pi_lit(k)

    reach = aig.reachable()
    for node in range(1 + len(aig.pi_names), aig.n_nodes):
        if not reach[node] or aig.fanins[node] is None:
            continue
        f0, f1 = aig.fanins[node]
        l0 = mapping[lit_node(f0)] ^ int(lit_compl(f0))
        l1 = mapping[lit_node(f1)] ^ int(lit_compl(f1))
        mapping[node] = fresh.lit_and(l0, l1)
    for po, name in zip(aig.pos, aig.po_names):
        lit = mapping[lit_node(po)] ^ int(lit_compl(po))
        fresh.add_po(lit, name)
    return fresh


def compress(aig: Aig, max_iterations: int = 8) -> Aig:
    """Rebuild to a structural fixpoint."""
    current = aig
    size = current.n_ands
    for _ in range(max_iterations):
        current = _rebuild(current)
        reach = current.reachable()
        live = sum(
            1 for n in range(current.n_nodes)
            if reach[n] and current.fanins[n] is not None
        )
        if live == size:
            break
        size = live
    return current


def live_ands(aig: Aig) -> int:
    """Number of AND nodes in some PO cone."""
    reach = aig.reachable()
    return sum(
        1 for n in range(aig.n_nodes)
        if reach[n] and aig.fanins[n] is not None
    )
