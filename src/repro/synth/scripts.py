"""Synthesis scripts — stand-ins for the SIS flows used in Sec. 6.

* :func:`script_rugged` plays ``script.rugged`` + ``map -n 1``: area-
  oriented cleanup followed by area-mode mapping.  Used before GDO in
  the Table-1 experiments.
* :func:`script_delay` plays ``script.delay`` + ``map -n 1``: cleanup,
  depth balancing, and delay-mode mapping.  Used before GDO in the
  Table-2 experiments.
"""

from __future__ import annotations

from typing import Optional

from ..library.cells import TechLibrary
from ..netlist.netlist import Netlist
from .aig import aig_from_netlist
from .balance import balance
from .mapper import map_aig
from .rewrite import compress


def script_rugged(net: Netlist, library: TechLibrary,
                  name: Optional[str] = None, era: str = "1995") -> Netlist:
    """Area-oriented synthesis + area mapping (Table 1 front-end).

    ``era="1995"`` reproduces the experimental conditions GDO was built
    for: sweep-strength cleanup (pure structural hashing) and DAGON tree
    mapping, which — like SIS's ``map`` — never optimizes across fanout
    points and therefore leaves the redundant reconvergent structure of
    circuits like C6288 in the mapped netlist.  ``era="modern"`` uses
    boolean rewriting rules and global cut mapping instead; the
    ``bench_frontends`` ablation shows it removes most of the rewiring
    potential GDO feeds on.
    """
    faithful = _check_era(era)
    aig = compress(aig_from_netlist(net, rules=not faithful))
    mapped = map_aig(aig, library, mode="area", name=name or net.name,
                     tree=faithful)
    library.rebind(mapped)
    mapped.validate()
    return mapped


def script_delay(net: Netlist, library: TechLibrary,
                 name: Optional[str] = None, era: str = "1995") -> Netlist:
    """Delay-oriented synthesis + delay mapping (Table 2 front-end)."""
    faithful = _check_era(era)
    aig = compress(aig_from_netlist(net, rules=not faithful))
    aig = balance(aig)
    aig = compress(aig)
    mapped = map_aig(aig, library, mode="delay", name=name or net.name,
                     tree=faithful)
    library.rebind(mapped)
    mapped.validate()
    return mapped


def _check_era(era: str) -> bool:
    if era not in ("1995", "modern"):
        raise ValueError("era must be '1995' or 'modern'")
    return era == "1995"
