"""Depth-oriented AIG balancing (the delay script's work-horse).

Collects maximal AND-trees (following non-complemented AND edges with a
single reference) and rebuilds each as a delay-balanced tree, combining
the two shallowest operands first — the AIG analogue of SIS's
``reduce_depth``/``speed_up`` style restructuring used in
``script.delay``.
"""

from __future__ import annotations

from typing import Dict, List

from .aig import Aig, lit_compl, lit_node


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced rebuild of ``aig``."""
    fresh = Aig(aig.pi_names, rules=aig.rules)
    mapping: Dict[int, int] = {0: 0}
    for k in range(len(aig.pi_names)):
        mapping[1 + k] = fresh.pi_lit(k)
    refs = aig.refs()
    level_cache: Dict[int, int] = {}

    def new_level(lit: int) -> int:
        node = lit_node(lit)
        if node not in level_cache:
            if fresh.fanins[node] is None:
                level_cache[node] = 0
            else:
                f0, f1 = fresh.fanins[node]
                level_cache[node] = 1 + max(new_level(f0), new_level(f1))
        return level_cache[node]

    def collect(node: int, out: List[int]) -> None:
        """Leaves of the maximal single-fanout AND-tree rooted here."""
        f0, f1 = aig.fanins[node]
        for lit in (f0, f1):
            sub = lit_node(lit)
            if (not lit_compl(lit) and aig.fanins[sub] is not None
                    and refs[sub] == 1):
                collect(sub, out)
            else:
                out.append(lit)

    def rebuilt_lit(lit: int) -> int:
        return mapping[lit_node(lit)] ^ int(lit_compl(lit))

    reach = aig.reachable()
    for node in range(1 + len(aig.pi_names), aig.n_nodes):
        if not reach[node] or aig.fanins[node] is None:
            continue
        leaves: List[int] = []
        collect(node, leaves)
        operands = [rebuilt_lit(l) for l in leaves]
        # Huffman-style: combine the two shallowest operands first.
        operands.sort(key=new_level, reverse=True)
        while len(operands) > 1:
            a = operands.pop()
            b = operands.pop()
            combined = fresh.lit_and(a, b)
            # insert keeping descending level order
            lv = new_level(combined)
            pos = len(operands)
            while pos > 0 and new_level(operands[pos - 1]) < lv:
                pos -= 1
            operands.insert(pos, combined)
        mapping[node] = operands[0]
    for po, name in zip(aig.pos, aig.po_names):
        fresh.add_po(rebuilt_lit(po), name)
    return fresh
