"""Synthesis substrate: AIG, cleanup, balancing, technology mapping."""

from .aig import Aig, aig_from_netlist, lit_compl, lit_node, lit_not, make_lit, netlist_from_aig
from .balance import balance
from .mapper import MappingError, PatternTable, map_aig, map_netlist
from .rewrite import compress, live_ands
from .scripts import script_delay, script_rugged

__all__ = [
    "Aig", "aig_from_netlist", "lit_compl", "lit_node", "lit_not",
    "make_lit", "netlist_from_aig", "balance", "MappingError",
    "PatternTable", "map_aig", "map_netlist", "compress", "live_ands",
    "script_delay", "script_rugged",
]
