"""And-inverter graph (AIG) with structural hashing.

The technology-independent representation used by the synthesis
substrate (our stand-in for SIS).  Nodes are 2-input ANDs; edges carry
optional complement flags.  A *literal* is ``2*node + complement``.
Node 0 is the constant FALSE, nodes ``1..n_pis`` are the primary inputs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.netlist import Netlist

FALSE_LIT = 0
TRUE_LIT = 1


def lit_not(lit: int) -> int:
    return lit ^ 1


def lit_node(lit: int) -> int:
    return lit >> 1


def lit_compl(lit: int) -> bool:
    return bool(lit & 1)


def make_lit(node: int, compl: bool = False) -> int:
    return (node << 1) | int(compl)


class Aig:
    """Structurally hashed AIG.

    ``rules=False`` disables the one-level boolean rewriting rules
    (idempotence/absorption/containment) so only plain structural
    hashing remains — the fidelity mode matching a 1995 ``sweep``.
    """

    def __init__(self, pi_names: Sequence[str], rules: bool = True):
        self.pi_names: List[str] = list(pi_names)
        self.rules = rules
        # fanins[i] = (lit0, lit1) for AND nodes; None for const/PIs.
        self.fanins: List[Optional[Tuple[int, int]]] = [None] * (
            1 + len(self.pi_names)
        )
        self.pos: List[int] = []
        self.po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.fanins)

    @property
    def n_ands(self) -> int:
        return self.n_nodes - 1 - len(self.pi_names)

    def is_pi(self, node: int) -> bool:
        return 1 <= node <= len(self.pi_names)

    def is_and(self, node: int) -> bool:
        return self.fanins[node] is not None

    def pi_lit(self, index: int) -> int:
        return make_lit(1 + index)

    def pi_lit_by_name(self, name: str) -> int:
        return self.pi_lit(self.pi_names.index(name))

    def add_po(self, lit: int, name: str) -> None:
        self.pos.append(lit)
        self.po_names.append(name)

    # ------------------------------------------------------------------
    # construction with one-level rewriting rules
    # ------------------------------------------------------------------
    def lit_and(self, a: int, b: int) -> int:
        if a > b:
            a, b = b, a
        # constants / trivialities
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE_LIT
        # absorption / containment one-level lookahead:
        for x, y in ((a, b), (b, a)) if self.rules else ():
            node = lit_node(y)
            if self.is_and(node):
                f0, f1 = self.fanins[node]
                if not lit_compl(y):
                    # x & (f0 & f1)
                    if x == f0 or x == f1:
                        return y           # idempotence
                    if x == lit_not(f0) or x == lit_not(f1):
                        return FALSE_LIT   # contradiction
                else:
                    # x & ~(f0 & f1)
                    if x == lit_not(f0) or x == lit_not(f1):
                        return x           # a & ~(... ~a ...) = a? no:
                        # x & ~(f0&f1) with f_i = ~x: f0&f1 is 0 when x=1,
                        # so the complemented node is 1: result x.
                    if x == f0:
                        # x & ~(x & f1) = x & ~f1
                        return self.lit_and(x, lit_not(f1))
                    if x == f1:
                        return self.lit_and(x, lit_not(f0))
        key = (a, b)
        found = self._strash.get(key)
        if found is not None:
            return make_lit(found)
        node = len(self.fanins)
        self.fanins.append(key)
        self._strash[key] = node
        return make_lit(node)

    def lit_or(self, a: int, b: int) -> int:
        return lit_not(self.lit_and(lit_not(a), lit_not(b)))

    def lit_xor(self, a: int, b: int) -> int:
        return self.lit_or(
            self.lit_and(a, lit_not(b)), self.lit_and(lit_not(a), b)
        )

    def lit_mux(self, sel: int, d1: int, d0: int) -> int:
        """``sel ? d1 : d0``."""
        return self.lit_or(self.lit_and(sel, d1),
                           self.lit_and(lit_not(sel), d0))

    def lit_and_many(self, lits: Sequence[int]) -> int:
        acc = TRUE_LIT
        for lit in lits:
            acc = self.lit_and(acc, lit)
        return acc

    def lit_or_many(self, lits: Sequence[int]) -> int:
        acc = FALSE_LIT
        for lit in lits:
            acc = self.lit_or(acc, lit)
        return acc

    # ------------------------------------------------------------------
    def levels(self) -> List[int]:
        level = [0] * self.n_nodes
        for node in range(1 + len(self.pi_names), self.n_nodes):
            f0, f1 = self.fanins[node]
            level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return level

    def depth(self) -> int:
        level = self.levels()
        return max((level[lit_node(po)] for po in self.pos), default=0)

    def refs(self) -> List[int]:
        """Fanout counts (POs included)."""
        counts = [0] * self.n_nodes
        for node in range(self.n_nodes):
            fin = self.fanins[node]
            if fin is not None:
                counts[lit_node(fin[0])] += 1
                counts[lit_node(fin[1])] += 1
        for po in self.pos:
            counts[lit_node(po)] += 1
        return counts

    def reachable(self) -> List[bool]:
        """Nodes in some PO's transitive fanin (plus const/PIs)."""
        mark = [False] * self.n_nodes
        mark[0] = True
        for k in range(len(self.pi_names)):
            mark[1 + k] = True
        stack = [lit_node(po) for po in self.pos]
        while stack:
            node = stack.pop()
            if mark[node]:
                continue
            mark[node] = True
            fin = self.fanins[node]
            if fin is not None:
                stack.append(lit_node(fin[0]))
                stack.append(lit_node(fin[1]))
        return mark


# ----------------------------------------------------------------------
# conversions
# ----------------------------------------------------------------------
def aig_from_netlist(net: Netlist, rules: bool = True) -> Aig:
    """Flatten a gate netlist into a structurally hashed AIG."""
    aig = Aig(net.pis, rules=rules)
    lit: Dict[str, int] = {
        pi: aig.pi_lit(k) for k, pi in enumerate(net.pis)
    }
    for out in net.topo_order():
        gate = net.gates[out]
        ins = [lit[s] for s in gate.inputs]
        name = gate.func.name
        if name == "CONST0":
            value = FALSE_LIT
        elif name == "CONST1":
            value = TRUE_LIT
        elif name == "BUF":
            value = ins[0]
        elif name == "INV":
            value = lit_not(ins[0])
        elif name == "AND":
            value = aig.lit_and_many(ins)
        elif name == "NAND":
            value = lit_not(aig.lit_and_many(ins))
        elif name == "OR":
            value = aig.lit_or_many(ins)
        elif name == "NOR":
            value = lit_not(aig.lit_or_many(ins))
        elif name == "XOR":
            value = aig.lit_xor(ins[0], ins[1])
        elif name == "XNOR":
            value = lit_not(aig.lit_xor(ins[0], ins[1]))
        elif name == "AOI21":
            value = lit_not(aig.lit_or(aig.lit_and(ins[0], ins[1]), ins[2]))
        elif name == "OAI21":
            value = lit_not(aig.lit_and(aig.lit_or(ins[0], ins[1]), ins[2]))
        elif name == "AOI22":
            value = lit_not(aig.lit_or(
                aig.lit_and(ins[0], ins[1]), aig.lit_and(ins[2], ins[3])))
        elif name == "OAI22":
            value = lit_not(aig.lit_and(
                aig.lit_or(ins[0], ins[1]), aig.lit_or(ins[2], ins[3])))
        elif name == "MUX21":
            value = aig.lit_mux(ins[2], ins[1], ins[0])
        elif name == "MAJ3":
            value = aig.lit_or_many([
                aig.lit_and(ins[0], ins[1]),
                aig.lit_and(ins[0], ins[2]),
                aig.lit_and(ins[1], ins[2]),
            ])
        elif name == "ANDN":
            value = aig.lit_and(ins[0], lit_not(ins[1]))
        elif name == "ORN":
            value = aig.lit_or(ins[0], lit_not(ins[1]))
        else:
            raise ValueError(f"cannot flatten gate function {name!r}")
        lit[out] = value
    for po in net.pos:
        aig.add_po(lit[po], po)
    return aig


def netlist_from_aig(aig: Aig, name: str = "aig") -> Netlist:
    """Naive AND/INV netlist from an AIG (for testing; mapping is the
    production path)."""
    net = Netlist(name)
    for pi in aig.pi_names:
        net.add_pi(pi)
    reach = aig.reachable()
    sig: Dict[int, str] = {}
    for k, pi in enumerate(aig.pi_names):
        sig[1 + k] = pi

    def lit_signal(lit: int) -> str:
        node = lit_node(lit)
        if node == 0:
            base = None
            from ..netlist.netlist import constant_signal

            base = constant_signal(net, 0)
        else:
            base = sig[node]
        if not lit_compl(lit):
            return base
        inv_name = f"{base}_bar"
        if not net.has_signal(inv_name):
            net.add_gate(inv_name, "INV", [base])
        return inv_name

    for node in range(1 + len(aig.pi_names), aig.n_nodes):
        if not reach[node]:
            continue
        f0, f1 = aig.fanins[node]
        out = f"n{node}"
        net.add_gate(out, "AND", [lit_signal(f0), lit_signal(f1)])
        sig[node] = out
    for po_lit, po_name in zip(aig.pos, aig.po_names):
        driver = lit_signal(po_lit)
        if net.has_signal(po_name) or po_name == driver:
            net.add_po(driver)
        else:
            net.add_gate(po_name, "BUF", [driver])
            net.add_po(po_name)
    return net
