"""Single-C2-clause transformation: inserting a 2-input gate on a
connection (Fig. 2 of the paper).

A valid C2-clause ``(~Oa + ~a + b)`` permits cutting the connection
carrying ``a`` into gate G2 and feeding G2 from a new AND(a, b) instead
— the "permissible bridge" of [Rohfleisch/Brglez].  The insertion itself
gains nothing, but it perturbs the network so that other signals become
stuck-at redundant; redundancy removal then collects the gain (the
strategy of [Kunz/Menon] and [Cheng/Entrena] referenced in Sec. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..library.cells import TechLibrary
from ..netlist.edit import insert_gate, replace_input, would_create_cycle
from ..netlist.gatefunc import AND, GateFunc, OR
from ..netlist.netlist import Branch, Netlist
from ..sim.observability import ObservabilityEngine
from ..clauses.theory import Clause, ObsLit, SigLit
from .substitution import TransformError


@dataclass
class Insertion:
    """Insert ``func(a, side)`` in place of branch ``target`` (which
    currently carries ``a``)."""

    target: Branch
    side: str
    func: GateFunc = AND

    def clause(self, net: Netlist) -> Clause:
        """The single C2-clause whose validity permits the insertion."""
        a = self.target
        if self.func is AND:
            # (~Oa + ~a + side): when observable and a=1, side must be 1.
            return Clause([ObsLit(a, False), SigLit(a, False),
                           SigLit(self.side, True)])
        if self.func is OR:
            return Clause([ObsLit(a, False), SigLit(a, True),
                           SigLit(self.side, False)])
        raise ValueError("insertion supports AND and OR bridges")

    def holds_on(self, engine: ObservabilityEngine) -> bool:
        return self.clause(engine.sim.net).holds_on(engine)


def apply_insertion(
    net: Netlist,
    insertion: Insertion,
    library: Optional[TechLibrary] = None,
) -> str:
    """Execute the insertion; returns the new gate's output signal."""
    branch = insertion.target
    if branch.gate not in net.gates or branch.pin >= net.gates[branch.gate].nin:
        raise TransformError(f"branch {branch} no longer exists")
    if not net.has_signal(insertion.side):
        raise TransformError(f"side signal {insertion.side!r} does not exist")
    if would_create_cycle(net, branch.gate, insertion.side):
        raise TransformError("insertion would create a cycle")
    a_sig = net.gates[branch.gate].inputs[branch.pin]
    cell = library.cell_for(insertion.func, 2) if library is not None else None
    new_sig = insert_gate(net, insertion.func, [a_sig, insertion.side],
                          cell=cell.name if cell else None, hint="bridge")
    replace_input(net, branch, new_sig)
    return new_sig


def candidate_insertions(
    engine: ObservabilityEngine,
    target: Branch,
    pool: List[str],
    func: GateFunc = AND,
) -> List[Insertion]:
    """Insertions on ``target`` whose C2-clause survives simulation."""
    net = engine.sim.net
    obs = engine.branch_observability(target)
    a_val = engine.value(net.gates[target.gate].inputs[target.pin])
    active = (obs & a_val) if func is AND else (obs & ~a_val)
    out: List[Insertion] = []
    for side in pool:
        side_val = engine.value(side)
        blocked = active & (~side_val if func is AND else side_val)
        if not np.any(blocked):
            out.append(Insertion(target, side, func))
    return out
