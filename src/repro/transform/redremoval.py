"""C1-clauses as transformations: redundancy removal.

Thin bridge between the clause view (a valid C1-clause ``(~Oa + a)``)
and the fault view (``a`` stuck-at-1 redundant) — Sec. 3's first
correspondence.  The heavy lifting lives in :mod:`repro.atpg.redundancy`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..atpg.faults import Fault
from ..atpg.redundancy import remove_redundancy
from ..atpg.satatpg import is_redundant
from ..netlist.netlist import Branch, Netlist
from ..sim.observability import ObservabilityEngine
from ..clauses.theory import Clause, SigLit


def c1_fault(clause: Clause) -> Fault:
    """The stuck-at fault described by a C1-clause.

    ``(~Oa + a)``  -> a stuck-at-1 (value always 1 when observed),
    ``(~Oa + ~a)`` -> a stuck-at-0.
    """
    sig_lits = [l for l in clause.literals if isinstance(l, SigLit)]
    if len(sig_lits) != 1:
        raise ValueError("not a C1-clause")
    lit = sig_lits[0]
    return Fault(lit.ref, 1 if lit.positive else 0)


def valid_c1_candidates(
    engine: ObservabilityEngine, refs: Optional[List[Branch]] = None
) -> List[Fault]:
    """Branch C1-clauses that survive simulation, as faults."""
    net = engine.sim.net
    if refs is None:
        refs = [b for s in net.signals() for b in net.fanouts(s)]
    out: List[Fault] = []
    for branch in refs:
        obs = engine.branch_observability(branch)
        val = engine.value(net.gates[branch.gate].inputs[branch.pin])
        if not np.any(obs & ~val):
            out.append(Fault(branch, 1))
        if not np.any(obs & val):
            out.append(Fault(branch, 0))
    return out


def prove_and_remove_c1(
    net: Netlist,
    fault: Fault,
    max_conflicts: Optional[int] = 100_000,
) -> bool:
    """Prove one C1 candidate redundant and, if so, remove it."""
    if is_redundant(net, fault, max_conflicts=max_conflicts):
        remove_redundancy(net, fault)
        return True
    return False
