"""Applying and proving OS2/IS2/OS3/IS3 substitutions.

The simulation filter (:mod:`repro.clauses.candidates`) only shows that
no sampled vector refutes a PVCC; permissibility (Definition 2) must be
*proven*.  Per Sec. 4 this is done either by "ATPG" — here, a SAT query
on the miter of original vs. modified circuit (satisfiable iff some test
vector distinguishes them, exactly Larrabee's formulation) — or by
BDD-based verification of the two circuits.  Both operate on the cones
of the primary outputs reachable from the substitution point, which is
what keeps global optimization of large circuits feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..bdd.bdd import BddBudgetExceeded
from ..bdd.circuit_bdd import bdd_equivalent
from ..library.cells import TechLibrary
from ..netlist.edit import (
    find_inverted, insert_gate, prune_dangling, replace_input,
    substitute_stem, would_create_cycle,
)
from ..netlist.gatefunc import INV
from ..netlist.netlist import Branch, Gate, Netlist, NetlistError
from ..netlist.traverse import extract_cone
from ..sat.miter import miter_equivalent
from ..sat.solver import SolverBudgetExceeded
from ..clauses.pvcc import Candidate
from .realize import realize_form


class TransformError(Exception):
    """A substitution could not be applied to the netlist."""


@dataclass
class AppliedSubstitution:
    """Record of one executed substitution."""

    candidate: Candidate
    replacement: str
    added_gates: List[str] = field(default_factory=list)
    removed_gates: List[Gate] = field(default_factory=list)

    def area_delta(self, library: TechLibrary, net: Netlist) -> float:
        """Area change (negative = area saved)."""
        added = sum(
            library.gate_area(net.gates[g])
            for g in self.added_gates if g in net.gates
        )
        removed = sum(library.gate_area(g) for g in self.removed_gates)
        return added - removed


# ----------------------------------------------------------------------
# application
# ----------------------------------------------------------------------
def apply_candidate(
    net: Netlist,
    cand: Candidate,
    library: Optional[TechLibrary] = None,
    prune: bool = True,
) -> AppliedSubstitution:
    """Execute the substitution on ``net`` (mutating it).

    Performs structural sanity checks (sources exist, no cycle) but NOT
    the permissibility proof — call :func:`prove_candidate` first.
    """
    added: List[str] = []
    replacement = _build_replacement(net, cand, library, added)

    def bail(reason: str) -> None:
        for sig in reversed(added):
            if sig in net.gates and net.fanout_count(sig) == 0:
                del net.gates[sig]
        net.invalidate()
        raise TransformError(reason)

    if isinstance(cand.target, Branch):
        if cand.target.gate not in net.gates or \
                cand.target.pin >= net.gates[cand.target.gate].nin:
            bail(f"branch {cand.target} no longer exists")
        if would_create_cycle(net, cand.target.gate, replacement):
            bail(f"{cand.describe()} would create a cycle")
        old = replace_input(net, cand.target, replacement)
        roots = [old]
    else:
        if not net.has_signal(cand.target):
            bail(f"stem {cand.target!r} no longer exists")
        if cand.target in net.transitive_fanin(replacement):
            bail(f"{cand.describe()} would create a cycle")
        substitute_stem(net, cand.target, replacement)
        roots = [cand.target]
    removed = prune_dangling(net, roots=roots) if prune else []
    if library is not None:
        for sig in added:
            gate = net.gates[sig]
            cell = library.cell_for(gate.func, gate.nin)
            gate.cell = cell.name if cell is not None else None
    return AppliedSubstitution(
        candidate=cand, replacement=replacement,
        added_gates=added, removed_gates=removed,
    )


def _build_replacement(
    net: Netlist,
    cand: Candidate,
    library: Optional[TechLibrary],
    added: List[str],
) -> str:
    for src in cand.sources:
        if not net.has_signal(src):
            raise TransformError(f"source {src!r} no longer exists")
    if cand.kind in ("OS2", "IS2"):
        sig = cand.sources[0]
        if not cand.inverted:
            return sig
        existing = find_inverted(net, sig)
        if existing is not None:
            return existing
        inv_cell = library.cell_for(INV, 1) if library is not None else None
        try:
            name = insert_gate(net, INV, [sig],
                               cell=inv_cell.name if inv_cell else None,
                               hint="gdo_inv")
        except NetlistError as exc:
            # add_gate now validates arity/self-loops eagerly; surface
            # the rejection in the transform layer's own vocabulary.
            raise TransformError(str(exc)) from None
        added.append(name)
        return name
    func, swap = realize_form(cand.form)
    b, c = cand.sources
    if swap:
        b, c = c, b
    cell = library.cell_for(func, 2) if library is not None else None
    try:
        name = insert_gate(net, func, [b, c],
                           cell=cell.name if cell else None, hint="gdo")
    except NetlistError as exc:
        raise TransformError(str(exc)) from None
    added.append(name)
    return name


# ----------------------------------------------------------------------
# in-place application with undo (GDO's trial evaluation)
# ----------------------------------------------------------------------
class InplaceSubstitution:
    """One substitution applied directly to the live netlist, plus the
    edit log needed to take it back.

    GDO evaluates hundreds of trial candidates per adoption; copying the
    whole netlist for each makes every trial O(net).  Applying in place
    and undoing on rejection makes a trial O(cone): the record holds the
    rewired pins' previous signals, the pruned gate objects, and the
    pre-edit PO list, and :meth:`undo` replays them in reverse.

    ``dirty``/``removed`` describe the edit in the incremental engines'
    contract (see :func:`repro.netlist.edit.dirty_between`) without a
    netlist diff, and ``area_delta`` is the exact area change.
    """

    def __init__(self, net: Netlist, candidate: Candidate,
                 replacement: str):
        self._net = net
        self.candidate = candidate
        self.replacement = replacement
        self.added_gates: List[str] = []
        self.removed_gates: List[Gate] = []
        self.rewired: List[Tuple[Branch, str]] = []
        self.old_pos: Optional[List[str]] = None
        self.dirty: Set[str] = set()
        self.removed: Set[str] = set()
        self.area_delta = 0.0
        self.fan_patched = False
        # Pre-edit derived-structure caches; structurally valid again
        # after undo, so restoring them saves a rebuild per trial.
        self._saved_caches = (net._fanouts, net._topo)

    @property
    def old_branch_signal(self) -> str:
        """Pre-edit signal of the target pin (branch substitutions)."""
        return self.rewired[0][1]

    def undo(self, net: Netlist) -> None:
        """Take the substitution back.  ``net`` is the edited netlist —
        usually the live one, but a copy of it works too (gate names
        match), which is how the prover reconstructs the original."""
        for gate in reversed(self.removed_gates):
            net.gates[gate.output] = gate
        for branch, old in reversed(self.rewired):
            net.gates[branch.gate].inputs[branch.pin] = old
        if self.old_pos is not None:
            net.pos = list(self.old_pos)
        if net is self._net and self.fan_patched:
            # Reverse the fanout-map patch of apply_candidate_inplace
            # while the added gates are still present.
            fan = self._saved_caches[0]
            for gate in self.removed_gates:
                fan.setdefault(gate.output, [])
            for gate in self.removed_gates:
                for pin, s in enumerate(gate.inputs):
                    fan.setdefault(s, []).append(Branch(gate.output, pin))
            for branch, old in reversed(self.rewired):
                fan[self.replacement].remove(branch)
                fan.setdefault(old, []).append(branch)
            for sig in reversed(self.added_gates):
                gate = net.gates[sig]
                for pin, s in enumerate(gate.inputs):
                    fan[s].remove(Branch(sig, pin))
                fan.pop(sig, None)
        for sig in reversed(self.added_gates):
            net.gates.pop(sig, None)
        if net is self._net:
            net._fanouts, net._topo = self._saved_caches
            # The cache restore skips invalidate(); flat views key their
            # staleness off the structure version, so bump it by hand.
            net._struct_version += 1
        else:
            net.invalidate()


def apply_candidate_inplace(
    net: Netlist,
    cand: Candidate,
    library: Optional[TechLibrary] = None,
) -> InplaceSubstitution:
    """Execute the substitution on ``net`` itself, returning an undo
    record.  Same structural checks as :func:`apply_candidate`; raises
    :class:`TransformError` (with ``net`` untouched) when they fail.
    """
    fan = net.fanout_map()  # pre-edit reader map; patched to post-edit below
    record = InplaceSubstitution(net, cand, "")
    added = record.added_gates
    replacement = _build_replacement(net, cand, library, added)
    record.replacement = replacement

    def bail(reason: str) -> None:
        # No rewiring has happened yet, so an added gate can only be read
        # by a later-added gate: reversed deletion is always safe.
        for sig in reversed(added):
            net.gates.pop(sig, None)
        net._fanouts, net._topo = record._saved_caches
        raise TransformError(reason)

    if isinstance(cand.target, Branch):
        sink = net.gates.get(cand.target.gate)
        if sink is None or cand.target.pin >= sink.nin:
            bail(f"branch {cand.target} no longer exists")
        if would_create_cycle(net, cand.target.gate, replacement):
            bail(f"{cand.describe()} would create a cycle")
        old = replace_input(net, cand.target, replacement)
        record.rewired.append((cand.target, old))
        roots = [old]
    else:
        if not net.has_signal(cand.target):
            bail(f"stem {cand.target!r} no longer exists")
        if cand.target in net.transitive_fanin(replacement):
            bail(f"{cand.describe()} would create a cycle")
        record.old_pos = list(net.pos)
        # Rewire off the pre-edit reader map: net.fanouts() would force
        # an O(net) map rebuild after the insertions above invalidated it.
        for branch in list(fan.get(cand.target, ())):
            record.rewired.append((branch, cand.target))
            net.gates[branch.gate].inputs[branch.pin] = replacement
        for idx, po in enumerate(net.pos):
            if po == cand.target:
                net.pos[idx] = replacement
        net.invalidate()
        roots = [cand.target]
    # Reader-count adjustments of this edit, so pruning can reuse the
    # pre-edit fanout map instead of rebuilding one for the mutated net.
    delta: dict = {}
    for branch, old in record.rewired:
        delta[old] = delta.get(old, 0) - 1
        delta[replacement] = delta.get(replacement, 0) + 1
    for sig in added:
        for s in net.gates[sig].inputs:
            delta[s] = delta.get(s, 0) + 1
    record.removed_gates = prune_dangling(
        net, roots=roots, fanout_basis=(fan, delta))
    # Patch the pre-edit fanout map to the post-edit structure and keep
    # it installed: the timing refresh and any later structural queries
    # of this trial stay O(cone) instead of forcing an O(net) rebuild.
    # undo() reverses the patch entry by entry.
    for sig in added:
        gate = net.gates[sig]
        for pin, s in enumerate(gate.inputs):
            fan.setdefault(s, []).append(Branch(sig, pin))
    for branch, old in record.rewired:
        fan[old].remove(branch)
        fan.setdefault(replacement, []).append(branch)
    for gate in record.removed_gates:
        for pin, s in enumerate(gate.inputs):
            fan[s].remove(Branch(gate.output, pin))
    for gate in record.removed_gates:
        fan.pop(gate.output, None)
    net._fanouts = fan
    net._topo = None
    record.fan_patched = True
    if library is not None:
        for sig in added:
            gate = net.gates[sig]
            cell = library.cell_for(gate.func, gate.nin)
            gate.cell = cell.name if cell is not None else None
        record.area_delta = sum(
            library.gate_area(net.gates[g]) for g in added
        ) - sum(library.gate_area(g) for g in record.removed_gates)
    dirty, removed = record.dirty, record.removed
    dirty.add(replacement)
    for sig in added:
        dirty.add(sig)
        dirty.update(net.gates[sig].inputs)
    for branch, old in record.rewired:
        dirty.add(branch.gate)
        dirty.add(old)
    for gate in record.removed_gates:
        removed.add(gate.output)
        dirty.update(gate.inputs)
    record.dirty = {s for s in dirty if net.has_signal(s)}
    return record


# ----------------------------------------------------------------------
# proof backends
# ----------------------------------------------------------------------
def affected_outputs(net: Netlist, cand: Candidate) -> List[int]:
    """Indices of POs whose function a substitution could change."""
    root = cand.target.gate if isinstance(cand.target, Branch) else cand.target
    tfo = net.transitive_fanout(root, include_self=True)
    tfo.add(root)
    return [i for i, po in enumerate(net.pos) if po in tfo]


def _aligned_cones(
    left: Netlist, right: Netlist, po_indices: Sequence[int]
) -> Tuple[Netlist, Netlist]:
    """Cone netlists for the selected POs with identical PI interfaces."""
    l_cone = extract_cone(left, [left.pos[i] for i in po_indices], "left")
    r_cone = extract_cone(right, [right.pos[i] for i in po_indices], "right")
    all_pis = [pi for pi in left.pis if pi in set(l_cone.pis) | set(r_cone.pis)]
    for cone in (l_cone, r_cone):
        have = set(cone.pis)
        for pi in all_pis:
            if pi not in have:
                cone.add_pi(pi)
        cone.pis = [pi for pi in all_pis]
        cone.invalidate()
    return l_cone, r_cone


def prove_candidate(
    net: Netlist,
    cand: Candidate,
    library: Optional[TechLibrary] = None,
    proof: str = "sat",
    max_conflicts: Optional[int] = 200_000,
    bdd_max_nodes: int = 500_000,
) -> bool:
    """Prove permissibility of ``cand`` against ``net``.

    ``proof`` is ``"sat"``, ``"bdd"``, ``"auto"`` (BDD first, SAT on
    budget exhaustion — the paper's observation that BDDs win on small
    and medium cones, ATPG scales further), or ``"none"`` (trust the
    simulation filter; only sound under exhaustive simulation).
    """
    if proof == "none":
        return True
    modified = net.copy(name=net.name + "_mod")
    try:
        apply_candidate(modified, cand, library=library, prune=True)
    except TransformError:
        return False
    return prove_modified(net, modified, cand, proof=proof,
                          max_conflicts=max_conflicts,
                          bdd_max_nodes=bdd_max_nodes)


def prove_modified(
    original: Netlist,
    modified: Netlist,
    cand: Candidate,
    proof: str = "sat",
    max_conflicts: Optional[int] = 200_000,
    bdd_max_nodes: int = 500_000,
) -> bool:
    """Prove ``modified`` (the already-applied substitution ``cand``)
    equivalent to ``original`` on the affected POs.

    This is the proof step for in-place trial evaluation, where the live
    netlist *is* the modified circuit and the original is reconstructed
    via :meth:`InplaceSubstitution.undo` on a copy.
    """
    if proof == "none":
        return True
    po_idx = affected_outputs(original, cand)
    if not po_idx:
        return True
    # The SAT miter hashes shared structure away; the BDD backend builds
    # only the affected-PO cones in one shared manager.  Neither needs
    # explicit cone extraction.
    if proof == "bdd":
        return bdd_equivalent(original, modified, po_indices=po_idx,
                              max_nodes=bdd_max_nodes)
    if proof == "sat":
        try:
            return miter_equivalent(original, modified, po_indices=po_idx,
                                    max_conflicts=max_conflicts)
        except SolverBudgetExceeded:
            return False  # undecided within budget: reject the PVCC
    if proof == "auto":
        try:
            return bdd_equivalent(original, modified, po_indices=po_idx,
                                  max_nodes=bdd_max_nodes)
        except BddBudgetExceeded:
            try:
                return miter_equivalent(original, modified,
                                        po_indices=po_idx,
                                        max_conflicts=max_conflicts)
            except SolverBudgetExceeded:
                return False
    raise ValueError(f"unknown proof backend {proof!r}")
