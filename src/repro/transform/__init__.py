"""Permissible netlist transformations: substitutions, insertions,
redundancy removal."""

from .insertion import Insertion, apply_insertion, candidate_insertions
from .realize import form_cell, form_cell_delay, realize_form
from .redremoval import c1_fault, prove_and_remove_c1, valid_c1_candidates
from .substitution import (
    AppliedSubstitution, InplaceSubstitution, TransformError,
    affected_outputs, apply_candidate, apply_candidate_inplace,
    prove_candidate, prove_modified,
)

__all__ = [
    "Insertion", "apply_insertion", "candidate_insertions",
    "form_cell", "form_cell_delay", "realize_form",
    "c1_fault", "prove_and_remove_c1", "valid_c1_candidates",
    "AppliedSubstitution", "InplaceSubstitution", "TransformError",
    "affected_outputs", "apply_candidate", "apply_candidate_inplace",
    "prove_candidate", "prove_modified",
]
