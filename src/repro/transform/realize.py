"""Realization of phase-assigned 2-input forms as library cells.

Theorem 2 allows OS3/IS3 with "an AND-, OR-, or XOR-gate with a certain
phase assignment to the driving signals".  Every phase assignment maps
onto a standard cell without extra inverters:

=====================  ==================
form                   realization
=====================  ==================
AND(b, c)              AND2(b, c)
AND(b, ~c)             ANDN(b, c)
AND(~b, c)             ANDN(c, b)
AND(~b, ~c)            NOR2(b, c)
OR(b, c)               OR2(b, c)
OR(b, ~c)              ORN(b, c)
OR(~b, c)              ORN(c, b)
OR(~b, ~c)             NAND2(b, c)
XOR / XNOR             XOR2 / XNOR2
=====================  ==================
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..library.cells import Cell, TechLibrary
from ..netlist.gatefunc import (
    AND, ANDN, GateFunc, NAND, NOR, OR, ORN, TwoInputForm, XNOR, XOR,
)


def realize_form(form: TwoInputForm) -> Tuple[GateFunc, bool]:
    """Primitive function and whether (b, c) must be swapped."""
    base = form.base.name
    if base == "AND":
        if not form.inv_b and not form.inv_c:
            return AND, False
        if not form.inv_b and form.inv_c:
            return ANDN, False
        if form.inv_b and not form.inv_c:
            return ANDN, True
        return NOR, False
    if base == "OR":
        if not form.inv_b and not form.inv_c:
            return OR, False
        if not form.inv_b and form.inv_c:
            return ORN, False
        if form.inv_b and not form.inv_c:
            return ORN, True
        return NAND, False
    if base == "XOR":
        return XOR, False
    if base == "XNOR":
        return XNOR, False
    raise ValueError(f"unsupported form base {base!r}")


def form_cell(library: TechLibrary, form: TwoInputForm) -> Optional[Cell]:
    """The library cell realizing ``form``, or None if unavailable."""
    func, _swap = realize_form(form)
    return library.cell_for(func, 2)


def form_cell_delay(
    library: TechLibrary, form: TwoInputForm, load: float
) -> Optional[float]:
    """Worst pin delay of the realizing cell under ``load``."""
    cell = form_cell(library, form)
    if cell is None:
        return None
    return max(p.delay(load) for p in cell.pins)
