"""Partitioned parallel GDO end-to-end speedup (DESIGN.md §12).

Times one full GDO run per side on the same netlist and config:

* serial — ``gdo_optimize`` with ``partition_workers=0``, the ordinary
  single-process engine;
* partitioned — ``partition_workers=4`` over 8 dominator-cone regions,
  region-local runs in forked workers, canonical conflict-checked
  merge.

The C5315 row asserts the >=3x end-to-end floor promised in ISSUE/
DESIGN.md §12; C7552 records the larger-circuit row.  Results append
to ``BENCH_partition.json``.

CI smoke mode (reduced C5315, workers=1 vs workers=2, asserts the
serial-equivalence signature and journal instead of the speedup —
shared runners make timing floors flaky but determinism is exact)::

    PYTHONPATH=src python benchmarks/bench_partition.py --smoke --out DIR
"""

import time
from pathlib import Path

from repro.circuits.registry import build
from repro.library import mcnc_like
from repro.netlist.edit import structural_signature
from repro.obs import (
    ObsConfig, append_bench, bench_entry, git_sha, load_journal,
    strip_volatile, validate_journal,
)
from repro.opt import GdoConfig, gdo_optimize

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_partition.json"

#: C5315 floor asserted here and recorded in BENCH_partition.json
REQUIRED_SPEEDUP = 3.0

WORKERS = 4


def _cfg(workers, **kw):
    base = dict(
        n_words=8, verify_words=16, verify_final=False,
        max_rounds=2, max_passes_per_phase=6,
        max_trials_per_pass=128, max_proofs_per_pass=48,
        partition_workers=workers, partition_regions=8,
        partition_max_rounds=2, partition_min_gates=64,
    )
    base.update(kw)
    return GdoConfig(**base)


def _run(circuit, lib, workers, small=False, **kw):
    net = build(circuit, small=small)
    lib.rebind(net)
    t0 = time.perf_counter()
    result = gdo_optimize(net, lib, _cfg(workers, **kw))
    return time.perf_counter() - t0, result


def measure(circuit, lib):
    """Serial vs workers=4 partitioned wall clock, one run each (both
    sides are deterministic; the serial side dominates the budget)."""
    t_serial, r_serial = _run(circuit, lib, 0)
    t_part, r_part = _run(circuit, lib, WORKERS)
    s = r_part.stats
    return {
        "gates": r_serial.stats.gates_before,
        "workers": WORKERS,
        "regions": s.partition_regions,
        "conflicts": s.partition_conflicts,
        "serial_seconds": round(t_serial, 4),
        "partition_seconds": round(t_part, 4),
        "speedup": round(t_serial / t_part, 3),
        "serial_mods": len(r_serial.stats.history),
        "partition_mods": len(s.history),
        "serial_delay": round(r_serial.stats.delay_after, 4),
        "partition_delay": round(s.delay_after, 4),
    }


def _record(circuit, row):
    append_bench(
        str(_BENCH_PATH),
        bench_entry(key=git_sha(), circuit=circuit, **row),
        key_fields=("key", "circuit"),
    )


def _table(results):
    lines = ["circuit  gates  regions  conflicts  serial[s]  part4[s]"
             "  speedup"]
    for circuit, row in results:
        lines.append(
            f"{circuit:7} {row['gates']:6d} {row['regions']:8d} "
            f"{row['conflicts']:10d} {row['serial_seconds']:10.2f} "
            f"{row['partition_seconds']:9.2f} {row['speedup']:7.2f}x"
        )
    return "\n".join(lines)


def _run_c5315(lib):
    row = measure("C5315", lib)
    _record("C5315", row)
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"C5315 partitioned GDO only {row['speedup']:.2f}x faster "
        f"(needs >= {REQUIRED_SPEEDUP}x)"
    )
    return row


def test_partition_speedup_c5315(lib):
    """Partitioned GDO >=3x end-to-end on C5315 at workers=4."""
    row = _run_c5315(lib)
    from conftest import register_report
    register_report("Partitioned parallel GDO (C5315, workers=4)",
                    _table([("C5315", row)]))


def test_partition_scale_c7552(lib):
    """The larger C7552 row: records timing, requires only that the
    partitioned run actually commits region work."""
    row = measure("C7552", lib)
    _record("C7552", row)
    assert row["partition_mods"] > 0
    from conftest import register_report
    register_report("Partitioned parallel GDO (C7552, workers=4)",
                    _table([("C7552", row)]))


def smoke(out_dir):
    """CI determinism gate: reduced C5315, workers=1 vs workers=2 —
    identical final netlist and identical journal modulo volatile
    fields.  Journals land in ``out_dir`` for artifact upload."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    lib = mcnc_like()
    sides = {}
    for workers in (1, 2):
        journal_path = str(out / f"C5315-w{workers}.jsonl")
        _, result = _run(
            "C5315", lib, workers, small=True,
            max_trials_per_pass=48, max_proofs_per_pass=32,
            partition_regions=4, partition_min_gates=32,
            obs=ObsConfig.full(journal_path=journal_path),
        )
        records = load_journal(journal_path)
        validate_journal(records)
        sides[workers] = (result, records)
    r1, j1 = sides[1]
    r2, j2 = sides[2]
    assert r1.stats.history, "smoke run made no modifications"
    assert structural_signature(r1.net) == structural_signature(r2.net), (
        "workers=1 and workers=2 netlists diverged")
    assert strip_volatile(j1) == strip_volatile(j2), (
        "workers=1 and workers=2 journals diverged")
    print(f"OK: workers=1 == workers=2 on reduced C5315 "
          f"({len(r1.stats.history)} mods, "
          f"{r1.stats.partition_regions} regions, "
          f"{r1.stats.partition_conflicts} conflicts, "
          f"{len(j1)} journal records)")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced determinism check for CI")
    parser.add_argument("--out", default="partition-artifacts",
                        help="journal output directory (smoke mode)")
    args = parser.parse_args(argv)
    if args.smoke:
        smoke(args.out)
        return
    lib = mcnc_like()
    rows = [("C5315", _run_c5315(lib))]
    rows.append(("C7552", measure("C7552", lib)))
    _record("C7552", rows[-1][1])
    print(_table(rows))
    print(f"OK: partitioned GDO {rows[0][1]['speedup']:.2f}x "
          f">= {REQUIRED_SPEEDUP}x on C5315")


if __name__ == "__main__":
    main()
