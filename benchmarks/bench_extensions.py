"""Extension benchmarks: RAR baseline, fanout optimization, and the
implication-graph route to valid clauses.

These cover the paper's §3 context (insertion-based RAR as the indirect
strategy GDO generalizes), the §6 deferred feature ("mapping was done
without fanout optimization"), and the §4 remark that global
implications are an alternative way to compute C2-clauses.
"""


from conftest import register_report
from repro.circuits import array_multiplier, priority_controller
from repro.clauses import ImplicationGraph
from repro.clauses.implications import count_implications
from repro.netlist import Netlist
from repro.opt import optimize_fanout, rar_optimize
from repro.synth import script_rugged
from repro.verify import check_equivalence


def _redundant_block():
    """A control block with absorbed terms (RAR fodder)."""
    net = Netlist("rarblock")
    for pi in "abcdef":
        net.add_pi(pi)
    net.add_gate("t1", "AND", ["a", "b"])
    net.add_gate("u1", "OR", ["a", "t1"])      # == a
    net.add_gate("t2", "AND", ["c", "d"])
    net.add_gate("u2", "OR", ["t2", "c"])      # == c
    net.add_gate("v", "AND", ["u1", "u2"])
    net.add_gate("w", "OR", ["v", "e"])
    net.add_gate("x", "AND", ["w", "f"])
    net.set_pos(["x", "u1"])
    return net


def test_rar_baseline(benchmark, lib):
    net = _redundant_block()

    def run():
        return rar_optimize(net, library=lib, max_iterations=4)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    register_report(
        "RAR BASELINE (Sec. 3 indirect strategy)",
        f"literals {stats.literals_before} -> {stats.literals_after}  "
        f"(insertions={stats.insertions}, removals={stats.removals}, "
        f"equivalent={stats.equivalent})",
    )
    assert stats.equivalent is True
    assert stats.literals_after < stats.literals_before


def test_fanout_optimization(benchmark, lib):
    """The deferred §6 feature measurably helps on a fanout-heavy net."""
    net = Netlist("fan")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("hub", "NAND", ["a", "b"])
    prev = "hub"
    for k in range(6):
        prev = net.add_gate(f"c{k}", "INV", [prev])
    net.add_po(prev)
    for k in range(12):
        net.add_gate(f"s{k}", "INV", ["hub"])
        net.add_po(f"s{k}")
    lib.rebind(net)

    def run():
        return optimize_fanout(net, lib)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    register_report(
        "FANOUT OPTIMIZATION (the paper's deferred extension)",
        f"delay {stats.delay_before:.2f} -> {stats.delay_after:.2f} "
        f"({100 * stats.delay_reduction:.1f}%), "
        f"{stats.buffers_added} buffer(s)",
    )
    assert stats.buffers_added >= 1
    assert stats.delay_after < stats.delay_before
    assert check_equivalence(net, stats.net)


def test_implication_graph_construction(benchmark, lib):
    net = script_rugged(priority_controller(8), lib)

    def run():
        return ImplicationGraph(net)

    graph = benchmark(run)
    n_edges = count_implications(graph)
    assert n_edges > net.num_gates  # every gate contributes implications


def test_static_learning_strictly_richer(benchmark, lib):
    net = script_rugged(priority_controller(6), lib)
    direct = ImplicationGraph(net, learn=False)

    def run():
        return ImplicationGraph(net, learn=True)

    learned = benchmark.pedantic(run, rounds=1, iterations=1)
    d_edges = count_implications(direct)
    l_edges = count_implications(learned)
    register_report(
        "IMPLICATIONS (Sec. 4 alternative to BPFS for C2-clauses)",
        f"direct edges: {d_edges}   with static learning: {l_edges}   "
        f"equivalence pairs: {len(learned.equivalent_signal_pairs())}",
    )
    assert l_edges >= d_edges


def test_implication_equivalences_are_sound(benchmark, lib):
    """Every implication-derived OS2 equivalence is a safe rewrite."""
    from repro.netlist import prune_dangling, substitute_stem

    net = script_rugged(array_multiplier(4, style="nor"), lib)
    graph = ImplicationGraph(net, learn=False)

    def run():
        return graph.equivalent_signal_pairs()

    pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    checked = 0
    for a, b, inverted in pairs[:5]:
        if inverted or net.is_pi(a) or a in net.transitive_fanin(b):
            continue
        work = net.copy()
        substitute_stem(work, a, b)
        prune_dangling(work, roots=[a])
        work.validate()
        assert check_equivalence(net, work), (a, b)
        checked += 1
    # it is fine if the mapped multiplier has no plain-phase pairs
    assert checked >= 0
