"""Substrate engine throughput benchmarks.

Not a paper table — these keep the performance-critical kernels honest:
bit-parallel simulation (the BPFS engine), word-parallel observability,
the CDCL miter, BDD construction, STA, and technology mapping.
"""

import pytest

from repro.bdd import BddManager, build_signal_bdds
from repro.circuits.registry import SMALL_SUITE
from repro.sat import miter_equivalent
from repro.sim import BitSimulator, ObservabilityEngine
from repro.synth import map_netlist, script_rugged
from repro.timing import Sta


@pytest.fixture(scope="module")
def mapped(lib):
    return script_rugged(SMALL_SUITE["C880"](), lib)


def test_bitsim_throughput(benchmark, mapped):
    """Simulate 4096 vectors (64 words) through the mapped netlist."""
    sim = BitSimulator(mapped)

    def run():
        return sim.simulate_random(n_words=64, seed=1)

    state = benchmark(run)
    assert state.n_words == 64


def test_observability_throughput(benchmark, mapped):
    sim = BitSimulator(mapped)
    state = sim.simulate_random(n_words=16, seed=2)
    targets = mapped.topo_order()[-24:]

    def run():
        eng = ObservabilityEngine(sim, state)
        return [eng.stem_observability(t) for t in targets]

    words = benchmark(run)
    assert len(words) == len(targets)


def test_sta_throughput(benchmark, mapped, lib):
    def run():
        sta = Sta(mapped, lib)
        sta.ncp(mapped.topo_order()[-1])
        return sta

    sta = benchmark(run)
    assert sta.delay > 0


def test_miter_throughput(benchmark, mapped):
    twin = mapped.copy()

    def run():
        return miter_equivalent(mapped, twin)

    assert benchmark(run) is True


def test_bdd_build_throughput(benchmark, mapped):
    def run():
        mgr = BddManager(max_nodes=500_000)
        return build_signal_bdds(mapped, mgr, targets=list(mapped.pos))

    bdds = benchmark(run)
    assert all(po in bdds for po in mapped.pos)


def test_mapping_throughput(benchmark, lib):
    source = SMALL_SUITE["C432"]()

    def run():
        return map_netlist(source, lib, mode="area", tree=True)

    mapped = benchmark(run)
    assert mapped.num_gates > 0
