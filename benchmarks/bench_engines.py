"""Substrate engine throughput benchmarks.

Not a paper table — these keep the performance-critical kernels honest:
bit-parallel simulation (the BPFS engine), word-parallel observability,
the CDCL miter, BDD construction, STA, technology mapping, and the
end-to-end gain of the incremental timing/simulation engines inside GDO.
"""

import time
from pathlib import Path

import pytest

from conftest import register_report

from repro.bdd import BddManager, build_signal_bdds
from repro.obs import append_bench, bench_entry, git_sha
from repro.circuits.registry import SMALL_SUITE, build
from repro.opt import GdoConfig, gdo_optimize
from repro.opt.report import format_result
from repro.sat import miter_equivalent
from repro.sim import BitSimulator, ObservabilityEngine
from repro.synth import map_netlist, script_rugged
from repro.timing import Sta


@pytest.fixture(scope="module")
def mapped(lib):
    return script_rugged(SMALL_SUITE["C880"](), lib)


def test_bitsim_throughput(benchmark, mapped):
    """Simulate 4096 vectors (64 words) through the mapped netlist."""
    sim = BitSimulator(mapped)

    def run():
        return sim.simulate_random(n_words=64, seed=1)

    state = benchmark(run)
    assert state.n_words == 64


def test_observability_throughput(benchmark, mapped):
    sim = BitSimulator(mapped)
    state = sim.simulate_random(n_words=16, seed=2)
    targets = mapped.topo_order()[-24:]

    def run():
        eng = ObservabilityEngine(sim, state)
        return [eng.stem_observability(t) for t in targets]

    words = benchmark(run)
    assert len(words) == len(targets)


def test_sta_throughput(benchmark, mapped, lib):
    def run():
        sta = Sta(mapped, lib)
        sta.ncp(mapped.topo_order()[-1])
        return sta

    sta = benchmark(run)
    assert sta.delay > 0


def test_miter_throughput(benchmark, mapped):
    twin = mapped.copy()

    def run():
        return miter_equivalent(mapped, twin)

    assert benchmark(run) is True


def test_bdd_build_throughput(benchmark, mapped):
    def run():
        mgr = BddManager(max_nodes=500_000)
        return build_signal_bdds(mapped, mgr, targets=list(mapped.pos))

    bdds = benchmark(run)
    assert all(po in bdds for po in mapped.pos)


def test_mapping_throughput(benchmark, lib):
    source = SMALL_SUITE["C432"]()

    def run():
        return map_netlist(source, lib, mode="area", tree=True)

    mapped = benchmark(run)
    assert mapped.num_gates > 0


# The GDO end-to-end comparison: `GdoConfig.incremental` swaps the
# maintained STA / dirty-cone simulation / retained observability rows
# for full rebuilds, with bitwise-identical results by construction
# (tests/opt/test_gdo_determinism.py).  SAT proofs are disabled because
# their cost is engine-independent and would only dilute the ratio;
# the modification sequence is still checked identical between modes.
_GDO_BENCH = [
    # (circuit, required end-to-end speedup; None = parity check only)
    ("C1355", None),
    ("C5315", 2.0),  # largest benchmarked circuit
]


def _fingerprint(result):
    return (
        [(h.phase, h.kind, h.description, h.delay_after, h.area_after)
         for h in result.stats.history],
        result.stats.delay_after,
        result.stats.area_after,
        sorted(result.net.gates),
    )


def test_gdo_incremental_speedup(lib):
    """Both engine modes must adopt the same modifications; the
    incremental mode must be >=2x faster end-to-end on the largest
    circuit, with its engine counters visible in the report."""
    rows = ["circuit   gates   scratch[s]   incremental[s]   speedup"]
    flagship = None
    for name, required in _GDO_BENCH:
        net = build(name)
        runs = {}
        for incremental in (False, True):
            cfg = GdoConfig(incremental=incremental, n_words=16,
                            max_rounds=2, proof="none", verify_final=False)
            work = net.copy()
            t0 = time.perf_counter()
            result = gdo_optimize(work, lib, cfg)
            runs[incremental] = (time.perf_counter() - t0, result)
        t_scratch, r_scratch = runs[False]
        t_inc, r_inc = runs[True]
        assert _fingerprint(r_scratch) == _fingerprint(r_inc)
        counters = r_inc.stats.engine
        assert counters.sta_incremental > 0
        assert counters.sim_incremental > 0
        assert r_scratch.stats.engine.sta_incremental == 0
        assert r_scratch.stats.engine.sim_incremental == 0
        speedup = t_scratch / t_inc
        rows.append(
            f"{name:8} {net.num_gates:6d} {t_scratch:11.2f} "
            f"{t_inc:15.2f} {speedup:8.2f}x"
        )
        append_bench(
            str(Path(__file__).resolve().parent.parent
                / "BENCH_engines.json"),
            bench_entry(
                key=git_sha(), circuit=name, gates=net.num_gates,
                scratch_seconds=round(t_scratch, 4),
                incremental_seconds=round(t_inc, 4),
                speedup=round(speedup, 3),
                sta_incremental=counters.sta_incremental,
                sim_incremental=counters.sim_incremental,
            ),
            key_fields=("key", "circuit"),
        )
        if required is not None:
            assert speedup >= required, (
                f"{name}: incremental GDO only {speedup:.2f}x faster "
                f"(needs >= {required}x)"
            )
            flagship = r_inc
    report = "\n".join(rows)
    if flagship is not None:
        report += "\n\n" + format_result(flagship, lib)
    register_report("GDO incremental vs from-scratch engines", report)
