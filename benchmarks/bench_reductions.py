"""Sec. 4 ablation — clause-set reduction before BPFS.

The paper reduces the cubic C3 candidate space with (1) arrival-time
no-loss filtering, (2) reuse of the C2 simulation results ("the number
of considered clauses is thus reduced to some percent", at the cost of
some XOR substitutions), and (3) structural level filtering ("reduce
the number of considered clauses by 90% at a loss of valid clause
combinations of about 10%").

These benchmarks measure enumeration with each filter toggled and
assert the direction of every claim.
"""

import pytest

from conftest import register_report
from repro.circuits.registry import SMALL_SUITE
from repro.clauses import CandidateEnumerator
from repro.sim import BitSimulator, ObservabilityEngine
from repro.synth import script_rugged
from repro.timing import Sta


def _setup(lib, gen):
    net = script_rugged(gen(), lib)
    sta = Sta(net, lib)
    sim = BitSimulator(net)
    eng = ObservabilityEngine(sim, sim.simulate_random(n_words=8, seed=3))
    return net, sta, eng


def _enumerate(net, sta, eng, lib, **kwargs):
    enum = CandidateEnumerator(net, sta, eng, lib, max_pool=64, **kwargs)
    found = []
    for ref in enum.delay_targets()[:16]:
        limit = enum.point_arrival(ref)
        found.extend(enum.three_subs(ref, limit + 5.0))
    return enum.stats, found


@pytest.fixture(scope="module")
def setup(lib):
    return _setup(lib, SMALL_SUITE["9sym"])


def test_c2_reuse_reduces_c3_pairs(benchmark, setup, lib):
    net, sta, eng = setup
    stats_with, found_with = benchmark.pedantic(
        _enumerate, args=(net, sta, eng, lib),
        kwargs=dict(use_c2_reduction=True), rounds=1, iterations=1)
    stats_without, found_without = _enumerate(
        net, sta, eng, lib, use_c2_reduction=False)
    register_report(
        "SEC.4 ABLATION: C2-reuse filter (paper: 'reduced to some "
        "percent', may lose XOR substitutions)",
        f"C3 pairs checked  with reuse: {stats_with.c3_pairs_checked}\n"
        f"C3 pairs checked  w/o  reuse: {stats_without.c3_pairs_checked}\n"
        f"surviving PVCCs   with reuse: {len(found_with)}\n"
        f"surviving PVCCs   w/o  reuse: {len(found_without)}",
    )
    # the filter prunes work ...
    assert stats_with.c3_pairs_checked <= stats_without.c3_pairs_checked
    # ... and never invents candidates
    assert len(found_with) <= len(found_without)


def test_structural_filter_prunes_pool(benchmark, setup, lib):
    net, sta, eng = setup
    stats_skew, found_skew = benchmark.pedantic(
        _enumerate, args=(net, sta, eng, lib),
        kwargs=dict(level_skew=2), rounds=1, iterations=1)
    stats_free, found_free = _enumerate(net, sta, eng, lib, level_skew=None)
    register_report(
        "SEC.4 ABLATION: structural (level-skew) filter (paper: -90% "
        "clauses, ~10% lost combinations)",
        f"pool size  skew<=2: {stats_skew.pool_size}   "
        f"unfiltered: {stats_free.pool_size}\n"
        f"survivors  skew<=2: {len(found_skew)}   "
        f"unfiltered: {len(found_free)}",
    )
    assert stats_skew.pool_size <= stats_free.pool_size
    assert len(found_skew) <= len(found_free)


def test_arrival_filter_is_no_loss_for_gain(benchmark, setup, lib):
    """Filter 1 is lossless w.r.t. *gainful* substitutions: every
    candidate enumerated under a tight arrival limit also appears under
    a looser one."""
    net, sta, eng = setup
    enum = CandidateEnumerator(net, sta, eng, lib, max_pool=64)
    targets = enum.delay_targets()[:8]

    def tight():
        out = []
        for ref in targets:
            out.extend(enum.two_subs(ref, enum.point_arrival(ref)))
        return out

    tight_cands = benchmark(tight)
    loose_cands = []
    for ref in targets:
        loose_cands.extend(enum.two_subs(ref, enum.point_arrival(ref) + 50))
    tight_keys = {(str(c.target), c.sources, c.inverted)
                  for c in tight_cands}
    loose_keys = {(str(c.target), c.sources, c.inverted)
                  for c in loose_cands}
    assert tight_keys <= loose_keys


def test_candidate_space_is_cubic_without_filters(benchmark, lib):
    """The motivating count: N_C3 = n * C(n-1, 2) potential clauses.

    For the mapped 9sym stand-in this already exceeds 10^5 — filters
    are what keep BPFS feasible (the paper's point for n=1000:
    N_C3 = 5e8)."""
    net = benchmark.pedantic(
        script_rugged, args=(SMALL_SUITE["9sym"](), lib),
        rounds=1, iterations=1)
    n = net.num_gates + len(net.pis)
    n_c3 = n * ((n - 1) * (n - 2) // 2)
    assert n_c3 > 1e5
