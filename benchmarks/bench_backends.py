"""Proof-backend ablation — BDD vs SAT ("ATPG") PVCC proofs.

Sec. 4: "validity of the individual PVCCs can be checked via ATPG.
Alternatively ... BDD-based verification of the original circuit versus
the modified circuit.  For small and medium sized circuits, this method
turned out to consume less CPU time.  ATPG, however, enables the
optimization of circuits for which BDD representations become too
large."

We benchmark both backends on the same PVCC population and assert they
agree on every verdict; timings land in the benchmark table, and a BDD
budget blow-up is demonstrated on a multiplier (the paper's reason to
keep ATPG)."""

import time

import pytest

from conftest import register_report
from repro.bdd import BddBudgetExceeded, bdd_equivalent
from repro.circuits import array_multiplier
from repro.circuits.registry import SMALL_SUITE
from repro.clauses import CandidateEnumerator
from repro.sim import BitSimulator, ObservabilityEngine
from repro.synth import script_rugged
from repro.timing import Sta
from repro.transform import prove_candidate


@pytest.fixture(scope="module")
def pvccs(lib):
    """A mixed population of simulation-surviving candidates."""
    net = script_rugged(SMALL_SUITE["C432"](), lib)
    sta = Sta(net, lib)
    sim = BitSimulator(net)
    eng = ObservabilityEngine(sim, sim.simulate_random(n_words=4, seed=7))
    enum = CandidateEnumerator(net, sta, eng, lib, max_pool=48)
    cands = []
    for ref in enum.delay_targets()[:10]:
        cands.extend(
            enum.all_candidates(ref, enum.point_arrival(ref) + 3.0)[:6]
        )
    assert cands, "need a nonempty PVCC population"
    return net, cands[:30]


def test_sat_backend(benchmark, pvccs, lib):
    net, cands = pvccs

    def prove_all():
        return [prove_candidate(net, c, library=lib, proof="sat")
                for c in cands]

    verdicts = benchmark(prove_all)
    assert any(verdicts) or not all(verdicts)  # population exercised


def test_bdd_backend_agrees_with_sat(benchmark, pvccs, lib):
    net, cands = pvccs

    def prove_all():
        return [prove_candidate(net, c, library=lib, proof="bdd")
                for c in cands]

    bdd_verdicts = benchmark(prove_all)
    sat_verdicts = [prove_candidate(net, c, library=lib, proof="sat")
                    for c in cands]
    assert bdd_verdicts == sat_verdicts
    register_report(
        "BACKEND ABLATION: verdicts",
        f"{len(cands)} PVCCs, {sum(bdd_verdicts)} proven valid "
        f"(SAT and BDD agree on all)",
    )


def test_auto_backend(benchmark, pvccs, lib):
    net, cands = pvccs

    def prove_all():
        return [prove_candidate(net, c, library=lib, proof="auto")
                for c in cands]

    auto_verdicts = benchmark(prove_all)
    sat_verdicts = [prove_candidate(net, c, library=lib, proof="sat")
                    for c in cands]
    assert auto_verdicts == sat_verdicts


def test_bdd_budget_blowup_on_multiplier(benchmark, lib):
    """The paper keeps ATPG because BDDs blow up; a multiplier's output
    BDD exceeds a small node budget while the SAT miter finishes."""
    net = script_rugged(array_multiplier(6, style="csa"), lib)
    other = net.copy()

    def sat_side():
        from repro.sat import miter_equivalent

        return miter_equivalent(net, other)

    assert benchmark(sat_side) is True
    with pytest.raises(BddBudgetExceeded):
        bdd_equivalent(net, other, max_nodes=2_000)
