"""Chaos soak: the self-healing service under seeded fault injection.

The robustness claim (DESIGN.md §11): with the deterministic fault
plane firing crashes, hangs, torn writes, flaky proof backends, and
lease races across the whole stack, the supervised service still loses
**zero** jobs and corrupts **zero** results — and because every fault
schedule is a pure function of ``(seed, job name)``, the entire soak
is exactly reproducible from its seed.

Acceptance, asserted below and exported to ``BENCH_chaos.json``:

* every submitted job reaches ``done`` (no failures, no dead-letters);
* every result netlist is SAT-miter-equivalent to its INPUT netlist
  (signature equality is *not* enough — backend faults legitimately
  change which modifications commit);
* the recorded per-job fault activations replay exactly against the
  plan's schedule;
* completion-time inflation under chaos stays bounded.
"""

import fnmatch
import json
import os
import time
from pathlib import Path

from conftest import register_report

from repro.circuits.alu import priority_controller
from repro.circuits.control import random_control
from repro.faults import PLAN_ENV, FaultPlan, FaultPlane, FaultSpec
from repro.io import parse_netlist, write_blif
from repro.obs import append_bench, git_sha, validate_chaos_entry
from repro.obs.journal import event_counts, load_events
from repro.service import JobQueue, JobSpec, Supervisor, WorkerPool
from repro.service.server import service_stats
from repro.verify.equiv import check_equivalence

#: proof-heavy-enough settings: every job dispatches real SAT proofs
#: (so the store/backend fault points actually evaluate) but stays
#: sub-second, keeping a 50+ job soak CI-friendly.
OVERRIDES = {"n_words": 2, "max_rounds": 1, "verify_final": False,
             "static_funnel": False, "proof_workers": 1,
             "max_seconds": 60.0}

CHAOS_SEED = 1995
JOBS_FLOOR = 50
#: CI's chaos-smoke runs a reduced mix (REPRO_CHAOS_JOBS=20); the
#: committed BENCH_chaos.json entry comes from the full 52-job soak.
N_JOBS = int(os.environ.get("REPRO_CHAOS_JOBS", "52"))
WORKERS = 4
MAX_ATTEMPTS = 5
STALL_TIMEOUT = 2.0
#: chaos wall bound: crashes re-run jobs and every hang costs a
#: watchdog window, but inflation must stay bounded, not open-ended.
INFLATION_CAP = 10.0
INFLATION_SLACK = 20.0  # absolute seconds, for near-zero baselines

#: the randomized-but-seeded chaos plan.  ``max_fires`` caps are
#: *lifetime* caps (workers preload recorded fires on retry), which is
#: what bounds each job's attempt count under the retry budget.
PLAN = FaultPlan(seed=CHAOS_SEED, specs=(
    FaultSpec(pattern="worker.job.crash", prob=0.10, max_fires=1),
    FaultSpec(pattern="worker.job.hang", prob=0.04, max_fires=1,
              arg=8.0),
    FaultSpec(pattern="io.parse.truncated", prob=0.06, max_fires=1),
    FaultSpec(pattern="journal.record.crash", prob=0.001, max_fires=1,
              arg=1.0),
    FaultSpec(pattern="store.append.error", prob=0.03),
    FaultSpec(pattern="store.append.torn", prob=0.01),
    FaultSpec(pattern="store.fsync.error", prob=0.05),
    FaultSpec(pattern="proof.backend.flaky", prob=0.02),
    FaultSpec(pattern="proof.backend.timeout", prob=0.01),
    FaultSpec(pattern="proof.backend.slow", prob=0.03, arg=0.002),
    FaultSpec(pattern="proof.pool.break", prob=0.02, max_fires=1),
    FaultSpec(pattern="queue.lease.race", prob=0.05, max_fires=1),
))


def _circuit_blifs(lib):
    nets = {
        "rc_tiny": random_control(8, 24, 4, seed=7, locality=8,
                                  name="rc_tiny"),
        "prio4": priority_controller(4, name="prio4"),
        "rc_mid": random_control(10, 40, 6, seed=9, locality=8,
                                 name="rc_mid"),
    }
    for net in nets.values():
        lib.rebind(net)
    return {key: write_blif(net) for key, net in nets.items()}


def _job_mix():
    """``N_JOBS`` (name, circuit) pairs — 10:2:1 tiny/medium/larger,
    interleaved so a reduced smoke keeps the proportions; names are
    unique so every job gets its own fault stream."""
    pattern = (["rc_tiny"] * 5 + ["prio4"]
               + ["rc_tiny"] * 5 + ["prio4", "rc_mid"])
    return [(f"chaos{i:02d}-{pattern[i % len(pattern)]}",
             pattern[i % len(pattern)])
            for i in range(max(4, N_JOBS))]


def _submit_all(root, jobs, blifs):
    queue = JobQueue(root)
    for name, circuit in jobs:
        queue.submit(JobSpec(netlist=blifs[circuit], fmt="blif",
                             name=name, config=dict(OVERRIDES)))
    return queue


def _drain_supervised(root, queue, timeout):
    pool = WorkerPool(root, store_path=os.path.join(root, "store"),
                      workers=WORKERS, max_attempts=MAX_ATTEMPTS)
    supervisor = Supervisor(pool, queue, stall_timeout=STALL_TIMEOUT)
    t0 = time.perf_counter()
    assert supervisor.drain(timeout=timeout), "drain timed out"
    return time.perf_counter() - t0, supervisor.stats()


def _job_ids(queue):
    return {state_id: queue.status(state_id)
            for state_id in queue.jobs()}


def _verify_results(queue, jobs, blifs, lib):
    """Every result must be a true equivalence of its INPUT netlist —
    checked with the SAT miter, not by comparing signatures."""
    inputs = {circuit: parse_netlist(blif, "blif", library=lib,
                                     name=circuit)
              for circuit, blif in blifs.items()}
    by_name = dict(jobs)
    checked = 0
    for job_id, state in sorted(queue.jobs().items()):
        assert state == "done", f"{job_id} ended {state!r}, not done"
        job = queue.get(job_id)
        with open(os.path.join(job.path, "result.blif"), "r",
                  encoding="utf-8") as fh:
            result_net = parse_netlist(fh.read(), "blif", library=lib,
                                       name=job.spec.name)
        verdict = check_equivalence(
            inputs[by_name[job.spec.name]], result_net,
            n_words=16, method="sat")
        assert verdict is True, (
            f"{job_id}: result not equivalent to input "
            f"(verdict {verdict!r}) — a fault corrupted the output"
        )
        checked += 1
    return checked


def _verify_replay(queue):
    """The recorded activations must be exactly what the plan's seeded
    schedule produces — chaos runs are reproducible, not just noisy."""
    total = 0
    fires_by_point = {}
    for job_id in sorted(queue.jobs()):
        job = queue.get(job_id)
        try:
            with open(job.faults_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            continue
        plane = FaultPlane(PLAN.scoped(job.spec.name))
        recorded = {}
        for line in lines:
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn tail from a mid-append SIGKILL
            recorded.setdefault(rec["point"], []).append(rec)
        for point, recs in recorded.items():
            allowed = set(plane.schedule(
                point, max(rec["eval"] for rec in recs)))
            fires = [rec["fire"] for rec in recs]
            # Lifetime fire numbers are strictly increasing (retries
            # preload prior fires, they never replay them) ...
            assert fires == sorted(set(fires)), (
                f"{job_id}:{point} re-fired a spent activation: {recs}")
            spec = next(s for s in PLAN.specs
                        if fnmatch.fnmatchcase(point, s.pattern))
            if spec.max_fires:
                assert max(fires) <= spec.max_fires, (
                    f"{job_id}:{point} exceeded max_fires: {recs}")
            # ... and every activation lands on a scheduled evaluation.
            for rec in recs:
                assert rec["eval"] in allowed, (
                    f"{job_id}:{point} fired off-schedule at eval "
                    f"{rec['eval']} (allowed {sorted(allowed)})")
            total += len(recs)
            fires_by_point[point] = (fires_by_point.get(point, 0)
                                     + len(recs))
    return total, fires_by_point


def test_chaos_soak_loses_nothing(lib, tmp_path, monkeypatch):
    # CI uploads the spool (journals, events, fault logs) on failure
    # when REPRO_CHAOS_ROOT points somewhere outside pytest's tmpdir.
    keep_root = os.environ.get("REPRO_CHAOS_ROOT")
    if keep_root:
        tmp_path = Path(os.path.abspath(keep_root))
        tmp_path.mkdir(parents=True, exist_ok=True)
    blifs = _circuit_blifs(lib)
    jobs = _job_mix()
    assert N_JOBS < JOBS_FLOOR or len(jobs) >= JOBS_FLOOR

    # Fault-free baseline: same mix, same supervision, no plan.
    monkeypatch.delenv(PLAN_ENV, raising=False)
    base_root = str(tmp_path / "baseline")
    base_queue = _submit_all(base_root, jobs, blifs)
    base_wall, _ = _drain_supervised(base_root, base_queue, timeout=300)
    base_stats = service_stats(base_root)
    assert base_stats["jobs_done"] == len(jobs), base_stats["jobs"]

    # Chaos run: the seeded plan reaches every worker via the
    # environment; each worker scopes it per job name.
    chaos_root = str(tmp_path / "chaos")
    chaos_queue = _submit_all(chaos_root, jobs, blifs)
    monkeypatch.setenv(PLAN_ENV, PLAN.to_env())
    chaos_wall, sup_stats = _drain_supervised(
        chaos_root, chaos_queue, timeout=600)
    monkeypatch.delenv(PLAN_ENV)

    # Zero lost jobs: all done, nothing failed or quarantined.
    chaos_stats = service_stats(chaos_root)
    assert chaos_stats["jobs_done"] == len(jobs), chaos_stats["jobs"]
    assert chaos_stats["jobs_failed"] == 0
    assert chaos_queue.deadletter_jobs() == {}

    # Zero corrupted results: SAT-miter equivalence vs the input.
    checked = _verify_results(chaos_queue, jobs, blifs, lib)
    assert checked == len(jobs)

    # Reproducibility: recorded activations match the seeded schedule.
    activations, fires_by_point = _verify_replay(chaos_queue)
    assert activations > 0, "chaos run fired no faults — plan inert"

    # Bounded completion-time inflation.
    inflation = chaos_wall / base_wall if base_wall > 0 else 1.0
    assert chaos_wall <= INFLATION_CAP * base_wall + INFLATION_SLACK, (
        f"chaos wall {chaos_wall:.1f}s vs baseline {base_wall:.1f}s "
        f"(inflation {inflation:.2f}x exceeds bound)"
    )

    events, _ = load_events(os.path.join(chaos_root, "events.jsonl"))
    counts = event_counts(events)
    entry = {
        "key": git_sha(),
        "seed": CHAOS_SEED,
        "jobs": len(jobs),
        "jobs_done": chaos_stats["jobs_done"],
        "deadlettered": len(chaos_queue.deadletter_jobs()),
        "fault_activations": activations,
        "fires_by_point": dict(sorted(fires_by_point.items())),
        "baseline_seconds": round(base_wall, 4),
        "chaos_seconds": round(chaos_wall, 4),
        "inflation": round(inflation, 3),
        "watchdog_kills": sup_stats["watchdog_kills"],
        "respawns": sup_stats["respawns"],
        "job_retries": counts.get("job_retry", 0),
        "equivalence_checked": checked,
        "replay_verified": True,
    }
    validate_chaos_entry(entry)
    if len(jobs) >= JOBS_FLOOR:
        # Only the full soak updates the committed artifact — CI's
        # reduced smoke must not clobber the 52-job entry.
        append_bench(
            str(Path(__file__).resolve().parent.parent
                / "BENCH_chaos.json"),
            entry, key_fields=("key",),
        )

    rows = [
        "run        jobs   wall[s]   faults  respawns  watchdog",
        f"baseline   {len(jobs):4d}  {base_wall:8.2f}       --"
        "        --        --",
        f"chaos      {len(jobs):4d}  {chaos_wall:8.2f}  "
        f"{activations:7d}  {sup_stats['respawns']:8d}  "
        f"{sup_stats['watchdog_kills']:8d}",
        f"inflation  {inflation:.2f}x   "
        f"(cap {INFLATION_CAP}x + {INFLATION_SLACK}s)",
        f"equivalence-checked results: {checked}/{len(jobs)}  "
        f"dead-lettered: 0  replay: exact",
    ]
    register_report("Chaos soak: seeded faults, zero lost jobs",
                    "\n".join(rows))
