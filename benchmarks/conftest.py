"""Shared fixtures and reporting for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure/claim of the paper
(see DESIGN.md §3).  Row results are collected into module-level lists
and the rendered tables are printed in the terminal summary, so a plain

    pytest benchmarks/ --benchmark-only

reproduces the paper's tables alongside the timing statistics.
"""

import pytest

from repro.library import mcnc_like
from repro.opt import GdoConfig

_REPORTS = []


@pytest.fixture(scope="session")
def lib():
    return mcnc_like()


@pytest.fixture(scope="session")
def gdo_config():
    """The configuration used for all table rows (BPFS with 512 random
    vectors, SAT proofs, both phases — the paper's setup at small
    scale).  Rounds and wall-clock are capped so every row stays
    CI-friendly."""
    return GdoConfig(n_words=8, verify_words=16, max_rounds=8,
                     max_seconds=15.0)


def register_report(title: str, text: str) -> None:
    """Queue a rendered table for the end-of-run summary."""
    _REPORTS.append((title, text))


def pytest_terminal_summary(terminalreporter):
    for title, text in _REPORTS:
        terminalreporter.write_sep("=", title)
        terminalreporter.write_line(text)
