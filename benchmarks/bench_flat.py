"""Flat-array kernel throughput: dict engine vs ``repro.flat``.

One BPFS+STA "pass" per side, the unit of work the GDO engine repeats
per optimization pass:

* dict — ``BitSimulator.simulate`` + one ``ObservabilityEngine`` row
  per fault site (cone-at-a-time resimulation) + a full ``Sta``;
* flat — ``FlatView.build`` + ``flat_simulate`` + one
  ``batch_observability`` call for the whole fault batch +
  ``FlatTiming``.

The comparison is differential as well as timed: every observability
row and the critical-path delay must match bitwise before a timing is
accepted.  The C5315 row asserts the >=3x end-to-end floor promised in
DESIGN.md; a >10k-gate generated netlist records the first large-scale
row.  Results append to ``BENCH_flat.json``.

CI smoke mode (no pytest, single repetition, C5315 only)::

    PYTHONPATH=src python benchmarks/bench_flat.py --smoke
"""

import random
import time
from pathlib import Path

import numpy as np

from repro.circuits.registry import build, random_control
from repro.flat.batchsim import batch_observability, flat_simulate
from repro.flat.flatsta import FlatTiming
from repro.flat.view import FlatView
from repro.library import mcnc_like
from repro.obs import append_bench, bench_entry, git_sha
from repro.sim import BitSimulator, ObservabilityEngine
from repro.sim.vectors import random_words
from repro.timing import Sta

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_flat.json"

N_WORDS = 16

#: C5315 floor asserted here and recorded in BENCH_flat.json
REQUIRED_SPEEDUP = 3.0


def _fault_batch(net, seed, n_stems, n_branches):
    """A deterministic, duplicate-free stem/branch fault batch — the
    shape of a GDO pass's prefetched target list."""
    rnd = random.Random(seed)
    stems = sorted(net.gates)
    refs = rnd.sample(stems, min(n_stems, len(stems)))
    fan = net.fanout_map()
    multi = sorted(s for s, br in fan.items() if len(br) >= 2)
    branches = {}
    for _ in range(n_branches * 3):
        if len(branches) >= n_branches or not multi:
            break
        br = rnd.choice(fan[rnd.choice(multi)])
        branches[(br.gate, br.pin)] = br
    return refs + list(branches.values())


def _best_of(fn, reps):
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best, out = elapsed, result
    return best, out


def measure(net, lib, seed=11, n_stems=256, n_branches=96, reps=3):
    """Time one dict pass vs one flat pass; verify bitwise parity."""
    words = random_words(net.pis, N_WORDS, seed)
    refs = _fault_batch(net, seed, n_stems, n_branches)
    sim = BitSimulator(net)

    def dict_pass():
        state = sim.simulate(dict(words))
        eng = ObservabilityEngine(sim, state)
        rows = [eng.observability(ref) for ref in refs]
        return rows, Sta(net, lib).delay

    def flat_pass():
        view = FlatView.build(net, library=lib)
        values = flat_simulate(view, words)
        rows = batch_observability(view, values, refs)
        return rows, FlatTiming(view).delay

    t_dict, (dict_rows, dict_delay) = _best_of(dict_pass, reps)
    t_flat, (flat_rows, flat_delay) = _best_of(flat_pass, reps)

    assert flat_delay == dict_delay
    assert len(flat_rows) == len(dict_rows) == len(refs)
    for ref, flat_row, dict_row in zip(refs, flat_rows, dict_rows):
        assert np.array_equal(flat_row, dict_row), ref

    return {
        "gates": net.num_gates,
        "n_words": N_WORDS,
        "n_faults": len(refs),
        "dict_seconds": round(t_dict, 4),
        "flat_seconds": round(t_flat, 4),
        "speedup": round(t_dict / t_flat, 3),
    }


def _record(circuit, row):
    append_bench(
        str(_BENCH_PATH),
        bench_entry(key=git_sha(), circuit=circuit, **row),
        key_fields=("key", "circuit"),
    )


def _table(results):
    lines = ["circuit    gates  faults  dict[s]  flat[s]  speedup"]
    for circuit, row in results:
        lines.append(
            f"{circuit:9} {row['gates']:6d} {row['n_faults']:7d} "
            f"{row['dict_seconds']:8.3f} {row['flat_seconds']:8.3f} "
            f"{row['speedup']:7.2f}x"
        )
    return "\n".join(lines)


def _run_c5315(lib, reps):
    net = build("C5315")
    lib.rebind(net)
    row = measure(net, lib, reps=reps)
    _record("C5315", row)
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"C5315 flat kernels only {row['speedup']:.2f}x faster "
        f"(needs >= {REQUIRED_SPEEDUP}x)"
    )
    return row


def test_flat_kernel_speedup_c5315(lib):
    """BPFS+STA pass >=3x faster on the largest registry circuit."""
    row = _run_c5315(lib, reps=3)
    from conftest import register_report
    register_report("Flat-array kernels vs dict engine (C5315)",
                    _table([("C5315", row)]))


def test_flat_kernel_scale_10k(lib):
    """First >10k-gate row: the flat pass completes, stays bitwise
    equal to the dict engine, and its timing is recorded."""
    net = random_control(n_pi=96, n_gates=10_500, n_po=48, seed=13,
                         locality=64, name="big13")
    lib.rebind(net)
    assert net.num_gates > 10_000
    # reps=2: a single cold repetition is dominated by first-touch page
    # faults on the ~90MB chunk buffers, not kernel throughput.
    row = measure(net, lib, n_stems=96, n_branches=32, reps=2)
    _record("big13", row)
    assert row["speedup"] > 0
    from conftest import register_report
    register_report("Flat-array kernels at >10k gates",
                    _table([("big13", row)]))


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single-repetition C5315 run for CI")
    args = parser.parse_args(argv)
    reps = 1 if args.smoke else 3
    lib = mcnc_like()
    row = _run_c5315(lib, reps)
    print(_table([("C5315", row)]))
    print(f"OK: flat kernels {row['speedup']:.2f}x "
          f">= {REQUIRED_SPEEDUP}x on C5315")


if __name__ == "__main__":
    main()
