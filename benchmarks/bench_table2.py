"""Table 2 — GDO after the delay-oriented script.

Paper: each circuit is synthesized and mapped with ``script.delay``;
GDO then achieves an *additional* 10.6% average delay reduction (some
circuits, e.g. term1 and apex6, gain nothing) and recovers 16.3% of the
literals — "GDO recovers area penalties which are due to the depth
reduction technique in SIS".

Shape asserted here: equivalence and non-increasing delay per circuit,
positive aggregate literal recovery, and an aggregate delay gain that is
positive but smaller than Table 1's (the delay script already removed
the easy slack).
"""

import pytest

from conftest import register_report
from repro.circuits.registry import TABLE2_NAMES
from repro.experiments import format_table, run_circuit, summarize

ROWS = []


@pytest.mark.parametrize("name", TABLE2_NAMES)
def test_table2_row(name, benchmark, lib, gdo_config):
    row = benchmark.pedantic(
        run_circuit,
        kwargs=dict(name=name, library=lib, script="delay", small=True,
                    config=gdo_config),
        rounds=1, iterations=1,
    )
    ROWS.append(row)
    assert row.equivalent is True, f"{name}: GDO output not equivalent"
    assert row.delay_after <= row.delay_before + 1e-6


def test_table2_summary(benchmark):
    assert len(ROWS) == len(TABLE2_NAMES)
    agg = benchmark.pedantic(summarize, args=(ROWS,), rounds=1,
                             iterations=1)
    register_report(
        "TABLE 2: GDO after delay script (paper: -10.6% delay, "
        "-16.3% literals)",
        format_table(ROWS, title=""),
    )
    # Shape claims: still gains delay on average, recovers literals.
    assert agg["delay_reduction"] >= 0.0, agg
    assert agg["literal_reduction"] >= 0.0, agg
    # Not every circuit needs to improve (paper: term1/apex6 gained 0).
    improved = sum(1 for r in ROWS if r.delay_after < r.delay_before - 1e-6)
    assert improved >= 1
