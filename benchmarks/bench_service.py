"""Optimization-service benchmark: shared warm store vs isolated clients.

The service claim (DESIGN.md §10): concurrent clients sharing one
sharded verdict store amortize each other's proof work.  Four clients
whose jobs run against a warm shared store must beat four isolated
cold clients (private stores) by >=1.5x aggregate jobs/sec, and the
cross-client hit rate is reported to ``BENCH_service.json``.
"""

import time
from pathlib import Path

from conftest import register_report

from repro.circuits.registry import build
from repro.io import write_blif
from repro.obs import append_bench, git_sha, validate_service_entry
from repro.service import JobQueue, JobSpec
from repro.service.server import service_stats
from repro.service.worker import WorkerPool

#: broker-heavy settings (funnel off so obligations reach the store);
#: per-job proving is serial — the concurrency under test is the
#: 4-worker fan-out and the shared store, not the proof pool.
OVERRIDES = {"n_words": 4, "max_rounds": 2, "verify_final": False,
             "static_funnel": False, "proof_workers": 1,
             "max_seconds": 120.0}

SPEEDUP_FLOOR = 1.5


def _job_mix(lib):
    jobs = []
    for circuit in ("C880", "C432", "C880", "C432"):
        net = build(circuit, small=True)
        lib.rebind(net)
        jobs.append((net.name, write_blif(net)))
    return jobs


def _submit_all(root, jobs):
    queue = JobQueue(root)
    for name, blif in jobs:
        queue.submit(JobSpec(netlist=blif, fmt="blif", name=name,
                             config=dict(OVERRIDES)))
    return queue


def _drain_timed(pools):
    t0 = time.perf_counter()
    for pool in pools:
        pool.start(drain=True)
    for pool in pools:
        assert pool.join(timeout=600), "benchmark workers hung"
    return time.perf_counter() - t0


def test_shared_warm_store_beats_isolated_cold(lib, tmp_path):
    jobs = _job_mix(lib)

    # Baseline: four isolated clients — own spool, own store, no
    # sharing — running concurrently (one worker each).
    iso_roots = []
    iso_pools = []
    for i, job in enumerate(jobs):
        root = str(tmp_path / f"iso{i}")
        _submit_all(root, [job])
        iso_roots.append(root)
        iso_pools.append(WorkerPool(root, store_path=f"{root}/store",
                                    workers=1))
    t_isolated = _drain_timed(iso_pools)
    for root in iso_roots:
        stats = service_stats(root)
        assert stats["jobs_done"] == 1, stats["jobs"]
        assert stats["cross_client_hits"] == 0  # truly isolated

    # Shared service: one spool, one store.  Warm it with one pass of
    # the same mix (the long-lived daemon's steady state), then time
    # the four concurrent clients.
    shared_root = str(tmp_path / "shared")
    store = f"{shared_root}/store"
    _submit_all(shared_root, jobs)
    _drain_timed([WorkerPool(shared_root, store_path=store, workers=4)])

    queue = _submit_all(shared_root, jobs)
    t_shared = _drain_timed(
        [WorkerPool(shared_root, store_path=store, workers=4)])

    stats = service_stats(shared_root)
    assert stats["jobs_done"] == 2 * len(jobs), stats["jobs"]
    assert stats["jobs_failed"] == 0
    hit_rate = stats["cross_client_hit_rate"]
    assert stats["cross_client_hits"] > 0, "store sharing inert"

    jps_isolated = len(jobs) / t_isolated
    jps_shared = len(jobs) / t_shared
    speedup = jps_shared / jps_isolated
    assert speedup >= SPEEDUP_FLOOR, (
        f"shared warm store only {speedup:.2f}x the isolated cold "
        f"aggregate jobs/sec (needs >= {SPEEDUP_FLOOR}x)"
    )

    entry = {
        "key": git_sha(),
        "jobs": dict(stats["jobs"]),
        "job_mix": sorted({name for name, _ in jobs}),
        "isolated_seconds": round(t_isolated, 4),
        "shared_seconds": round(t_shared, 4),
        "jobs_per_sec_isolated": round(jps_isolated, 4),
        "jobs_per_sec": round(jps_shared, 4),
        "speedup": round(speedup, 3),
        "queue_depth": stats["queue_depth"],
        "cross_client_hit_rate": round(hit_rate, 4),
        "cross_client_hits": stats["cross_client_hits"],
        "store_misses": stats["store_misses"],
        "resumed_jobs": stats["resumed_jobs"],
        "replayed_verdicts": stats["replayed_verdicts"],
    }
    validate_service_entry(entry)
    append_bench(
        str(Path(__file__).resolve().parent.parent
            / "BENCH_service.json"),
        entry, key_fields=("key",),
    )

    del queue
    rows = [
        "clients            wall[s]   agg jobs/s   x-client hit rate",
        f"4 isolated cold   {t_isolated:8.2f} {jps_isolated:12.2f}"
        "                 --",
        f"4 shared warm     {t_shared:8.2f} {jps_shared:12.2f}"
        f"   {100 * hit_rate:15.1f}%",
        f"speedup           {speedup:8.2f}x   (floor {SPEEDUP_FLOOR}x)",
    ]
    register_report("Service: shared warm store vs isolated clients",
                    "\n".join(rows))
