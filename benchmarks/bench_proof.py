"""Proof broker benchmarks: batching, caching, parallel fan-out.

Not a paper table — these pin the performance claims of the proof
subsystem (DESIGN.md §6): batched parallel proving with a warm verdict
cache must beat serial prove-on-demand end-to-end, while committing the
bitwise-identical modification sequence.
"""

import time
from pathlib import Path


from conftest import register_report

from repro.circuits.registry import build
from repro.obs import append_bench, bench_entry, git_sha
from repro.clauses.pvcc import Candidate
from repro.netlist.netlist import Netlist
from repro.opt import GdoConfig, gdo_optimize
from repro.opt.report import format_result
from repro.proof import ProofBroker, build_obligation


def _proof_cfg(workers: int) -> GdoConfig:
    # static_funnel off: these benchmarks measure the broker itself, so
    # every obligation must actually reach it (the static refuter stage
    # would otherwise discharge most of them before dispatch).
    return GdoConfig(n_words=8, proof="sat", proof_workers=workers,
                     verify_final=False, max_rounds=4, max_seconds=60.0,
                     static_funnel=False)


def _fingerprint(result):
    return (
        [(h.phase, h.kind, h.description, h.delay_after, h.area_after)
         for h in result.stats.history],
        result.stats.delay_after,
        result.stats.area_after,
        sorted(result.net.gates),
    )


def _and_tree(name: str, width: int) -> Netlist:
    net = Netlist(name)
    prev = net.add_pi("a0")
    for i in range(1, width):
        pi = net.add_pi(f"a{i}")
        out = f"{name}_g{i}"
        net.add_gate(out, "AND", [prev, pi])
        prev = out
    net.set_pos([prev])
    return net


def test_broker_batch_throughput(benchmark, lib):
    """Dedupe + cache-hit bookkeeping on an already-proven batch."""
    broker = ProofBroker(mode="sat", workers=1)
    obs = [build_obligation(_and_tree("l", w), _and_tree("r", w),
                            Candidate(target="t", kind="OS2",
                                      sources=("s",)))
           for w in range(2, 18)]
    broker.prove_batch(obs)          # populate the cache

    def run():
        return broker.prove_batch(obs)

    verdicts = benchmark(run)
    assert len(verdicts) == len(obs)
    assert broker.counters.cache_hits > 0
    broker.close()


def test_gdo_parallel_warm_cache_speedup(lib):
    """The tentpole claim: batched parallel proving with a warm verdict
    cache is >=1.3x faster end-to-end than serial uncached proving on an
    ISCAS-style circuit, with the identical modification sequence."""
    net = build("C880")
    lib.rebind(net)

    t0 = time.perf_counter()
    serial = gdo_optimize(net.copy(), lib, _proof_cfg(workers=1))
    t_serial = time.perf_counter() - t0
    assert serial.stats.proofs_attempted > 0
    assert serial.stats.proof.cache_hits == 0  # fresh broker, cold cache

    par_cfg = _proof_cfg(workers=4)
    broker = par_cfg.make_broker()
    try:
        gdo_optimize(net.copy(), lib, par_cfg, broker=broker)  # warm-up
        t0 = time.perf_counter()
        warm = gdo_optimize(net.copy(), lib, par_cfg, broker=broker)
        t_warm = time.perf_counter() - t0
    finally:
        broker.close()

    assert _fingerprint(serial) == _fingerprint(warm)
    p = warm.stats.proof
    assert p.cache_hits > 0 and p.hit_rate > 0.9, (
        f"warm rerun should be cache-served (hit rate {p.hit_rate:.2f})"
    )
    speedup = t_serial / t_warm
    assert speedup >= 1.3, (
        f"parallel+warm GDO only {speedup:.2f}x faster (needs >= 1.3x)"
    )
    append_bench(
        str(Path(__file__).resolve().parent.parent / "BENCH_proof.json"),
        bench_entry(
            key=git_sha(), circuit="C880",
            serial_seconds=round(t_serial, 4),
            warm_seconds=round(t_warm, 4),
            speedup=round(speedup, 3),
            warm_hit_rate=round(p.hit_rate, 4),
            dispatched=p.dispatched,
        ),
        key_fields=("key", "circuit"),
    )

    s = serial.stats.proof
    rows = [
        "run              time[s]   proofs   dispatched   hits   hit-rate",
        f"serial cold     {t_serial:8.2f} {serial.stats.proofs_attempted:8d} "
        f"{s.dispatched:12d} {s.cache_hits:6d} {100 * s.hit_rate:7.1f}%",
        f"parallel warm   {t_warm:8.2f} {warm.stats.proofs_attempted:8d} "
        f"{p.dispatched:12d} {p.cache_hits:6d} {100 * p.hit_rate:7.1f}%",
        f"speedup         {speedup:8.2f}x",
    ]
    report = "\n".join(rows) + "\n\n" + format_result(warm, lib)
    register_report("Proof broker: parallel + warm cache vs serial", report)


def test_parallel_cold_matches_serial_verdicts(lib):
    """Cold parallel batching changes scheduling, never verdicts."""
    net = build("9sym", small=True)
    lib.rebind(net)
    serial = gdo_optimize(net.copy(), lib, _proof_cfg(workers=1))
    parallel = gdo_optimize(net.copy(), lib, _proof_cfg(workers=4))
    assert _fingerprint(serial) == _fingerprint(parallel)
    assert parallel.stats.proof.parallel_batches > 0
