"""Figures 1-4 — the paper's conceptual figures as executable
micro-benchmarks.

Fig. 1: circuit description by clauses (characteristic formula + BPFS
validity check); Fig. 2: permissible AND insertion from a single valid
C2-clause; Fig. 3: OS2/IS2 substitutions; Fig. 4: OS3 substitution with
a new AND gate.  Each benchmark measures the core operation and asserts
its semantic claim.
"""


from repro.clauses import Candidate, circuit_characteristic_clauses
from repro.netlist import Branch, Netlist, TwoInputForm
from repro.netlist.gatefunc import AND
from repro.sim import BitSimulator, ObservabilityEngine
from repro.transform import (
    Insertion, apply_candidate, apply_insertion, prove_candidate,
)
from repro.verify import check_equivalence


def figure1_net():
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def rewiring_net():
    """d1/d2 duplicate pair feeding separate outputs."""
    net = Netlist("rw")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d1", "AND", ["a", "b"])
    net.add_gate("d2", "AND", ["b", "a"])
    net.add_gate("e", "AND", ["d2", "c"])
    net.add_gate("o1", "OR", ["d1", "c"])
    net.set_pos(["o1", "e"])
    return net


def engine_for(net):
    sim = BitSimulator(net)
    return ObservabilityEngine(sim, sim.simulate_exhaustive())


def test_fig1_characteristic_formula_validity(benchmark):
    net = figure1_net()
    eng = engine_for(net)
    clauses = circuit_characteristic_clauses(net)

    def check():
        return all(c.holds_on(eng) for c in clauses)

    assert benchmark(check) is True


def test_fig2_and_insertion(benchmark, lib):
    base = figure1_net()
    eng = engine_for(base)
    insertion = Insertion(Branch("f", 0), "a", AND)
    assert insertion.holds_on(eng)

    def run():
        net = base.copy()
        apply_insertion(net, insertion, library=lib)
        return net

    modified = benchmark(run)
    assert check_equivalence(base, modified)


def test_fig3_os2_substitution(benchmark, lib):
    base = rewiring_net()
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    assert prove_candidate(base, cand, library=lib)

    def run():
        net = base.copy()
        apply_candidate(net, cand, library=lib)
        return net

    modified = benchmark(run)
    assert "d2" not in modified.gates  # Fig. 3b: logic reclaimed
    assert check_equivalence(base, modified)


def test_fig3_is2_substitution(benchmark, lib):
    base = rewiring_net()
    cand = Candidate(target=Branch("e", 0), kind="IS2", sources=("d1",))
    assert prove_candidate(base, cand, library=lib)

    def run():
        net = base.copy()
        apply_candidate(net, cand, library=lib)
        return net

    modified = benchmark(run)
    assert check_equivalence(base, modified)


def test_fig4_os3_substitution(benchmark, lib):
    base = rewiring_net()
    cand = Candidate(target="d2", kind="OS3", sources=("a", "b"),
                     form=TwoInputForm(AND, False, False))
    assert prove_candidate(base, cand, library=lib)

    def run():
        net = base.copy()
        return apply_candidate(net, cand, library=lib), net

    record, modified = benchmark(run)
    assert len(record.added_gates) == 1
    assert check_equivalence(base, modified)
