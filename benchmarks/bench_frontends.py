"""Front-end era ablation — why the 1995 flow matters.

The paper's gains depend on 1995-era experimental conditions: SIS's
sweep-strength cleanup and DAGON tree mapping leave redundant
reconvergent structure (e.g. C6288's NOR cells) in the mapped netlist.
A modern flow (boolean rewriting + global cut mapping) removes most of
that structure before GDO ever runs — which is exactly the calibration
note that ATPG-based rewiring is "largely obsolete vs modern tools".

Shape asserted: on the NOR-cell multiplier, GDO's delay gain after the
1995 front-end is at least as large as after the modern front-end, and
the modern front-end produces a smaller/faster netlist to begin with.
"""

import pytest

from conftest import register_report
from repro.circuits import array_multiplier
from repro.opt import gdo_optimize
from repro.synth import script_rugged


@pytest.fixture(scope="module")
def source():
    return array_multiplier(6, style="nor")


def _run(source, lib, era, gdo_config):
    mapped = script_rugged(source, lib, era=era)
    result = gdo_optimize(mapped, lib, gdo_config)
    return mapped, result


def test_era_1995(benchmark, source, lib, gdo_config):
    mapped, result = benchmark.pedantic(
        _run, args=(source, lib, "1995", gdo_config), rounds=1,
        iterations=1)
    s = result.stats
    assert s.equivalent is True
    test_era_1995.result = (mapped, s)


def test_era_modern(benchmark, source, lib, gdo_config):
    mapped, result = benchmark.pedantic(
        _run, args=(source, lib, "modern", gdo_config), rounds=1,
        iterations=1)
    s = result.stats
    assert s.equivalent is True
    test_era_modern.result = (mapped, s)


def test_frontend_shape(benchmark, lib, gdo_config, source):
    mapped95, s95 = getattr(test_era_1995, "result", (None, None))
    mappedmod, smod = getattr(test_era_modern, "result", (None, None))
    if s95 is None or smod is None:
        pytest.skip("era rows did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    register_report(
        "FRONT-END ABLATION on 6x6 NOR multiplier "
        "(paper context: C6288 -22% after SIS)",
        f"1995  : mapped delay {s95.delay_before:7.2f} -> "
        f"{s95.delay_after:7.2f}  ({100 * s95.delay_reduction:5.1f}%)  "
        f"mods {s95.mods2}/{s95.mods3}\n"
        f"modern: mapped delay {smod.delay_before:7.2f} -> "
        f"{smod.delay_after:7.2f}  ({100 * smod.delay_reduction:5.1f}%)  "
        f"mods {smod.mods2}/{smod.mods3}",
    )
    # The rewiring potential is a property of the era: GDO finds more
    # (relative) delay to remove after the 1995 front-end.
    assert s95.delay_reduction >= smod.delay_reduction - 1e-9
    # And the modern front-end starts from a better netlist.
    assert smod.delay_before <= s95.delay_before + 1e-6
