"""Table 1 — GDO on the benchmark suite after the area script.

Paper row format: #gates / #literals / delay before and after GDO, the
OS/IS2 and OS/IS3 modification counts, and CPU seconds.  Paper aggregate
result: 22.9% average delay reduction with a concurrent 5.7% literal
reduction (area up only on C6288); delay reduced on *every* circuit.

We run the same pipeline on the generated stand-in suite (reduced sizes,
see DESIGN.md §4) and assert the shape: per-circuit equivalence and
non-increasing delay, aggregate delay reduction of at least ~10%, and no
aggregate literal blow-up.  Absolute numbers are recorded in
EXPERIMENTS.md.
"""

import pytest

from conftest import register_report
from repro.circuits.registry import SMALL_SUITE
from repro.experiments import format_table, run_circuit, summarize

ROWS = []
_NAMES = list(SMALL_SUITE)


@pytest.mark.parametrize("name", _NAMES)
def test_table1_row(name, benchmark, lib, gdo_config):
    row = benchmark.pedantic(
        run_circuit,
        kwargs=dict(name=name, library=lib, script="rugged", small=True,
                    config=gdo_config),
        rounds=1, iterations=1,
    )
    ROWS.append(row)
    # Per-circuit shape: functionally equivalent and never slower.
    assert row.equivalent is True, f"{name}: GDO output not equivalent"
    assert row.delay_after <= row.delay_before + 1e-6


def test_table1_summary(benchmark):
    assert len(ROWS) == len(_NAMES), "run the whole module"
    agg = benchmark.pedantic(summarize, args=(ROWS,), rounds=1,
                             iterations=1)
    register_report(
        "TABLE 1: GDO after area script (paper: -22.9% delay, "
        "-5.7% literals)",
        format_table(ROWS, title=""),
    )
    improved = sum(1 for r in ROWS if r.delay_after < r.delay_before - 1e-6)
    # Shape claims (scaled substrate with per-row CPU budgets — rows
    # that hit the budget stop early instead of converging, which drags
    # the aggregate below the paper's 22.9%; see EXPERIMENTS.md):
    assert agg["delay_reduction"] >= 0.05, agg
    assert agg["literal_reduction"] >= -0.02, agg
    assert improved >= len(ROWS) * 0.6, f"only {improved} circuits improved"
    assert agg["mods2"] + agg["mods3"] > 0
