"""Property-based I/O round-trips: BLIF, .bench, genlib."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.io import parse_bench, parse_blif, write_bench, write_blif
from repro.library import Cell, PinTiming, TechLibrary, parse_genlib, write_genlib
from repro.netlist import Netlist
from repro.netlist.gatefunc import AND, INV, NAND, NOR, OR, XNOR, XOR
from repro.verify import check_equivalence

_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

FUNCS = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR", "INV", "BUF"]


@st.composite
def bench_netlists(draw):
    n_pi = draw(st.integers(2, 5))
    n_gates = draw(st.integers(1, 12))
    net = Netlist("hyp")
    sigs = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for k in range(n_gates):
        func = draw(st.sampled_from(FUNCS))
        nin = 1 if func in ("INV", "BUF") else 2
        ins = [sigs[draw(st.integers(0, len(sigs) - 1))] for _ in range(nin)]
        sigs.append(net.add_gate(f"g{k}", func, ins))
    net.set_pos([sigs[-1]])
    return net


@given(bench_netlists())
@_settings
def test_bench_roundtrip_equivalence(net):
    again = parse_bench(write_bench(net))
    assert check_equivalence(net, again)


@given(bench_netlists())
@_settings
def test_blif_roundtrip_equivalence(net):
    again = parse_blif(write_blif(net))
    assert set(again.pis) == set(net.pis)
    assert check_equivalence(net, again)


@st.composite
def libraries(draw):
    funcs = [
        (AND, 2), (OR, 2), (NAND, 2), (NOR, 3), (XOR, 2), (XNOR, 2),
        (INV, 1), (AND, 3), (OR, 4),
    ]
    n = draw(st.integers(1, len(funcs)))
    cells = []
    for k in range(n):
        func, nin = funcs[k]
        area = draw(st.floats(0.5, 9.5))
        block = draw(st.floats(0.1, 4.0))
        drive = draw(st.floats(0.0, 1.0))
        load = draw(st.floats(0.5, 3.0))
        cells.append(Cell(
            f"c{k}", round(area, 3), func, nin, input_load=round(load, 3),
            pins=[PinTiming(round(block, 3), round(drive, 3))] * nin,
        ))
    return TechLibrary("hyp", cells)


@given(libraries())
@_settings
def test_genlib_roundtrip(lib):
    again = parse_genlib(write_genlib(lib))
    assert set(again.cells) == set(lib.cells)
    for name, cell in lib.cells.items():
        dup = again[name]
        assert dup.func is cell.func
        assert dup.nin == cell.nin
        assert dup.area == pytest.approx(cell.area)
        assert dup.input_load == pytest.approx(cell.input_load)
        for p1, p2 in zip(cell.pins, dup.pins):
            assert p2.block == pytest.approx(p1.block)
            assert p2.drive == pytest.approx(p1.drive)
