"""End-to-end pipeline integration tests: generator -> synthesis ->
mapping -> GDO -> verification, plus the experiment harness."""

import pytest

from repro.circuits import build
from repro.experiments import (
    TableRow, format_table, run_circuit, run_table1, run_table2, summarize,
)
from repro.library import mcnc_like
from repro.opt import GdoConfig, gdo_optimize
from repro.synth import script_delay, script_rugged
from repro.timing import Sta
from repro.verify import check_equivalence


FAST = GdoConfig(n_words=4, verify_words=8, max_rounds=4,
                 max_targets_per_pass=12, max_proofs_per_pass=24,
                 max_trials_per_pass=48)


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


@pytest.mark.parametrize("name", ["Z5xp1", "9sym", "C432"])
def test_full_pipeline_preserves_function(name, lib):
    src = build(name, small=True)
    mapped = script_rugged(src, lib)
    result = gdo_optimize(mapped, lib, FAST)
    assert result.stats.equivalent is True
    assert check_equivalence(src, result.net)
    assert result.stats.delay_after <= result.stats.delay_before + 1e-6


def test_run_circuit_row(lib):
    row = run_circuit("9sym", library=lib, small=True, config=FAST)
    assert isinstance(row, TableRow)
    assert row.circuit == "9sym"
    assert row.gates_before > 0
    assert row.equivalent is True
    assert 0.0 <= row.delay_reduction < 1.0


def test_run_table_subsets_and_format(lib):
    rows = run_table1(names=["9sym"], small=True, config=FAST, library=lib)
    assert len(rows) == 1
    rows2 = run_table2(names=["9sym"], small=True, config=FAST, library=lib)
    assert len(rows2) == 1
    text = format_table(rows + rows2, title="mini")
    assert "9sym" in text and "SUM" in text and "red." in text
    agg = summarize(rows)
    assert set(agg) == {
        "gate_reduction", "literal_reduction", "delay_reduction",
        "mods2", "mods3", "cpu_seconds",
    }


def test_delay_script_produces_faster_start(lib):
    """Table 2 precondition: the delay script's mapped netlist is
    (usually) faster than the area script's."""
    src = build("9sym", small=True)
    d_area = Sta(script_rugged(src, lib), lib).delay
    d_delay = Sta(script_delay(src, lib), lib).delay
    assert d_delay <= d_area * 1.25  # allow mild noise, forbid blowups


def test_gdo_after_delay_script_keeps_gains(lib):
    """Table 2 behaviour: GDO still finds area recovery after the delay
    script, without degrading delay."""
    src = build("term1", small=True)
    mapped = script_delay(src, lib)
    result = gdo_optimize(mapped, lib, FAST)
    s = result.stats
    assert s.equivalent is True
    assert s.delay_after <= s.delay_before + 1e-6
