"""Tests for the experiments harness itself."""

import pytest

from repro.experiments import TableRow, format_table, summarize


def make_row(name="x", db=10.0, da=8.0, lb=100, la=90, m2=3, m3=1):
    return TableRow(
        circuit=name, gates_before=50, gates_after=45,
        literals_before=lb, literals_after=la,
        delay_before=db, delay_after=da, mods2=m2, mods3=m3,
        cpu_seconds=1.5, equivalent=True,
    )


def test_delay_reduction_property():
    assert make_row().delay_reduction == pytest.approx(0.2)
    zero = make_row(db=0.0, da=0.0)
    assert zero.delay_reduction == 0.0


def test_summarize_aggregates():
    rows = [make_row("a"), make_row("b", db=20.0, da=10.0, m2=7)]
    agg = summarize(rows)
    assert agg["delay_reduction"] == pytest.approx(1 - 18 / 30)
    assert agg["literal_reduction"] == pytest.approx(1 - 180 / 200)
    assert agg["mods2"] == 10
    assert agg["mods3"] == 2
    assert agg["cpu_seconds"] == pytest.approx(3.0)


def test_summarize_empty_safe():
    agg = summarize([])
    assert agg["delay_reduction"] == 0.0
    assert agg["gate_reduction"] == 0.0


def test_format_table_layout():
    rows = [make_row("alpha"), make_row("beta")]
    text = format_table(rows, title="Demo")
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert any(line.startswith("alpha") for line in lines)
    assert any(line.startswith("SUM") for line in lines)
    assert any(line.startswith("red.") for line in lines)
    # reduction percentages present
    assert "%" in text
