"""Property-based tests (hypothesis) on the core engines.

Random netlists are generated as a strategy; each property cross-checks
two independent implementations of the same semantics (simulation vs
truth tables vs BDDs vs CNF/SAT vs PODEM), which is where disagreement
bugs surface.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bdd import BddManager, build_signal_bdds
from repro.cnf import encode_netlist
from repro.netlist import Netlist, prune_dangling
from repro.sat import Solver
from repro.sim import (
    BitSimulator, ObservabilityEngine, exhaustive_words, truth_table_of,
)
from repro.synth import aig_from_netlist, balance, compress, netlist_from_aig
from repro.verify import check_equivalence

FUNCS_2 = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]


@st.composite
def netlists(draw, max_pi=5, max_gates=14):
    n_pi = draw(st.integers(2, max_pi))
    n_gates = draw(st.integers(1, max_gates))
    net = Netlist("hyp")
    sigs = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for k in range(n_gates):
        func = draw(st.sampled_from(FUNCS_2 + ["INV", "BUF"]))
        if func in ("INV", "BUF"):
            ins = [sigs[draw(st.integers(0, len(sigs) - 1))]]
        else:
            ins = [
                sigs[draw(st.integers(0, len(sigs) - 1))],
                sigs[draw(st.integers(0, len(sigs) - 1))],
            ]
        sigs.append(net.add_gate(f"g{k}", func, ins))
    n_po = draw(st.integers(1, min(3, len(sigs))))
    net.set_pos(sigs[-n_po:])
    return net


_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(netlists())
@_settings
def test_simulation_matches_bdd(net):
    mgr = BddManager()
    bdds = build_signal_bdds(net, mgr)
    table = truth_table_of(net)
    n = len(net.pis)
    for v in range(1 << n):
        env = {k: (v >> k) & 1 for k in range(n)}
        assert mgr.evaluate(bdds[net.pos[0]], env) == table[v]


@given(netlists())
@_settings
def test_characteristic_formula_matches_simulation(net):
    cnf, varmap = encode_netlist(net)
    table = truth_table_of(net)
    n = len(net.pis)
    solver = Solver()
    solver.add_cnf(cnf)
    for v in range(min(1 << n, 8)):
        assumptions = [
            varmap[pi] if (v >> i) & 1 else -varmap[pi]
            for i, pi in enumerate(net.pis)
        ]
        po_var = varmap[net.pos[0]]
        lit = po_var if table[v] else -po_var
        assert solver.solve(assumptions=assumptions + [lit]).sat
        assert not solver.solve(assumptions=assumptions + [-lit]).sat


@given(netlists())
@_settings
def test_aig_roundtrip_equivalent(net):
    rebuilt = netlist_from_aig(compress(aig_from_netlist(net)), name="rt")
    assert check_equivalence(net, rebuilt)


@given(netlists())
@_settings
def test_balance_never_deepens(net):
    aig = compress(aig_from_netlist(net))
    assert balance(aig).depth() <= aig.depth()


@given(netlists())
@_settings
def test_observability_definition(net):
    """Oa per vector == (flipping a changes some PO), checked against
    brute-force resimulation of a modified netlist."""
    sim = BitSimulator(net)
    state = sim.simulate_exhaustive()
    eng = ObservabilityEngine(sim, state)
    n = len(net.pis)
    target = net.topo_order()[-1]
    obs = eng.stem_observability(target)
    # brute force: flip target's function by XOR-ing an inverter... we
    # instead compare against the definition using the simulator's own
    # cone resim on a *fresh* engine (independent path: full resim).
    flipped = sim.simulate_exhaustive()
    over = sim.resimulate_cone(flipped, target, ~flipped.word(target))
    diff = sim.po_difference(flipped, over)
    assert np.array_equal(obs, diff)
    # and PO stems are always observable
    for po in net.pos:
        if not net.is_pi(po):
            assert bool(np.all(eng.stem_observability(po) ==
                               np.uint64(0xFFFFFFFFFFFFFFFF)))


@given(netlists(), st.integers(0, 10_000))
@_settings
def test_prune_dangling_preserves_pos(net, seed):
    before = net.copy()
    prune_dangling(net)
    net.validate()
    assert check_equivalence(before, net)


@given(netlists())
@_settings
def test_stem_substitution_of_equal_signals_is_permissible(net):
    """If exhaustive simulation shows two signals equal, OS2 keeps the
    circuit equivalent — Theorem 1 with Oa == always-observable."""
    sim = BitSimulator(net)
    state = sim.simulate_exhaustive()
    sigs = list(net.signals())
    words = {s: state.word(s) for s in sigs}
    for i, s1 in enumerate(sigs):
        if net.is_pi(s1):
            continue
        for s2 in sigs[:i]:
            if s2 in net.transitive_fanout(s1):
                continue
            if np.array_equal(words[s1], words[s2]):
                from repro.netlist import substitute_stem

                work = net.copy()
                substitute_stem(work, s1, s2)
                prune_dangling(work, roots=[s1])
                work.validate()
                assert check_equivalence(net, work)
                return
