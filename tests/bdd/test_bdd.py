"""Tests for the ROBDD package."""

import itertools
import random

import pytest

from repro.bdd import BddBudgetExceeded, BddManager, bdd_equivalent, build_signal_bdds
from repro.netlist import Netlist


def test_terminals_and_vars():
    mgr = BddManager()
    assert mgr.zero is not mgr.one
    x = mgr.var(0)
    assert x.low is mgr.zero and x.high is mgr.one
    assert mgr.var(0) is x  # interned


def test_ite_basic_identities():
    mgr = BddManager()
    x, y = mgr.var(0), mgr.var(1)
    assert mgr.ite(mgr.one, x, y) is x
    assert mgr.ite(mgr.zero, x, y) is y
    assert mgr.ite(x, mgr.one, mgr.zero) is x
    assert mgr.apply_and(x, x) is x
    assert mgr.apply_or(x, mgr.apply_not(x)) is mgr.one
    assert mgr.apply_and(x, mgr.apply_not(x)) is mgr.zero


def test_apply_matches_semantics():
    mgr = BddManager()
    x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
    f = mgr.apply_or(mgr.apply_and(x, y), mgr.apply_xor(y, z))
    for bits in itertools.product((0, 1), repeat=3):
        env = {0: bits[0], 1: bits[1], 2: bits[2]}
        expected = (bits[0] & bits[1]) | (bits[1] ^ bits[2])
        assert mgr.evaluate(f, env) == expected


def test_canonicity_random_expressions():
    # Structurally different but equal expressions intern identically.
    mgr = BddManager()
    x, y = mgr.var(0), mgr.var(1)
    demorgan_l = mgr.apply_not(mgr.apply_and(x, y))
    demorgan_r = mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y))
    assert demorgan_l is demorgan_r
    xor1 = mgr.apply_xor(x, y)
    xor2 = mgr.apply_or(mgr.apply_and(x, mgr.apply_not(y)),
                        mgr.apply_and(mgr.apply_not(x), y))
    assert xor1 is xor2


def test_sat_count():
    mgr = BddManager()
    x, y, z = mgr.var(0), mgr.var(1), mgr.var(2)
    assert mgr.sat_count(mgr.one, 3) == 8
    assert mgr.sat_count(mgr.zero, 3) == 0
    assert mgr.sat_count(x, 3) == 4
    assert mgr.sat_count(mgr.apply_and(x, y), 3) == 2
    maj = mgr.apply_or(
        mgr.apply_or(mgr.apply_and(x, y), mgr.apply_and(x, z)),
        mgr.apply_and(y, z),
    )
    assert mgr.sat_count(maj, 3) == 4


def test_any_sat():
    mgr = BddManager()
    x, y = mgr.var(0), mgr.var(1)
    f = mgr.apply_and(x, mgr.apply_not(y))
    model = mgr.any_sat(f)
    assert model[0] == 1 and model[1] == 0
    assert mgr.any_sat(mgr.zero) is None


def test_size():
    mgr = BddManager()
    x, y = mgr.var(0), mgr.var(1)
    f = mgr.apply_xor(x, y)
    assert mgr.size(f) == 3
    assert mgr.size(mgr.one) == 0


def test_budget_exceeded():
    mgr = BddManager(max_nodes=4)
    with pytest.raises(BddBudgetExceeded):
        acc = mgr.one
        for k in range(8):
            acc = mgr.apply_and(acc, mgr.apply_xor(mgr.var(2 * k),
                                                   mgr.var(2 * k + 1)))


def _net_pair():
    left = Netlist("l")
    for pi in "ab":
        left.add_pi(pi)
    left.add_gate("y", "NAND", ["a", "b"])
    left.set_pos(["y"])
    right = Netlist("r")
    for pi in "ab":
        right.add_pi(pi)
    right.add_gate("na", "INV", ["a"])
    right.add_gate("nb", "INV", ["b"])
    right.add_gate("y", "OR", ["na", "nb"])
    right.set_pos(["y"])
    return left, right


def test_bdd_equivalent_demorgan():
    left, right = _net_pair()
    assert bdd_equivalent(left, right)


def test_bdd_inequivalent():
    left, right = _net_pair()
    right.gates["y"].func = __import__(
        "repro.netlist.gatefunc", fromlist=["AND"]).AND
    assert not bdd_equivalent(left, right)


def test_build_signal_bdds_targets_only():
    net = Netlist("two")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("x", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "b"])
    net.set_pos(["x", "y"])
    mgr = BddManager()
    bdds = build_signal_bdds(net, mgr, targets=["x"])
    assert "x" in bdds and "y" not in bdds


def test_bdds_vs_truth_table_random():
    from repro.sim import truth_table_of

    rnd = random.Random(5)
    funcs = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]
    for trial in range(10):
        net = Netlist(f"r{trial}")
        sigs = [net.add_pi(f"i{k}") for k in range(4)]
        for k in range(12):
            f = rnd.choice(funcs)
            sigs.append(net.add_gate(f"g{k}", f, rnd.sample(sigs, 2)))
        net.set_pos([sigs[-1]])
        bdds = build_signal_bdds(net, mgr := BddManager())
        table = truth_table_of(net)
        for v in range(16):
            env = {k: (v >> k) & 1 for k in range(4)}
            assert mgr.evaluate(bdds[net.pos[0]], env) == table[v]
