"""Tests for the structural Verilog writer."""

import re


from repro.io import write_verilog
from repro.library import mcnc_like
from repro.netlist import Netlist


def sample_net():
    net = Netlist("sample")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_primitive_output():
    text = write_verilog(sample_net())
    assert text.startswith("module sample (")
    assert "and u" in text and "not u" in text and "or u" in text
    assert "assign po0 = f;" in text
    assert text.rstrip().endswith("endmodule")


def test_port_structure():
    text = write_verilog(sample_net())
    assert "input  a" in text
    assert "output po0" in text
    assert "wire d, e, f;" in text


def test_mapped_output():
    lib = mcnc_like()
    net = sample_net()
    lib.rebind(net)
    text = write_verilog(net, mapped=True, library=lib)
    assert "and2 u" in text
    assert ".a(a), .b(b), .o(d)" in text.replace("  ", " ")


def test_complex_cells_as_assigns():
    net = Netlist("cx")
    for pi in "abcd":
        net.add_pi(pi)
    net.add_gate("y", "AOI22", ["a", "b", "c", "d"])
    net.add_gate("m", "MUX21", ["a", "b", "c"])
    net.add_gate("k", "CONST1", [])
    net.set_pos(["y", "m", "k"])
    text = write_verilog(net)
    assert "assign y = ~((a & b) | (c & d));" in text
    assert "assign m = c ? b : a;" in text
    assert "assign k = 1'b1;" in text


def test_identifier_escaping():
    net = Netlist("esc")
    net.add_pi("in[0]")
    net.add_gate("out.x", "INV", ["in[0]"])
    net.set_pos(["out.x"])
    text = write_verilog(net)
    assert "\\in[0] " in text
    assert "\\out.x " in text


def test_module_name_sanitized():
    net = sample_net()
    net.name = "weird name!"
    text = write_verilog(net)
    assert re.search(r"module \w+ \(", text)
