"""Tests for the structural Verilog writer."""

import re


from repro.io import write_verilog
from repro.library import mcnc_like
from repro.netlist import Netlist


def sample_net():
    net = Netlist("sample")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_primitive_output():
    text = write_verilog(sample_net())
    assert text.startswith("module sample (")
    assert "and u" in text and "not u" in text and "or u" in text
    assert "assign po0 = f;" in text
    assert text.rstrip().endswith("endmodule")


def test_port_structure():
    text = write_verilog(sample_net())
    assert "input  a" in text
    assert "output po0" in text
    assert "wire d, e, f;" in text


def test_mapped_output():
    lib = mcnc_like()
    net = sample_net()
    lib.rebind(net)
    text = write_verilog(net, mapped=True, library=lib)
    assert "and2 u" in text
    assert ".a(a), .b(b), .o(d)" in text.replace("  ", " ")


def test_complex_cells_as_assigns():
    net = Netlist("cx")
    for pi in "abcd":
        net.add_pi(pi)
    net.add_gate("y", "AOI22", ["a", "b", "c", "d"])
    net.add_gate("m", "MUX21", ["a", "b", "c"])
    net.add_gate("k", "CONST1", [])
    net.set_pos(["y", "m", "k"])
    text = write_verilog(net)
    assert "assign y = ~((a & b) | (c & d));" in text
    assert "assign m = c ? b : a;" in text
    assert "assign k = 1'b1;" in text


def test_identifier_escaping():
    net = Netlist("esc")
    net.add_pi("in[0]")
    net.add_gate("out.x", "INV", ["in[0]"])
    net.set_pos(["out.x"])
    text = write_verilog(net)
    assert "\\in[0] " in text
    assert "\\out.x " in text


def test_module_name_sanitized():
    net = sample_net()
    net.name = "weird name!"
    text = write_verilog(net)
    assert re.search(r"module \w+ \(", text)


# ----------------------------------------------------------------------
# reader: the writer's subset round-trips
# ----------------------------------------------------------------------
def _sig(net):
    from repro.netlist.edit import structural_signature

    return structural_signature(net)


def test_primitive_roundtrip():
    from repro.io import parse_verilog

    net = sample_net()
    back = parse_verilog(write_verilog(net))
    assert back.pis == net.pis
    assert back.pos == net.pos
    assert _sig(back) == _sig(net)
    assert back.name == "sample"


def test_complex_and_const_roundtrip():
    from repro.io import parse_verilog

    net = Netlist("cx")
    for pi in "abcd":
        net.add_pi(pi)
    net.add_gate("g1", "AOI21", ["a", "b", "c"])
    net.add_gate("g2", "OAI21", ["a", "b", "c"])
    net.add_gate("g3", "AOI22", ["a", "b", "c", "d"])
    net.add_gate("g4", "OAI22", ["a", "b", "c", "d"])
    net.add_gate("g5", "MAJ3", ["a", "b", "c"])
    net.add_gate("g6", "MUX21", ["a", "b", "c"])
    net.add_gate("g7", "ANDN", ["g1", "g2"])
    net.add_gate("g8", "ORN", ["g3", "g4"])
    net.add_gate("k0", "CONST0", [])
    net.add_gate("k1", "CONST1", [])
    net.add_gate("y", "XNOR", ["g7", "g8"])
    net.set_pos(["y", "g5", "g6", "k0", "k1"])
    back = parse_verilog(write_verilog(net))
    assert _sig(back) == _sig(net)
    # Input order matters for MUX21 (d0, d1, sel) and the AOI forms.
    assert back.gates["g6"].inputs == ["a", "b", "c"]
    assert back.gates["g1"].inputs == ["a", "b", "c"]


def test_escaped_identifier_roundtrip():
    from repro.io import parse_verilog

    net = Netlist("esc")
    net.add_pi("in[0]")
    net.add_pi("b.x")
    net.add_gate("out.x", "NAND", ["in[0]", "b.x"])
    net.set_pos(["out.x"])
    back = parse_verilog(write_verilog(net))
    assert back.pis == ["in[0]", "b.x"]
    assert back.pos == ["out.x"]
    assert _sig(back) == _sig(net)


def test_mapped_roundtrip_restores_cells():
    from repro.io import parse_verilog

    lib = mcnc_like()
    net = sample_net()
    lib.rebind(net)
    text = write_verilog(net, mapped=True, library=lib)
    back = parse_verilog(text, library=lib)
    assert _sig(back) == _sig(net)
    assert back.gates["d"].cell == net.gates["d"].cell


def test_reader_rejects_unknown_cell_and_garbage():
    import pytest

    from repro.io import VerilogError, parse_verilog

    with pytest.raises(VerilogError):
        parse_verilog("module m (input a, output po0);\n"
                      "  mystery u0 (.a(a), .o(x));\n"
                      "  assign po0 = x;\nendmodule\n")
    with pytest.raises(VerilogError):
        parse_verilog("this is not verilog at all ;;;")


def test_format_dispatcher():
    import pytest

    from repro.io import (
        FormatError, format_from_path, parse_netlist,
    )

    assert format_from_path("x/c880.blif") == "blif"
    assert format_from_path("c17.bench") == "bench"
    assert format_from_path("top.v") == "verilog"
    with pytest.raises(FormatError):
        format_from_path("netlist.edif")
    with pytest.raises(FormatError):
        parse_netlist("x", "edif")

    net = sample_net()
    back = parse_netlist(write_verilog(net), "verilog", name="renamed")
    assert back.name == "renamed"
    assert _sig(back) == _sig(net)


def test_load_netlist_by_extension(tmp_path):
    from repro.io import load_netlist, write_bench

    net = sample_net()
    path = tmp_path / "sample.v"
    path.write_text(write_verilog(net))
    assert _sig(load_netlist(str(path))) == _sig(net)

    bpath = tmp_path / "sample.bench"
    bpath.write_text(write_bench(net))
    loaded = load_netlist(str(bpath))
    assert loaded.pis == net.pis and loaded.pos == net.pos
