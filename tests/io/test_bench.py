"""Tests for the .bench reader/writer."""

import pytest

from repro.io import BenchError, parse_bench, write_bench
from repro.sim import truth_table_of
from repro.verify import check_equivalence

C17 = """
# c17 (ISCAS-85 smallest benchmark)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def test_parse_c17():
    net = parse_bench(C17)
    assert len(net.pis) == 5
    assert len(net.pos) == 2
    assert net.num_gates == 6
    assert all(g.func.name == "NAND" for g in net.gates.values())


def test_c17_function():
    net = parse_bench(C17)
    # spot-check: all inputs 0 -> NAND trees give 22=23=1? compute row 0
    table22 = truth_table_of(net, "22")
    # vector 0: 1=0,3=0 -> 10=1; 2=0,11=1 -> 16=1; 22 = NAND(1,1)=0
    assert table22[0] == 0


def test_roundtrip():
    net = parse_bench(C17)
    text = write_bench(net)
    again = parse_bench(text)
    assert check_equivalence(net, again)


def test_out_of_order_definitions():
    net = parse_bench(
        "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = AND(a, a)\n"
    )
    assert truth_table_of(net) == [1, 0]


def test_wide_xor_expansion():
    net = parse_bench(
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "y = XOR(a, b, c, d)\n"
    )
    table = truth_table_of(net)
    for row in range(16):
        assert table[row] == bin(row).count("1") % 2


def test_parse_errors():
    with pytest.raises(BenchError):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
    with pytest.raises(BenchError):
        parse_bench("garbage line\n")
    with pytest.raises(BenchError):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")


def test_write_rejects_complex_cells():
    from repro.netlist import Netlist

    net = Netlist("m")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("y", "MUX21", ["a", "b", "c"])
    net.set_pos(["y"])
    with pytest.raises(BenchError):
        write_bench(net)
