"""Tests for the BLIF reader/writer."""

import pytest

from repro.io import BlifError, parse_blif, write_blif
from repro.library import mcnc_like
from repro.netlist import Netlist
from repro.sim import truth_table_of
from repro.verify import check_equivalence

SIMPLE = """
.model simple
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
"""


def test_parse_names():
    net = parse_blif(SIMPLE)
    assert net.name == "simple"
    # y = (a & b) | c
    table = truth_table_of(net)
    for row in range(8):
        a, b, c = row & 1, (row >> 1) & 1, (row >> 2) & 1
        assert table[row] == ((a & b) | c)


def test_parse_offset_cover():
    net = parse_blif(
        ".model off\n.inputs a b\n.outputs y\n"
        ".names a b y\n11 0\n.end\n"
    )
    assert truth_table_of(net) == [1, 1, 1, 0]  # NAND


def test_parse_constants():
    net = parse_blif(
        ".model k\n.inputs a\n.outputs one zero\n"
        ".names one\n1\n.names zero\n.end\n"
    )
    assert truth_table_of(net, "one") == [1, 1]
    assert truth_table_of(net, "zero") == [0, 0]


def test_inverted_literals_in_cube():
    net = parse_blif(
        ".model n\n.inputs a b\n.outputs y\n.names a b y\n01 1\n.end\n"
    )
    # y = ~a & b
    assert truth_table_of(net) == [0, 0, 1, 0]


def test_line_continuation():
    net = parse_blif(
        ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
    )
    assert len(net.pis) == 2


def test_gate_lines_with_library():
    lib = mcnc_like()
    text = (
        ".model mapped\n.inputs x0 x1\n.outputs f\n"
        ".gate nand2 a=x0 b=x1 o=t\n"
        ".gate inv1 a=t o=f\n"
        ".end\n"
    )
    net = parse_blif(text, library=lib)
    assert net.gates["t"].cell == "nand2"
    assert truth_table_of(net) == [0, 0, 0, 1]  # f = x0 & x1


def test_gate_requires_library():
    with pytest.raises(BlifError):
        parse_blif(".model m\n.inputs a\n.outputs y\n.gate inv1 a=a o=y\n.end")


def test_roundtrip_names():
    net = parse_blif(SIMPLE)
    again = parse_blif(write_blif(net))
    assert check_equivalence(net, again)


def test_roundtrip_mapped():
    lib = mcnc_like()
    net = Netlist("m")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "NAND", ["a", "b"])
    net.add_gate("y", "INV", ["t"])
    net.set_pos(["y"])
    lib.rebind(net)
    text = write_blif(net, mapped=True, library=lib)
    assert ".gate nand2" in text
    again = parse_blif(text, library=lib)
    assert check_equivalence(net, again)
    assert again.gates["t"].cell == "nand2"


def test_mixed_polarity_cover_rejected():
    with pytest.raises(BlifError):
        parse_blif(
            ".model m\n.inputs a b\n.outputs y\n"
            ".names a b y\n11 1\n00 0\n.end\n"
        )
