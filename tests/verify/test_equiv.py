"""Tests for the equivalence-checking safety net."""

import pytest

from repro.netlist import Netlist
from repro.sat import InterfaceMismatch
from repro.verify import check_equivalence, find_counterexample, random_sim_refutes


def nand_net():
    net = Netlist("l")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("y", "NAND", ["a", "b"])
    net.set_pos(["y"])
    return net


def demorgan_net():
    net = Netlist("r")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("na", "INV", ["a"])
    net.add_gate("nb", "INV", ["b"])
    net.add_gate("y", "OR", ["na", "nb"])
    net.set_pos(["y"])
    return net


def and_net():
    net = Netlist("w")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("y", "AND", ["a", "b"])
    net.set_pos(["y"])
    return net


@pytest.mark.parametrize("method", ["sat", "bdd", "auto"])
def test_equivalent_pair(method):
    assert check_equivalence(nand_net(), demorgan_net(), method=method)


@pytest.mark.parametrize("method", ["sat", "bdd", "auto"])
def test_inequivalent_pair(method):
    assert not check_equivalence(nand_net(), and_net(), method=method)


def test_random_sim_refutes_obvious():
    assert random_sim_refutes(nand_net(), and_net())
    assert not random_sim_refutes(nand_net(), demorgan_net())


def test_counterexample_is_real():
    cex = find_counterexample(nand_net(), and_net())
    assert cex is not None
    from repro.sim import BitSimulator, vectors_to_words

    l, r = nand_net(), and_net()
    sl = BitSimulator(l).simulate(vectors_to_words(l.pis, [cex]))
    sr = BitSimulator(r).simulate(vectors_to_words(r.pis, [cex]))
    assert sl.bit("y", 0) != sr.bit("y", 0)


def test_counterexample_none_for_equivalent():
    assert find_counterexample(nand_net(), demorgan_net()) is None


def test_interface_mismatch():
    net = nand_net()
    other = Netlist("x")
    other.add_pi("a")
    other.add_gate("y", "INV", ["a"])
    other.set_pos(["y"])
    assert random_sim_refutes(net, other)  # treated as different
    with pytest.raises((InterfaceMismatch, ValueError)):
        from repro.sat import miter_equivalent

        miter_equivalent(net, other)


def test_po_count_mismatch():
    net = nand_net()
    dup = nand_net()
    dup.add_po("y")
    assert random_sim_refutes(net, dup)


def test_positional_po_comparison():
    """POs compare by position, not by name."""
    left = nand_net()
    right = demorgan_net()
    # rename right's PO signal: still equivalent positionally
    right.gates["z"] = right.gates.pop("y")
    right.gates["z"].output = "z"
    right.pos = ["z"]
    right.invalidate()
    assert check_equivalence(left, right)
