"""Tests for the Fig. 2 transformation: 2-input gate insertion from a
single valid C2-clause (permissible bridges)."""

import pytest

from repro.library import mcnc_like
from repro.netlist import Branch, Netlist
from repro.netlist.gatefunc import AND, OR
from repro.sim import BitSimulator, ObservabilityEngine
from repro.transform import (
    Insertion, TransformError, apply_insertion, candidate_insertions,
)
from repro.verify import check_equivalence


def implied_net():
    """f = (a & b) | c; g = a & b.  On vectors where the d-branch into f
    is observable and d = 1, both a and b are 1 — so bridging with a
    or b is permissible."""
    net = Netlist("impl")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("f", "OR", ["d", "c"])
    net.set_pos(["f"])
    return net


def exhaustive_engine(net):
    sim = BitSimulator(net)
    return ObservabilityEngine(sim, sim.simulate_exhaustive())


def test_insertion_clause_rendering():
    net = implied_net()
    ins = Insertion(Branch("f", 0), "a", AND)
    assert ins.clause(net).describe() == "(~O[f/0] + ~f/0 + a)"
    ins_or = Insertion(Branch("f", 0), "a", OR)
    assert ins_or.clause(net).describe() == "(~O[f/0] + f/0 + ~a)"


def test_and_bridge_permissible():
    net = implied_net()
    eng = exhaustive_engine(net)
    ins = Insertion(Branch("f", 0), "a", AND)
    assert ins.holds_on(eng)
    before = net.copy()
    new_sig = apply_insertion(net, ins, library=mcnc_like())
    net.validate()
    assert net.gates[new_sig].func is AND
    assert net.gates["f"].inputs[0] == new_sig
    assert check_equivalence(before, net)


def test_or_bridge():
    # f = d | c; bridging the c-branch with OR(c, x) needs (~O + c + ~x):
    # when c is observable (d=0) and c=0, x must be 0.  x = d works
    # (d = 0 whenever observable).
    net = implied_net()
    eng = exhaustive_engine(net)
    ins = Insertion(Branch("f", 1), "d", OR)
    assert ins.holds_on(eng)
    before = net.copy()
    apply_insertion(net, ins)
    assert check_equivalence(before, net)


def test_impermissible_bridge_detected():
    net = implied_net()
    eng = exhaustive_engine(net)
    # AND-bridging the d-branch with c is not permissible: vector
    # a=b=1, c=0 has d observable, d=1, c=0 -> output would flip.
    ins = Insertion(Branch("f", 0), "c", AND)
    assert not ins.holds_on(eng)
    before = net.copy()
    apply_insertion(net, ins)  # structurally fine, functionally wrong
    assert not check_equivalence(before, net)


def test_candidate_insertions_enumeration():
    net = implied_net()
    eng = exhaustive_engine(net)
    cands = candidate_insertions(eng, Branch("f", 0), ["a", "b", "c"], AND)
    sides = {c.side for c in cands}
    assert sides == {"a", "b"}


def test_insertion_cycle_rejected():
    net = implied_net()
    ins = Insertion(Branch("d", 0), "f", AND)
    with pytest.raises(TransformError):
        apply_insertion(net, ins)


def test_insertion_unknown_signal_rejected():
    net = implied_net()
    with pytest.raises(TransformError):
        apply_insertion(net, Insertion(Branch("f", 0), "ghost", AND))
    with pytest.raises(TransformError):
        apply_insertion(net, Insertion(Branch("ghost", 0), "a", AND))


def test_insertion_enables_redundancy_removal():
    """The classic RAR pattern (Sec. 3): adding a permissible bridge
    makes other connections redundant."""
    from repro.atpg import remove_all_redundancies

    net = implied_net()
    eng = exhaustive_engine(net)
    ins = Insertion(Branch("f", 0), "a", AND)
    assert ins.holds_on(eng)
    before = net.copy()
    apply_insertion(net, ins)
    remove_all_redundancies(net)
    net.validate()
    assert check_equivalence(before, net)
