"""Tests for applying and proving substitutions (Figs. 3 and 4)."""

import pytest

from repro.clauses import Candidate
from repro.library import mcnc_like
from repro.netlist import Branch, Netlist, TwoInputForm
from repro.netlist.gatefunc import AND, OR
from repro.transform import (
    TransformError, affected_outputs, apply_candidate, prove_candidate,
)
from repro.verify import check_equivalence


def dup_net():
    """d1 and d2 compute the same function a&b; e uses d2."""
    net = Netlist("dup")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d1", "AND", ["a", "b"])
    net.add_gate("d2", "AND", ["b", "a"])
    net.add_gate("e", "OR", ["d2", "c"])
    net.set_pos(["d1", "e"])
    return net


def test_os2_application_prunes(capsys=None):
    """Fig. 3b: output substitution redirects readers and prunes the
    freed logic."""
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    rec = apply_candidate(net, cand)
    assert rec.replacement == "d1"
    assert net.gates["e"].inputs == ["d1", "c"]
    assert "d2" not in net.gates
    assert [g.output for g in rec.removed_gates] == ["d2"]
    net.validate()
    assert check_equivalence(dup_net(), net)


def test_is2_application():
    net = dup_net()
    cand = Candidate(target=Branch("e", 0), kind="IS2", sources=("d1",))
    apply_candidate(net, cand)
    assert net.gates["e"].inputs == ["d1", "c"]
    assert "d2" not in net.gates  # freed by pruning
    assert check_equivalence(dup_net(), net)


def test_os2_inverted_uses_existing_inverter():
    net = Netlist("inv")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("na", "INV", ["a"])
    net.add_gate("x", "NAND", ["a", "a"])  # x == ~a
    net.add_gate("y", "OR", ["x", "b"])
    net.set_pos(["y", "na"])
    cand = Candidate(target="x", kind="OS2", sources=("a",), inverted=True)
    rec = apply_candidate(net, cand)
    assert rec.replacement == "na"       # reused, no new gate
    assert rec.added_gates == []
    assert check_equivalence(
        net, net.copy()
    )


def test_os2_inverted_inserts_inverter_when_needed():
    net = Netlist("inv2")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("x", "NAND", ["a", "a"])
    net.add_gate("y", "OR", ["x", "b"])
    net.set_pos(["y"])
    before = net.copy()
    cand = Candidate(target="x", kind="OS2", sources=("a",), inverted=True)
    rec = apply_candidate(net, cand, library=mcnc_like())
    assert len(rec.added_gates) == 1
    new_gate = net.gates[rec.added_gates[0]]
    assert new_gate.func.name == "INV"
    assert new_gate.cell == "inv1"
    assert check_equivalence(before, net)


def test_os3_application_fig4():
    """Fig. 4: substitute a stem by a new AND gate."""
    net = Netlist("os3")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("n1", "INV", ["a"])
    net.add_gate("n2", "NOR", ["n1", "b"])   # == a & ~b... (~(~a | b))
    net.add_gate("y", "OR", ["n2", "b"])
    net.set_pos(["y"])
    before = net.copy()
    # replace n2 by ANDN(a, b) == a & ~b, same function
    from repro.netlist.gatefunc import ANDN

    cand = Candidate(target="n2", kind="OS3", sources=("a", "b"),
                     form=TwoInputForm(AND, False, True))
    rec = apply_candidate(net, cand, library=mcnc_like())
    assert len(rec.added_gates) == 1
    assert net.gates[rec.added_gates[0]].func is ANDN
    assert check_equivalence(before, net)


def test_cycle_rejected():
    net = dup_net()
    # e is in the fanout of d2: substituting d2 <- e is a cycle
    cand = Candidate(target="d2", kind="OS2", sources=("e",))
    with pytest.raises(TransformError):
        apply_candidate(net, cand)
    net.validate()  # netlist must be intact after the failed attempt
    assert check_equivalence(net, dup_net())


def test_missing_source_rejected():
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("ghost",))
    with pytest.raises(TransformError):
        apply_candidate(net, cand)


def test_stale_branch_rejected():
    net = dup_net()
    cand = Candidate(target=Branch("nonexistent", 0), kind="IS2",
                     sources=("d1",))
    with pytest.raises(TransformError):
        apply_candidate(net, cand)


def test_affected_outputs():
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    assert affected_outputs(net, cand) == [1]   # only 'e'
    cand_d1 = Candidate(target="d1", kind="OS2", sources=("d2",))
    assert affected_outputs(net, cand_d1) == [0]


@pytest.mark.parametrize("proof", ["sat", "bdd", "auto"])
def test_prove_valid_candidate(proof):
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    assert prove_candidate(net, cand, proof=proof)


@pytest.mark.parametrize("proof", ["sat", "bdd", "auto"])
def test_prove_invalid_candidate(proof):
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("c",))
    assert not prove_candidate(net, cand, proof=proof)


def test_prove_none_trusts_simulation():
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("c",))
    assert prove_candidate(net, cand, proof="none")


def test_prove_unknown_backend():
    net = dup_net()
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    with pytest.raises(ValueError):
        prove_candidate(net, cand, proof="quantum")


def test_area_delta():
    lib = mcnc_like()
    net = dup_net()
    lib.rebind(net)
    cand = Candidate(target="d2", kind="OS2", sources=("d1",))
    rec = apply_candidate(net, cand, library=lib)
    assert rec.area_delta(lib, net) == pytest.approx(-lib["and2"].area)
