"""Unit tests for the netlist data structure."""

import pytest

from repro.netlist import (
    AND, Branch, Netlist, NetlistError, constant_signal,
)


def fig1():
    """The paper's Figure 1: d = AND(a,b), e = INV(c), f = OR(d,e)."""
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_basic_structure():
    net = fig1()
    net.validate()
    assert net.num_gates == 3
    assert net.num_literals == 5
    assert net.is_pi("a") and not net.is_pi("d")
    assert net.is_po("f") and not net.is_po("d")
    assert sorted(net.signals()) == ["a", "b", "c", "d", "e", "f"]


def test_duplicate_signal_rejected():
    net = fig1()
    with pytest.raises(NetlistError):
        net.add_pi("a")
    with pytest.raises(NetlistError):
        net.add_gate("d", "AND", ["a", "b"])


def test_fanouts_and_branches():
    net = fig1()
    assert net.fanouts("d") == [Branch("f", 0)]
    assert net.fanouts("a") == [Branch("d", 0)]
    assert net.fanout_count("f") == 1  # PO only
    assert net.fanout_count("d") == 1


def test_topo_order_and_levels():
    net = fig1()
    order = net.topo_order()
    assert order.index("d") < order.index("f")
    assert order.index("e") < order.index("f")
    levels = net.levels()
    assert levels["a"] == 0 and levels["d"] == 1 and levels["f"] == 2
    assert net.depth() == 2


def test_cycle_detection():
    net = Netlist("cyc")
    net.add_pi("a")
    net.add_gate("x", "AND", ["a", "y"])
    net.add_gate("y", "AND", ["a", "x"])
    net.set_pos(["y"])
    with pytest.raises(NetlistError):
        net.topo_order()


def test_validate_catches_dangling_input():
    net = Netlist("bad")
    net.add_pi("a")
    net.add_gate("x", "AND", ["a", "ghost"])
    net.set_pos(["x"])
    with pytest.raises(NetlistError):
        net.validate()


def test_validate_catches_undriven_po():
    net = Netlist("bad")
    net.add_pi("a")
    net.set_pos(["nope"])
    with pytest.raises(NetlistError):
        net.validate()


def test_transitive_cones():
    net = fig1()
    assert net.transitive_fanout("a") == {"d", "f"}
    assert net.transitive_fanout("d") == {"d", "f"}
    assert net.transitive_fanin("f") == {"a", "b", "c", "d", "e", "f"}
    assert net.support("f") == {"a", "b", "c"}
    assert net.support("d") == {"a", "b"}


def test_copy_is_independent():
    net = fig1()
    dup = net.copy()
    dup.add_gate("z", AND, ["a", "f"])
    dup.add_po("z")
    assert "z" not in net.gates
    assert net.pos == ["f"]
    net.validate()
    dup.validate()


def test_fresh_name_unique():
    net = fig1()
    names = {net.fresh_name("t") for _ in range(100)}
    assert len(names) == 100
    assert all(not net.has_signal(n) for n in names)


def test_constant_signal_shared():
    net = fig1()
    c0 = constant_signal(net, 0)
    assert constant_signal(net, 0) == c0
    c1 = constant_signal(net, 1)
    assert c1 != c0
    assert net.gates[c0].func.name == "CONST0"
    assert net.gates[c1].func.name == "CONST1"


def test_stats():
    stats = fig1().stats()
    assert stats == {"pis": 3, "pos": 1, "gates": 3, "literals": 5,
                     "depth": 2}
