"""Tests for cone traversals: MFFC, cone extraction, level filters."""

import pytest

from repro.library import mcnc_like
from repro.netlist import Netlist, cone_area, extract_cone, gates_between, mffc
from repro.netlist.traverse import structural_distance_ok
from repro.sim import truth_table_of


def tree_net():
    """y = ((a&b) | (c&d)) & e, with an extra tap on (a&b)."""
    net = Netlist("tree")
    for pi in "abcde":
        net.add_pi(pi)
    net.add_gate("p", "AND", ["a", "b"])
    net.add_gate("q", "AND", ["c", "d"])
    net.add_gate("r", "OR", ["p", "q"])
    net.add_gate("y", "AND", ["r", "e"])
    net.add_gate("tap", "INV", ["p"])
    net.set_pos(["y", "tap"])
    return net


def test_mffc_excludes_shared_logic():
    net = tree_net()
    cone = mffc(net, "y")
    # p is shared with 'tap': only y, r, q are exclusively y's.
    assert cone == {"y", "r", "q"}


def test_mffc_of_pi_and_missing():
    net = tree_net()
    assert mffc(net, "a") == set()
    assert mffc(net, "nonexistent") == set()


def test_mffc_whole_cone_when_unshared():
    net = tree_net()
    # remove the tap: now p is exclusive to y as well
    del net.gates["tap"]
    net.set_pos(["y"])
    net.invalidate()
    assert mffc(net, "y") == {"y", "r", "q", "p"}


def test_mffc_pins_pos():
    net = tree_net()
    net.add_po("r")  # r is now observable: cannot be reclaimed
    net.invalidate()
    assert mffc(net, "y") == {"y"}


def test_cone_area():
    net = tree_net()
    lib = mcnc_like()
    lib.rebind(net)
    cone = mffc(net, "y")
    area = cone_area(net, cone, lib.gate_area)
    assert area == pytest.approx(
        lib["and2"].area * 2 + lib["or2"].area
    )


def test_extract_cone_function_preserved():
    net = tree_net()
    sub = extract_cone(net, ["r"])
    assert set(sub.pis) == {"a", "b", "c", "d"}
    assert sub.pos == ["r"]
    table = truth_table_of(sub)
    for v in range(16):
        a, b, c, d = v & 1, (v >> 1) & 1, (v >> 2) & 1, (v >> 3) & 1
        assert table[v] == ((a & b) | (c & d))


def test_extract_cone_multiple_outputs():
    net = tree_net()
    sub = extract_cone(net, ["p", "q"])
    assert sub.num_gates == 2
    assert sub.pos == ["p", "q"]


def test_gates_between():
    net = tree_net()
    assert gates_between(net, "p", "y") == {"p", "r", "y"}
    assert gates_between(net, "q", "tap") == set()


def test_structural_distance():
    levels = {"a": 0, "x": 3, "y": 5}
    assert structural_distance_ok(levels, "x", "y", None)
    assert structural_distance_ok(levels, "x", "y", 2)
    assert not structural_distance_ok(levels, "a", "y", 2)
