"""Unit tests for netlist editing primitives."""

import pytest

from repro.netlist import (
    Branch, Netlist, NetlistError, find_inverted, insert_gate,
    insert_inverter, propagate_constants, prune_dangling, remove_gate,
    replace_input, set_branch_constant, substitute_stem, would_create_cycle,
)
from repro.sim import truth_table_of


def chain():
    net = Netlist("chain")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("x", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["x", "a"])
    net.add_gate("z", "INV", ["y"])
    net.set_pos(["z"])
    return net


def test_replace_input():
    net = chain()
    old = replace_input(net, Branch("y", 0), "b")
    assert old == "x"
    assert net.gates["y"].inputs == ["b", "a"]
    net.validate()


def test_replace_input_bad_pin():
    net = chain()
    with pytest.raises(NetlistError):
        replace_input(net, Branch("y", 5), "b")
    with pytest.raises(NetlistError):
        replace_input(net, Branch("y", 0), "ghost")


def test_substitute_stem_redirects_everything():
    net = chain()
    net.add_po("y")  # y is now also a PO
    count = substitute_stem(net, "y", "x")
    assert count == 2  # the INV pin and the PO slot
    assert net.gates["z"].inputs == ["x"]
    assert net.pos == ["z", "x"]


def test_substitute_stem_self_rejected():
    net = chain()
    with pytest.raises(NetlistError):
        substitute_stem(net, "y", "y")


def test_prune_dangling_removes_mffc():
    net = chain()
    substitute_stem(net, "y", "a")
    removed = prune_dangling(net, roots=["y"])
    names = {g.output for g in removed}
    assert names == {"y", "x"}  # x fed only y
    net.validate()


def test_prune_keeps_pos():
    net = chain()
    removed = prune_dangling(net)
    assert removed == []


def test_remove_gate_requires_no_fanout():
    net = chain()
    with pytest.raises(NetlistError):
        remove_gate(net, "x")


def test_insert_gate_and_inverter():
    net = chain()
    sig = insert_gate(net, "AND", ["a", "b"], hint="extra")
    assert net.gates[sig].func.name == "AND"
    inv = insert_inverter(net, "a")
    assert net.gates[inv].func.name == "INV"
    assert find_inverted(net, "a") == inv
    # the inverter's complement is its own input
    assert find_inverted(net, inv) == "a"


def test_would_create_cycle():
    net = chain()
    assert would_create_cycle(net, "x", "z")
    assert would_create_cycle(net, "x", "y")
    assert not would_create_cycle(net, "z", "a")
    assert would_create_cycle(net, "x", "x")


def test_set_branch_constant_and_simplify():
    net = chain()
    assert truth_table_of(net) == [1, 0, 1, 0]  # z = ~(ab | a) = ~a
    # Tie pin 1 ('a') of gate y to 0: y = x|0 = x -> z = ~(ab)
    set_branch_constant(net, Branch("y", 1), 0)
    assert net.gates["y"].func.name == "BUF"
    propagate_constants(net)
    net.validate()
    after = truth_table_of(net)
    # z = ~(a&b): rows a=1,b=1 -> 0 else 1
    assert after == [1, 1, 1, 0]


def test_constant_propagation_through_xor():
    net = Netlist("x")
    net.add_pi("a")
    net.add_gate("c1", "CONST1", [])
    net.add_gate("y", "XOR", ["a", "c1"])
    net.set_pos(["y"])
    propagate_constants(net)
    net.validate()
    assert truth_table_of(net) == [1, 0]  # y = ~a


def test_constant_propagation_collapses_and():
    net = Netlist("c")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("c0", "CONST0", [])
    net.add_gate("m", "AND", ["a", "c0"])
    net.add_gate("y", "OR", ["m", "b"])
    net.set_pos(["y"])
    propagate_constants(net)
    net.validate()
    assert truth_table_of(net) == [0, 0, 1, 1]  # y = b


def test_propagate_constants_nand_nor():
    net = Netlist("nn")
    net.add_pi("a")
    net.add_gate("c1", "CONST1", [])
    net.add_gate("n", "NAND", ["a", "c1"])  # = ~a
    net.add_gate("r", "NOR", ["n", "c1"])   # = 0
    net.set_pos(["r"])
    propagate_constants(net)
    net.validate()
    assert truth_table_of(net) == [0, 0]
