"""Unit tests for primitive gate functions."""

import itertools

import numpy as np
import pytest

from repro.netlist.gatefunc import (
    ALL_FUNCS, AND, ANDN, AOI21, AOI22, BUF, CONST0, CONST1, FUNC_BY_NAME,
    INV, MAJ3, MUX21, NAND, NOR, OAI21, OAI22, OR, ORN, XNOR, XOR,
    func_from_name, two_input_forms,
)

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _words(bits):
    return [np.array([_ALL_ONES if b else 0], dtype=np.uint64) for b in bits]


@pytest.mark.parametrize("func", [f for f in ALL_FUNCS if f.arity not in (0,)])
def test_eval_words_matches_eval_bits(func):
    nin = func.arity if func.arity is not None else 3
    for bits in itertools.product((0, 1), repeat=nin):
        word = func.eval_words(_words(bits))[0]
        expected = func.eval_bits(bits)
        assert int(word & np.uint64(1)) == expected
        # words must be all-0 or all-1 for constant inputs
        assert word in (np.uint64(0), _ALL_ONES)


@pytest.mark.parametrize("func", [f for f in ALL_FUNCS])
def test_cnf_characterizes_truth_table(func):
    nin = func.arity if func.arity is not None else 2
    ins = list(range(1, nin + 1))
    out = nin + 1
    clauses = func.cnf(out, ins)
    for bits in itertools.product((0, 1), repeat=nin + 1):
        assign = {v: bool(bits[v - 1]) for v in range(1, nin + 2)}
        satisfied = all(
            any(assign[abs(l)] == (l > 0) for l in cl) for cl in clauses
        )
        consistent = bits[nin] == func.eval_bits(bits[:nin])
        assert satisfied == consistent, (func.name, bits)


def test_nary_and_or_cnf():
    for func, nin in ((AND, 4), (OR, 3), (NAND, 4), (NOR, 3)):
        ins = list(range(1, nin + 1))
        clauses = func.cnf(nin + 1, ins)
        assert len(clauses) == nin + 1


def test_truth_tables_expected():
    assert AND.truth_table(2) == [0, 0, 0, 1]
    assert OR.truth_table(2) == [0, 1, 1, 1]
    assert XOR.truth_table(2) == [0, 1, 1, 0]
    assert XNOR.truth_table(2) == [1, 0, 0, 1]
    assert INV.truth_table(1) == [1, 0]
    assert MUX21.truth_table(3) == [0, 1, 0, 1, 0, 0, 1, 1]
    assert MAJ3.truth_table(3) == [0, 0, 0, 1, 0, 1, 1, 1]


def test_aoi_oai():
    for a, b, c in itertools.product((0, 1), repeat=3):
        assert AOI21.eval_bits([a, b, c]) == 1 - ((a & b) | c)
        assert OAI21.eval_bits([a, b, c]) == 1 - ((a | b) & c)
    for a, b, c, d in itertools.product((0, 1), repeat=4):
        assert AOI22.eval_bits([a, b, c, d]) == 1 - ((a & b) | (c & d))
        assert OAI22.eval_bits([a, b, c, d]) == 1 - ((a | b) & (c | d))


def test_func_from_name():
    assert func_from_name("and") is AND
    assert func_from_name("XNOR") is XNOR
    with pytest.raises(KeyError):
        func_from_name("FOO")


def test_arity_checks():
    with pytest.raises(ValueError):
        XOR._check_arity(3)
    with pytest.raises(ValueError):
        INV._check_arity(2)
    AND._check_arity(7)  # n-ary: fine


def test_constants():
    assert CONST0.eval_bits([]) == 0
    assert CONST1.eval_bits([]) == 1
    assert CONST0.cnf(5, []) == [(-5,)]
    assert CONST1.cnf(5, []) == [(5,)]


def test_two_input_forms_complete_and_distinct():
    forms = two_input_forms(include_xor=True)
    assert len(forms) == 10
    tables = set()
    for form in forms:
        table = tuple(
            form.eval_bits(b, c) for b, c in itertools.product((0, 1), repeat=2)
        )
        tables.add(table)
    # All 10 forms compute distinct, non-degenerate 2-input functions.
    assert len(tables) == 10
    no_xor = two_input_forms(include_xor=False)
    assert len(no_xor) == 8
    assert all(f.base.name in ("AND", "OR") for f in no_xor)


def test_two_input_form_words_match_bits():
    for form in two_input_forms():
        for b, c in itertools.product((0, 1), repeat=2):
            wb = np.array([_ALL_ONES if b else 0], dtype=np.uint64)
            wc = np.array([_ALL_ONES if c else 0], dtype=np.uint64)
            got = int(form.eval_words(wb, wc)[0] & np.uint64(1))
            assert got == form.eval_bits(b, c)
