"""Tests for fault modelling, SAT-ATPG, PODEM, and redundancy removal."""

import random

import pytest

from repro.atpg import (
    Fault, candidate_redundancies, full_fault_list, generate_test,
    inject_fault, is_redundant, podem_generate, remove_all_redundancies,
)
from repro.netlist import Branch, Netlist
from repro.sim import BitSimulator, vectors_to_words
from repro.verify import check_equivalence


def redundant_net():
    """y = (a & b) | (a & ~b) == a: the b-branches are redundant-ish;
    specifically t2's b-input stuck-at faults include redundancies."""
    net = Netlist("red")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("nb", "INV", ["b"])
    net.add_gate("t1", "AND", ["a", "b"])
    net.add_gate("t2", "AND", ["a", "nb"])
    net.add_gate("y", "OR", ["t1", "t2"])
    net.set_pos(["y"])
    return net


def test_fault_model_basics():
    net = redundant_net()
    fault = Fault("t1", 0)
    assert not fault.is_branch
    assert fault.signal(net) == "t1"
    branch_fault = Fault(Branch("y", 0), 1)
    assert branch_fault.is_branch
    assert branch_fault.signal(net) == "t1"
    with pytest.raises(ValueError):
        Fault("t1", 2)


def test_full_fault_list_counts():
    net = redundant_net()
    faults = full_fault_list(net)
    stems = [f for f in faults if not f.is_branch]
    branches = [f for f in faults if f.is_branch]
    # every signal: 2 stem faults
    assert len(stems) == 2 * (2 + 4)
    # only multi-fanout signals get branch faults: a (2 fanouts), b (2)
    assert len(branches) == 2 * 2 + 2 * 2


def test_inject_fault_semantics():
    net = redundant_net()
    faulty = inject_fault(net, Fault("a", 0))
    state = BitSimulator(faulty).simulate(
        vectors_to_words(faulty.pis, [{"a": 1, "b": 1}])
    )
    assert state.bit(faulty.pos[0], 0) == 0  # y stuck low when a s-a-0


def test_testable_fault_has_valid_test():
    net = redundant_net()
    fault = Fault("a", 0)
    res = generate_test(net, fault)
    assert res.testable
    faulty = inject_fault(net, fault)
    good = BitSimulator(net).simulate(vectors_to_words(net.pis, [res.test]))
    bad = BitSimulator(faulty).simulate(
        vectors_to_words(faulty.pis, [res.test]))
    assert any(
        good.bit(p1, 0) != bad.bit(p2, 0)
        for p1, p2 in zip(net.pos, faulty.pos)
    )


def test_redundant_fault_detected():
    # y = a | (a & b): the (a & b) term is absorbed; t-branch s-a-0 is
    # untestable.
    net = Netlist("absorb")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "t"])
    net.set_pos(["y"])
    assert is_redundant(net, Fault("t", 0))
    assert not is_redundant(net, Fault("a", 0))


def test_podem_agrees_with_sat_on_random_nets():
    rnd = random.Random(20)
    funcs = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR"]
    for trial in range(8):
        net = Netlist(f"r{trial}")
        sigs = [net.add_pi(f"i{k}") for k in range(4)]
        for k in range(10):
            f = rnd.choice(funcs + ["INV"])
            ins = [rnd.choice(sigs)] if f == "INV" else rnd.sample(sigs, 2)
            sigs.append(net.add_gate(f"g{k}", f, ins))
        net.set_pos(sigs[-2:])
        for fault in full_fault_list(net)[:24]:
            sat_res = generate_test(net, fault)
            pod_res = podem_generate(net, fault, max_backtracks=4000)
            assert pod_res.status != "aborted"
            assert sat_res.status == pod_res.status, (trial, fault)


def test_podem_redundant():
    net = Netlist("absorb")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "t"])
    net.set_pos(["y"])
    assert podem_generate(net, Fault("t", 0)).redundant


def test_candidate_redundancies_include_real_one():
    net = Netlist("absorb")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "t"])
    net.set_pos(["y"])
    cands = candidate_redundancies(net, n_words=8)
    assert any(
        f.is_branch and f.value == 0 and f.signal(net) == "t" for f in cands
    )


def test_remove_all_redundancies_preserves_function():
    net = Netlist("absorb2")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("u", "OR", ["a", "t"])    # u == a
    net.add_gate("y", "AND", ["u", "c"])
    net.set_pos(["y"])
    original = net.copy()
    removed = remove_all_redundancies(net)
    assert removed >= 1
    net.validate()
    assert check_equivalence(original, net)
    assert net.num_literals < original.num_literals


def test_unconnected_fault_site_redundant():
    net = Netlist("dead")
    net.add_pi("a")
    net.add_gate("x", "INV", ["a"])
    net.add_gate("y", "BUF", ["a"])
    net.set_pos(["y"])
    # x drives nothing: any fault on it is untestable
    assert generate_test(net, Fault("x", 0)).redundant
