"""Tests for ATPG campaigns: coverage, fault simulation, compaction."""

import pytest

from repro.atpg import (
    Fault, compact_tests, fault_simulate, full_fault_list, run_campaign,
)
from repro.netlist import Branch, Netlist


def c17_like():
    net = Netlist("c17")
    for pi in ("i1", "i2", "i3", "i6", "i7"):
        net.add_pi(pi)
    net.add_gate("n10", "NAND", ["i1", "i3"])
    net.add_gate("n11", "NAND", ["i3", "i6"])
    net.add_gate("n16", "NAND", ["i2", "n11"])
    net.add_gate("n19", "NAND", ["n11", "i7"])
    net.add_gate("n22", "NAND", ["n10", "n16"])
    net.add_gate("n23", "NAND", ["n16", "n19"])
    net.set_pos(["n22", "n23"])
    return net


def redundant_net():
    net = Netlist("red")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "t"])
    net.set_pos(["y"])
    return net


def test_campaign_full_coverage_on_c17():
    """c17 is fully testable: 100% coverage, no redundancies."""
    net = c17_like()
    result = run_campaign(net)
    assert result.redundant == 0
    assert result.aborted == 0
    assert result.coverage == pytest.approx(1.0)
    assert result.detected == result.total_faults
    assert len(result.tests) <= result.total_faults  # sim dropped many


def test_campaign_classifies_redundancy():
    net = redundant_net()
    result = run_campaign(net)
    assert result.redundant >= 1
    assert result.coverage == pytest.approx(1.0)
    assert 0.0 < result.redundancy_ratio < 1.0
    assert any(
        isinstance(f.site, Branch) or isinstance(f.site, str)
        for f in result.redundant_faults
    )


def test_fault_simulate_detects_known_fault():
    net = c17_like()
    # i1 stuck-at-1: testable; find a test via the campaign machinery.
    fault = Fault("i1", 1)
    from repro.atpg import generate_test

    res = generate_test(net, fault)
    assert res.testable
    detected = fault_simulate(net, [res.test], [fault])
    assert detected == [fault]
    # the opposite-polarity vector should not detect it
    flipped = {k: 1 - v for k, v in res.test.items()}
    maybe = fault_simulate(net, [flipped], [fault])
    assert maybe in ([], [fault])  # just must not crash; usually empty


def test_fault_simulate_empty_inputs():
    net = c17_like()
    assert fault_simulate(net, [], full_fault_list(net)) == []
    assert fault_simulate(net, [{pi: 0 for pi in net.pis}], []) == []


def test_compaction_keeps_coverage():
    net = c17_like()
    result = run_campaign(net, drop_by_simulation=False)
    # without drop-by-sim there is one test per testable fault
    assert len(result.tests) == result.detected
    compacted = compact_tests(net, result.tests)
    assert len(compacted) <= len(result.tests)
    faults = full_fault_list(net)
    before = {f.describe(net) for f in fault_simulate(net, result.tests,
                                                      faults)}
    after = {f.describe(net) for f in fault_simulate(net, compacted,
                                                     faults)}
    assert after == before


def test_campaign_on_selected_faults():
    net = c17_like()
    picked = full_fault_list(net)[:6]
    result = run_campaign(net, faults=picked)
    assert result.total_faults == 6
    assert result.detected + result.redundant + result.aborted >= 6 or \
        result.detected <= 6
