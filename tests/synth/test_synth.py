"""Tests for the synthesis substrate: AIG, rewriting, balancing,
mapping, scripts."""

import random

import pytest

from repro.library import mcnc_like, parse_genlib
from repro.netlist import Netlist
from repro.synth import (
    Aig, MappingError, aig_from_netlist, balance, compress, live_ands,
    map_aig, map_netlist, netlist_from_aig, script_delay, script_rugged,
)
from repro.synth.aig import FALSE_LIT, TRUE_LIT, lit_not
from repro.timing import Sta
from repro.verify import check_equivalence


def random_net(seed, n_pi=6, n_gates=30, n_po=3):
    rnd = random.Random(seed)
    funcs = ["AND", "OR", "NAND", "NOR", "XOR", "XNOR", "INV", "AOI21",
             "MUX21"]
    net = Netlist(f"r{seed}")
    sigs = [net.add_pi(f"i{k}") for k in range(n_pi)]
    for k in range(n_gates):
        f = rnd.choice(funcs)
        nin = {"INV": 1, "AOI21": 3, "MUX21": 3}.get(f, 2)
        sigs.append(net.add_gate(f"g{k}", f, [rnd.choice(sigs)
                                              for _ in range(nin)]))
    net.set_pos(sigs[-n_po:])
    return net


def test_aig_constant_rules():
    aig = Aig(["a", "b"])
    a, b = aig.pi_lit(0), aig.pi_lit(1)
    assert aig.lit_and(a, FALSE_LIT) == FALSE_LIT
    assert aig.lit_and(a, TRUE_LIT) == a
    assert aig.lit_and(a, a) == a
    assert aig.lit_and(a, lit_not(a)) == FALSE_LIT


def test_aig_strash():
    aig = Aig(["a", "b"])
    a, b = aig.pi_lit(0), aig.pi_lit(1)
    x1 = aig.lit_and(a, b)
    x2 = aig.lit_and(b, a)
    assert x1 == x2
    assert aig.n_ands == 1


def test_aig_absorption_rules():
    aig = Aig(["a", "b"])
    a, b = aig.pi_lit(0), aig.pi_lit(1)
    ab = aig.lit_and(a, b)
    # a & (a & b) == a & b
    assert aig.lit_and(a, ab) == ab
    # a & ~(a & b) == a & ~b
    got = aig.lit_and(a, lit_not(ab))
    expected = aig.lit_and(a, lit_not(b))
    assert got == expected
    # a | (a & b) == a  (via De Morgan in the AIG)
    assert aig.lit_or(a, ab) == a


def test_aig_rules_disabled():
    aig = Aig(["a", "b"], rules=False)
    a, b = aig.pi_lit(0), aig.pi_lit(1)
    ab = aig.lit_and(a, b)
    # without rules the containment case builds a new node
    assert aig.lit_and(a, ab) != ab
    # but plain strash still fires
    assert aig.lit_and(b, a) == ab


def test_xor_mux_builders():
    aig = Aig(["a", "b", "s"])
    a, b, s = (aig.pi_lit(k) for k in range(3))
    aig.add_po(aig.lit_xor(a, b), "x")
    aig.add_po(aig.lit_mux(s, b, a), "m")
    net = netlist_from_aig(aig)
    from repro.sim import truth_table_of

    tx = truth_table_of(net, net.pos[0])
    tm = truth_table_of(net, net.pos[1])
    for v in range(8):
        va, vb, vs = v & 1, (v >> 1) & 1, (v >> 2) & 1
        assert tx[v] == va ^ vb
        assert tm[v] == (vb if vs else va)


@pytest.mark.parametrize("seed", range(4))
def test_aig_roundtrip_equivalence(seed):
    net = random_net(seed)
    aig = aig_from_netlist(net)
    again = netlist_from_aig(aig, name="rt")
    assert check_equivalence(net, again)


@pytest.mark.parametrize("seed", range(4))
def test_compress_preserves_function(seed):
    net = random_net(seed)
    aig = aig_from_netlist(net)
    small = compress(aig)
    assert live_ands(small) <= live_ands(aig)
    assert check_equivalence(net, netlist_from_aig(small, name="c"))


@pytest.mark.parametrize("seed", range(4))
def test_balance_preserves_function_and_depth(seed):
    net = random_net(seed)
    aig = compress(aig_from_netlist(net))
    bal = balance(aig)
    assert bal.depth() <= aig.depth()
    assert check_equivalence(net, netlist_from_aig(bal, name="b"))


def test_balance_flattens_chain():
    # A linear AND chain of 8 inputs balances to depth 3.
    aig = Aig([f"x{k}" for k in range(8)])
    acc = aig.pi_lit(0)
    for k in range(1, 8):
        acc = aig.lit_and(acc, aig.pi_lit(k))
    aig.add_po(acc, "y")
    assert aig.depth() == 7
    assert balance(aig).depth() == 3


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("mode", ["area", "delay"])
def test_mapping_preserves_function(seed, mode):
    net = random_net(seed)
    lib = mcnc_like()
    mapped = map_netlist(net, lib, mode=mode)
    mapped.validate()
    assert check_equivalence(net, mapped)
    # everything is bound to a cell
    for gate in mapped.gates.values():
        if gate.func.name not in ("CONST0", "CONST1"):
            assert gate.cell in lib.cells


@pytest.mark.parametrize("seed", range(4))
def test_tree_mapping_preserves_function(seed):
    net = random_net(seed)
    lib = mcnc_like()
    mapped = map_netlist(net, lib, mode="area", tree=True)
    assert check_equivalence(net, mapped)


def test_delay_mode_not_slower_than_area_mode():
    lib = mcnc_like()
    worse = 0
    for seed in range(6):
        net = random_net(seed, n_gates=40)
        d_area = Sta(map_netlist(net, lib, mode="area"), lib).delay
        d_delay = Sta(map_netlist(net, lib, mode="delay"), lib).delay
        if d_delay > d_area + 1e-6:
            worse += 1
    # the delay mapper may lose individual cases (load effects are
    # estimated), but not systematically
    assert worse <= 2


def test_mapper_needs_inverter():
    lib = parse_genlib(
        "GATE and2 1 o=a*b; PIN * NONINV 1 999 1 0.1 1 0.1"
    )
    with pytest.raises(MappingError):
        map_netlist(random_net(0), lib)


@pytest.mark.parametrize("era", ["1995", "modern"])
def test_scripts_equivalence(era):
    lib = mcnc_like()
    for seed in range(2):
        net = random_net(seed)
        assert check_equivalence(net, script_rugged(net, lib, era=era))
        assert check_equivalence(net, script_delay(net, lib, era=era))


def test_script_bad_era():
    with pytest.raises(ValueError):
        script_rugged(random_net(0), mcnc_like(), era="1885")


def test_constant_po_mapping():
    net = Netlist("k")
    net.add_pi("a")
    net.add_gate("y", "XNOR", ["a", "a"])  # constant 1
    net.set_pos(["y"])
    lib = mcnc_like()
    mapped = map_netlist(net, lib)
    assert check_equivalence(net, mapped)
