"""Tests for the clause theory layer (Sec. 2 of the paper)."""

import pytest

from repro.clauses import (
    Clause, ObsLit, SigLit, c1_clauses, c2_clauses, c3_clauses,
    circuit_characteristic_clauses, clause, gate_characteristic_clauses,
    structural_observability_clauses,
)
from repro.netlist import Branch, Netlist
from repro.sim import BitSimulator, ObservabilityEngine


def fig1():
    net = Netlist("fig1")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "INV", ["c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def exhaustive_engine(net):
    sim = BitSimulator(net)
    return ObservabilityEngine(sim, sim.simulate_exhaustive())


def test_clause_families_sizes():
    assert len(c1_clauses("a")) == 2
    assert len(c2_clauses("a", "b")) == 4
    assert len(c3_clauses("a", "b", "c")) == 8
    assert all(c.order == 1 for c in c1_clauses("a"))
    assert all(c.order == 2 for c in c2_clauses("a", "b"))
    assert all(c.order == 3 for c in c3_clauses("a", "b", "c"))


def test_clause_describe():
    c = clause(ObsLit("a", False), SigLit("a", False), SigLit("b", True))
    assert c.describe() == "(~O[a] + ~a + b)"
    br = clause(ObsLit(Branch("g", 1), False), SigLit("x", True))
    assert "g/1" in br.describe()


def test_empty_clause_rejected():
    with pytest.raises(ValueError):
        Clause([])


def test_gate_characteristic_clauses_fig1():
    """Sec. 2's example: AND gate d gives
    (~d + a)(~d + b)(d + ~a + ~b)."""
    net = fig1()
    clauses = gate_characteristic_clauses(net, "d")
    rendered = {c.describe() for c in clauses}
    assert rendered == {"(~d + a)", "(~d + b)", "(d + ~a + ~b)"}
    inv = {c.describe() for c in gate_characteristic_clauses(net, "e")}
    assert inv == {"(~e + ~c)", "(e + c)"}
    orc = {c.describe() for c in gate_characteristic_clauses(net, "f")}
    assert orc == {"(f + ~d)", "(f + ~e)", "(~f + d + e)"}


def test_circuit_characteristic_formula_valid_on_all_vectors():
    """Every characteristic clause is a valid clause (Definition 1)."""
    net = fig1()
    eng = exhaustive_engine(net)
    for c in circuit_characteristic_clauses(net):
        assert c.holds_on(eng), c.describe()


def test_structural_observability_clauses_fig1():
    """Sec. 2: (~O_a + O_d), (~O_a + b), (~O_b + a) for the AND gate."""
    net = fig1()
    eng = exhaustive_engine(net)
    clauses = structural_observability_clauses(net, "d")
    for c in clauses:
        assert c.holds_on(eng), c.describe()
    rendered = {c.describe() for c in clauses}
    assert "(~O[d/0] + O[d])" in rendered
    assert "(~O[d/0] + b)" in rendered
    assert "(~O[d/1] + a)" in rendered


def test_or_gate_observability_clauses():
    net = fig1()
    eng = exhaustive_engine(net)
    for c in structural_observability_clauses(net, "f"):
        assert c.holds_on(eng), c.describe()


def test_validity_by_simulation_stuck_at():
    """A circuit with a redundant connection yields a valid C1-clause."""
    net = Netlist("absorb")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("t", "AND", ["a", "b"])
    net.add_gate("y", "OR", ["a", "t"])
    net.set_pos(["y"])
    eng = exhaustive_engine(net)
    branch = Branch("y", 1)  # the t-input of the OR
    # t stuck-at-0 is redundant: the clause (~Ot' + ~t) is valid.
    valid_c1 = clause(ObsLit(branch, False), SigLit(branch, False))
    assert valid_c1.holds_on(eng)
    # but (~Ot' + t) is invalid (vector a=0,b=1 has t=0... observable?)
    other = clause(ObsLit(branch, False), SigLit(branch, True))
    # (~Oy...) y branch obs: t observable iff a=0; a=0 -> t=0: valid too?
    # a=0 => t = 0. So (~O + t) is falsified whenever a=0 (obs) and t=0.
    assert not other.holds_on(eng)


def test_invalid_clause_discarded():
    net = fig1()
    eng = exhaustive_engine(net)
    # (~Od + d): d stuck-at-1 is testable, so the clause is invalid.
    assert clause(ObsLit("d", False), SigLit("d", True)).falsified_by(eng)


def test_clause_words_shape():
    net = fig1()
    eng = exhaustive_engine(net)
    c = clause(ObsLit("d", False), SigLit("d", True))
    assert c.words(eng).shape == eng.value("d").shape
