"""Tests for BPFS candidate enumeration and the Sec. 4 reduction
filters."""


from repro.clauses import CandidateEnumerator
from repro.library import unit_delay_library
from repro.netlist import Netlist
from repro.sim import BitSimulator, ObservabilityEngine
from repro.timing import Sta
from repro.transform import apply_candidate
from repro.verify import check_equivalence


def dup_net():
    """Contains an exact duplicate pair (d1, d2) plus an XOR identity:
    x  = a ^ b, y = ~a & b | a & ~b  (same function, different gates)."""
    net = Netlist("dup")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("d1", "AND", ["a", "b"])
    net.add_gate("d2", "AND", ["b", "a"])
    net.add_gate("x", "XOR", ["a", "b"])
    net.add_gate("na", "INV", ["a"])
    net.add_gate("nb", "INV", ["b"])
    net.add_gate("t1", "AND", ["na", "b"])
    net.add_gate("t2", "AND", ["a", "nb"])
    net.add_gate("y", "OR", ["t1", "t2"])
    net.add_gate("o1", "OR", ["d1", "x"])
    net.add_gate("o2", "AND", ["d2", "y"])
    net.set_pos(["o1", "o2"])
    return net


def make_enum(net, **kwargs):
    lib = unit_delay_library()
    lib.rebind(net)
    sta = Sta(net, lib)
    sim = BitSimulator(net)
    eng = ObservabilityEngine(sim, sim.simulate_exhaustive())
    return CandidateEnumerator(net, sta, eng, lib, **kwargs), sta


def test_two_subs_finds_duplicate():
    net = dup_net()
    enum, sta = make_enum(net)
    cands = enum.two_subs("y", arrival_limit=sta.arrival["y"])
    sources = {c.sources[0] for c in cands}
    assert "x" in sources  # y == x


def test_two_subs_respects_arrival_limit():
    net = dup_net()
    enum, sta = make_enum(net)
    # y arrives at 2 (unit), x arrives at 1: limit below 1 excludes x.
    cands = enum.two_subs("y", arrival_limit=0.5)
    assert all(c.sources[0] != "x" for c in cands)


def test_three_subs_finds_xor_recomposition():
    net = dup_net()
    enum, sta = make_enum(net, use_c2_reduction=False)
    cands = enum.three_subs("y", arrival_limit=sta.arrival["y"] + 10)
    forms = {(c.form.base.name, frozenset(c.sources)) for c in cands}
    assert ("XOR", frozenset({"a", "b"})) in forms


def test_c2_reduction_loses_xor(recwarn):
    """The paper: reusing C2 results can lose XOR substitutions."""
    net = dup_net()
    enum, sta = make_enum(net, use_c2_reduction=True)
    with_red = enum.three_subs("y", arrival_limit=sta.arrival["y"] + 10)
    enum2, _ = make_enum(net, use_c2_reduction=False)
    without_red = enum2.three_subs("y", arrival_limit=sta.arrival["y"] + 10)
    assert len(with_red) <= len(without_red)
    assert enum.stats.c3_pairs_checked <= enum2.stats.c3_pairs_checked


def test_three_subs_and_form():
    """o2 = d2 & y: recomposable as AND(d1, x) etc."""
    net = dup_net()
    enum, sta = make_enum(net)
    cands = enum.three_subs("o2", arrival_limit=sta.arrival["o2"] + 10)
    combos = {(c.form.base.name, frozenset(c.sources)) for c in cands}
    assert any(base == "AND" for base, _ in combos)
    # every emitted candidate must actually be valid (exhaustive sim)
    eng = enum.engine
    for cand in cands:
        assert cand.holds_on(eng), cand.describe()


def test_candidates_apply_equivalent():
    """Every candidate from exhaustive simulation is permissible."""
    net = dup_net()
    enum, sta = make_enum(net)
    for target in ["y", "o2", "d2"]:
        for cand in enum.all_candidates(target, sta.arrival[target] + 10):
            work = net.copy()
            apply_candidate(work, cand)
            work.validate()
            assert check_equivalence(net, work), cand.describe()


def test_pool_excludes_tfo_and_constants():
    net = dup_net()
    net.add_gate("k1", "CONST1", [])
    net.invalidate()
    enum, sta = make_enum(net)
    pool = enum.source_pool("d1", arrival_limit=100.0)
    assert "o1" not in pool  # in TFO of d1
    assert "d1" not in pool
    assert "k1" not in pool  # constants banned
    assert "a" in pool


def test_structural_level_filter():
    net = dup_net()
    enum, _ = make_enum(net, level_skew=0)
    pool = enum.source_pool("y", arrival_limit=100.0)
    # with skew 0 only same-level signals survive
    levels = net.levels()
    assert all(levels[s] == levels["y"] for s in pool)


def test_max_pool_cap():
    net = dup_net()
    enum, _ = make_enum(net, max_pool=2)
    pool = enum.source_pool("y", arrival_limit=100.0)
    assert len(pool) <= 2


def test_inverted_candidates():
    """x == ~(XNOR(a,b)); with an inverter present, inverted OS2 works."""
    net = Netlist("invc")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("e", "XNOR", ["a", "b"])
    net.add_gate("ne", "INV", ["e"])
    net.add_gate("x", "XOR", ["a", "b"])
    net.add_gate("o", "OR", ["x", "ne"])
    net.set_pos(["o", "e"])
    enum, sta = make_enum(net, allow_inverted=True)
    cands = enum.two_subs("x", arrival_limit=sta.arrival["x"] + 10)
    inv = [c for c in cands if c.inverted]
    assert any(c.sources[0] == "e" for c in inv)
    no_inv_enum, _ = make_enum(net, allow_inverted=False)
    cands2 = no_inv_enum.two_subs("x", arrival_limit=sta.arrival["x"] + 10)
    assert not any(c.inverted for c in cands2)


def test_delay_targets_ranked_by_ncp():
    net = dup_net()
    enum, sta = make_enum(net)
    targets = enum.delay_targets()
    assert targets  # something is critical
    ncps = [sta.ncp_of(t) for t in targets]
    assert ncps == sorted(ncps, reverse=True)


def test_unobservable_target_yields_nothing():
    net = Netlist("dead")
    net.add_pi("a")
    net.add_pi("b")
    net.add_gate("u", "AND", ["a", "b"])
    net.add_gate("v", "OR", ["u", "a"])
    net.add_gate("w", "BUF", ["a"])
    net.set_pos(["w"])
    enum, _ = make_enum(net)
    assert enum.two_subs("u", arrival_limit=100.0) == []
    assert enum.three_subs("u", arrival_limit=100.0) == []
