"""Tests for PVCCs: Theorems 1 and 2 — clause combinations are valid
exactly when the substitution is permissible."""


import pytest

from repro.clauses import Candidate
from repro.netlist import Branch, Netlist, TwoInputForm, two_input_forms
from repro.sim import BitSimulator, ObservabilityEngine
from repro.transform import apply_candidate
from repro.verify import check_equivalence


def exhaustive_engine(net):
    sim = BitSimulator(net)
    return ObservabilityEngine(sim, sim.simulate_exhaustive())


def test_candidate_validation():
    with pytest.raises(ValueError):
        Candidate(target="a", kind="OS2", sources=("b", "c"))
    with pytest.raises(ValueError):
        Candidate(target="a", kind="OS3", sources=("b",))
    with pytest.raises(ValueError):
        Candidate(target="a", kind="XX2", sources=("b",))
    with pytest.raises(ValueError):
        # OS target must be a stem, not a branch
        Candidate(target=Branch("g", 0), kind="OS2", sources=("b",))


def test_describe():
    c = Candidate(target="a", kind="OS2", sources=("b",), inverted=True)
    assert c.describe() == "OS2(a <- ~b)"
    form = two_input_forms()[1]  # AND(b, ~c)
    c3 = Candidate(target=Branch("g", 1), kind="IS3", sources=("x", "y"),
                   form=form)
    assert c3.describe() == "IS3(g/1 <- AND(x,~y))"


def test_theorem1_clause_combination():
    c = Candidate(target="a", kind="OS2", sources=("b",))
    rendered = sorted(cl.describe() for cl in c.clause_combination())
    assert rendered == ["(~O[a] + a + ~b)", "(~O[a] + ~a + b)"]


def test_theorem2_and_combination():
    form = TwoInputForm(
        __import__("repro.netlist.gatefunc", fromlist=["AND"]).AND,
        False, False)
    c = Candidate(target="a", kind="OS3", sources=("b", "c"), form=form)
    rendered = sorted(cl.describe() for cl in c.clause_combination())
    # two C2-clauses and one C3-clause (Theorem 2)
    assert rendered == [
        "(~O[a] + a + ~b + ~c)",
        "(~O[a] + ~a + b)",
        "(~O[a] + ~a + c)",
    ]


def test_xor_combination_has_four_c3_clauses():
    from repro.netlist.gatefunc import XOR

    c = Candidate(target="a", kind="OS3", sources=("b", "c"),
                  form=TwoInputForm(XOR, False, False))
    clauses = c.clause_combination()
    assert len(clauses) == 4
    assert all(cl.order == 3 for cl in clauses)


def _chain_net():
    """f = (a&b) | (a&b&c): the OR's second input equals (d & c) where
    d = a&b, so several valid substitutions exist."""
    net = Netlist("chain")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "AND", ["d", "c"])
    net.add_gate("f", "OR", ["d", "e"])
    net.set_pos(["f"])
    return net


def test_holds_on_equals_clause_validity():
    """The vectorized check and the clause-object check agree."""
    net = _chain_net()
    eng = exhaustive_engine(net)
    sigs = ["a", "b", "c", "d", "e"]
    for target in ["d", "e"]:
        for src in sigs:
            if src == target:
                continue
            for inv in (False, True):
                cand = Candidate(target=target, kind="OS2", sources=(src,),
                                 inverted=inv)
                by_words = cand.holds_on(eng)
                by_clauses = all(
                    cl.holds_on(eng) for cl in cand.clause_combination()
                )
                assert by_words == by_clauses, cand.describe()


def test_valid_pvcc_gives_permissible_transformation():
    """Exhaustively: every PVCC valid on ALL vectors must yield an
    equivalent circuit once applied (Definition 2 via Theorems 1/2)."""
    net = _chain_net()
    eng = exhaustive_engine(net)
    sigs = [s for s in net.signals()]
    checked = applied = 0
    for target in ["d", "e"]:
        for src in sigs:
            if src == target or src in net.transitive_fanout(target):
                continue
            cand = Candidate(target=target, kind="OS2", sources=(src,))
            checked += 1
            if cand.holds_on(eng):
                work = net.copy()
                apply_candidate(work, cand)
                work.validate()
                assert check_equivalence(net, work), cand.describe()
                applied += 1
    assert checked > 0 and applied > 0


def test_is3_permissible_application():
    """e = d & c: substituting branch f/1 by AND(d, c) is permissible
    (trivially), and by construction so is AND(a-cone rebuilds)."""
    net = _chain_net()
    eng = exhaustive_engine(net)
    from repro.netlist.gatefunc import AND

    cand = Candidate(target=Branch("f", 1), kind="IS3",
                     sources=("d", "c"), form=TwoInputForm(AND, False, False))
    assert cand.holds_on(eng)
    work = net.copy()
    apply_candidate(work, cand)
    assert check_equivalence(net, work)


def test_invalid_candidate_rejected_by_simulation():
    net = _chain_net()
    eng = exhaustive_engine(net)
    cand = Candidate(target="d", kind="OS2", sources=("c",))
    assert not cand.holds_on(eng)
