"""Tests for the implication-graph route to valid clauses."""


import pytest

from repro.clauses.implications import (
    ImplicationGraph, count_implications, negate,
)
from repro.netlist import Netlist, substitute_stem, prune_dangling
from repro.sim import truth_table_of
from repro.verify import check_equivalence


def chain_net():
    net = Netlist("impl")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("d", "AND", ["a", "b"])
    net.add_gate("e", "OR", ["d", "c"])
    net.add_gate("f", "INV", ["e"])
    net.set_pos(["f"])
    return net


def test_direct_gate_implications():
    g = ImplicationGraph(chain_net())
    # AND: d=1 => a=1, b=1; a=0 => d=0
    assert g.implies(("d", 1), ("a", 1))
    assert g.implies(("d", 1), ("b", 1))
    assert g.implies(("a", 0), ("d", 0))
    # OR: e=0 => d=0, c=0
    assert g.implies(("e", 0), ("c", 0))
    # INV equivalence both ways
    assert g.implies(("e", 1), ("f", 0))
    assert g.implies(("f", 0), ("e", 1))


def test_transitive_global_implications():
    g = ImplicationGraph(chain_net())
    # d=1 => e=1 => f=0 : a global implication spanning two gates
    assert g.implies(("d", 1), ("f", 0))
    # contrapositive: f=1 => d=0
    assert g.implies(("f", 1), ("d", 0))
    # and further back: f=1 => e=0 => c=0
    assert g.implies(("f", 1), ("c", 0))


def test_no_false_implications_exhaustive():
    """Soundness: every reported implication holds on the truth table."""
    net = chain_net()
    g = ImplicationGraph(net)
    sigs = list(net.signals())
    # simulate all signals
    from repro.sim import BitSimulator

    sim = BitSimulator(net)
    state = sim.simulate_exhaustive()

    def holds(lit, vec):
        return state.bit(lit[0], vec) == lit[1]

    n = len(net.pis)
    for s1 in sigs:
        for v1 in (0, 1):
            for (s2, v2) in g.implications((s1, v1)):
                for vec in range(1 << n):
                    if holds((s1, v1), vec):
                        assert holds((s2, v2), vec), \
                            f"{s1}={v1} => {s2}={v2} fails on {vec}"


def test_clause_rendering():
    g = ImplicationGraph(chain_net())
    clause = g.clause_for(("d", 1), ("a", 1))
    assert clause.describe() == "(~d + a)"
    clause2 = g.clause_for(("f", 1), ("d", 0))
    assert clause2.describe() == "(~f + ~d)"
    clauses = g.implication_clauses("d")
    assert any(c.describe() == "(~d + a)" for c in clauses)


def test_equivalence_detection_buffers():
    """Chained inverters create literal SCCs: y == x, ny == ~x."""
    net = Netlist("bufs")
    net.add_pi("x")
    net.add_pi("z")
    net.add_gate("nx", "INV", ["x"])
    net.add_gate("y", "INV", ["nx"])
    net.add_gate("o", "AND", ["y", "z"])
    net.set_pos(["o"])
    g = ImplicationGraph(net)
    pairs = g.equivalent_signal_pairs()
    as_dict = {(a, b): inv for a, b, inv in pairs}
    assert as_dict.get(("y", "x")) is False       # y == x
    assert as_dict.get(("nx", "x")) is True or \
        as_dict.get(("y", "nx")) is True          # inverted relation seen
    # applying the equivalence keeps the circuit equivalent
    before = net.copy()
    substitute_stem(net, "y", "x")
    prune_dangling(net, roots=["y"])
    assert check_equivalence(before, net)


def _rebuilt_function_net():
    net = Netlist("eq")
    for pi in "ab":
        net.add_pi(pi)
    net.add_gate("n1", "NOR", ["a", "b"])
    net.add_gate("n2", "INV", ["n1"])      # n2 = a | b
    net.add_gate("m", "OR", ["a", "b"])    # m  = a | b
    net.add_gate("o", "AND", ["n2", "m"])
    net.set_pos(["o"])
    return net


def test_direct_graph_misses_multiantecedent_equivalence():
    """Without learning, m=0 => n2=0 needs the 2-antecedent step
    {a=0, b=0} => n1=1 and is not derivable."""
    g = ImplicationGraph(_rebuilt_function_net(), learn=False)
    pairs = {(a, b) for a, b, inv in g.equivalent_signal_pairs() if not inv}
    assert ("m", "n2") not in pairs and ("n2", "m") not in pairs


def test_static_learning_finds_equivalence():
    """With Schulz-style learning the rebuilt OR is proven equal."""
    g = ImplicationGraph(_rebuilt_function_net(), learn=True)
    pairs = {(a, b) for a, b, inv in g.equivalent_signal_pairs() if not inv}
    assert ("m", "n2") in pairs or ("n2", "m") in pairs


def test_propagate_assumption_forward_backward():
    from repro.clauses.implications import Conflict, propagate_assumption

    net = _rebuilt_function_net()
    forced = propagate_assumption(net, ("m", 0))
    assert forced["a"] == 0 and forced["b"] == 0
    assert forced["n1"] == 1 and forced["n2"] == 0 and forced["o"] == 0
    # backward: o=1 forces everything up
    forced = propagate_assumption(net, ("o", 1))
    assert forced["m"] == 1 and forced["n2"] == 1 and forced["n1"] == 0
    # conflict on an infeasible literal
    net2 = Netlist("c")
    net2.add_pi("a")
    net2.add_gate("na", "INV", ["a"])
    net2.add_gate("z", "AND", ["a", "na"])
    net2.set_pos(["z"])
    with pytest.raises(Conflict):
        propagate_assumption(net2, ("z", 1))


def test_contradiction_detects_constants():
    net = Netlist("const")
    net.add_pi("a")
    net.add_gate("na", "INV", ["a"])
    net.add_gate("z", "AND", ["a", "na"])  # constant 0
    net.add_gate("o", "OR", ["z", "a"])
    net.set_pos(["o"])
    g = ImplicationGraph(net)
    assert g.contradiction(("z", 1))
    assert not g.contradiction(("a", 1))


def test_negate():
    assert negate(("x", 1)) == ("x", 0)
    assert negate(("x", 0)) == ("x", 1)


def test_count_implications_positive():
    assert count_implications(ImplicationGraph(chain_net())) > 10


def test_complex_cell_implications():
    net = Netlist("aoi")
    for pi in "abc":
        net.add_pi(pi)
    net.add_gate("y", "AOI21", ["a", "b", "c"])
    net.set_pos(["y"])
    g = ImplicationGraph(net)
    # y = ~((a&b)|c): y=1 => c=0; c=1 => y=0
    assert g.implies(("y", 1), ("c", 0))
    assert g.implies(("c", 1), ("y", 0))
