"""Span tracer: aggregation, nesting, and the disabled no-op path."""

import time

import pytest

from repro.obs.trace import NULL_SPAN, NULL_TRACER, Tracer, hot_spans


def test_span_aggregates_by_name():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("prove"):
            pass
    with tracer.span("refute"):
        pass
    agg = tracer.aggregate()
    assert agg["prove"]["count"] == 3
    assert agg["refute"]["count"] == 1
    assert agg["prove"]["wall_s"] >= 0.0
    assert agg["prove"]["cpu_s"] >= 0.0


def test_spans_nest_and_attrs_are_accepted():
    tracer = Tracer()
    with tracer.span("outer", key="abc"):
        with tracer.span("inner"):
            time.sleep(0.002)
    agg = tracer.aggregate()
    # The outer span covers the inner one — nesting never loses time.
    assert agg["outer"]["wall_s"] >= agg["inner"]["wall_s"]
    assert agg["inner"]["wall_s"] >= 0.002


def test_disabled_tracer_hands_out_the_shared_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", key=1)
    assert span is NULL_SPAN
    assert NULL_TRACER.span("x") is NULL_SPAN
    with span:
        pass
    assert tracer.aggregate() == {}


def test_null_span_propagates_exceptions():
    with pytest.raises(RuntimeError):
        with NULL_TRACER.span("x"):
            raise RuntimeError("boom")


def test_enabled_span_records_even_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("failing"):
            raise RuntimeError("boom")
    assert tracer.aggregate()["failing"]["count"] == 1


def test_reset_clears_aggregate():
    tracer = Tracer()
    with tracer.span("x"):
        pass
    tracer.reset()
    assert tracer.aggregate() == {}


def test_hot_spans_sorted_by_wall_time_and_truncated():
    agg = {
        f"span{i}": {"count": 1, "wall_s": float(i), "cpu_s": 0.0}
        for i in range(12)
    }
    rows = hot_spans(agg, top=8)
    assert len(rows) == 8
    walls = [w for _, _, w, _ in rows]
    assert walls == sorted(walls, reverse=True)
    assert rows[0][0] == "span11"


def test_hot_spans_ties_break_by_name():
    agg = {
        "b": {"count": 1, "wall_s": 1.0, "cpu_s": 0.0},
        "a": {"count": 1, "wall_s": 1.0, "cpu_s": 0.0},
    }
    assert [r[0] for r in hot_spans(agg)] == ["a", "b"]
