"""Metrics registry: labels, snapshots, and worker-snapshot merging."""

from repro.obs.metrics import (
    DEFAULT_BUCKETS, MetricsRegistry, NULL_INSTRUMENT, NULL_REGISTRY,
    parse_key, rendered_key,
)


def test_counter_labels_create_distinct_instruments():
    reg = MetricsRegistry()
    reg.counter("verdicts", verdict="valid").inc()
    reg.counter("verdicts", verdict="valid").inc(2)
    reg.counter("verdicts", verdict="invalid").inc()
    snap = reg.snapshot()
    assert snap["counters"]["verdicts{verdict=valid}"] == 3
    assert snap["counters"]["verdicts{verdict=invalid}"] == 1


def test_gauge_and_histogram_snapshot():
    reg = MetricsRegistry()
    reg.gauge("queue_depth").set(7)
    hist = reg.histogram("latency", backend="sat")
    for v in (0.0004, 0.003, 42.0):
        hist.observe(v)
    snap = reg.snapshot()
    assert snap["gauges"]["queue_depth"] == 7
    h = snap["histograms"]["latency{backend=sat}"]
    assert h["count"] == 3
    assert h["min"] == 0.0004 and h["max"] == 42.0
    assert h["counts"][0] == 1          # 0.0004 <= first bucket bound
    assert h["counts"][-1] == 1         # 42.0 overflows every bound
    assert sum(h["counts"]) == h["count"]


def test_rendered_key_roundtrip():
    key = rendered_key("m", b="2", a="1")
    assert key == "m{a=1,b=2}"          # labels sorted
    assert parse_key(key) == ("m", (("a", "1"), ("b", "2")))
    assert parse_key("bare") == ("bare", ())


def test_merge_snapshot_simulated_workers():
    # Each proof-broker worker process builds a local registry and ships
    # its snapshot back through the pool; the parent folds them in.
    parent = MetricsRegistry()
    parent.counter("proof_attempts", backend="sat").inc(5)
    parent.histogram("proof_seconds", backend="sat").observe(0.01)

    worker_snaps = []
    for latencies in ((0.002, 0.02), (0.5,)):
        w = MetricsRegistry()
        w.counter("proof_attempts", backend="sat").inc(len(latencies))
        w.gauge("last_batch").set(len(latencies))
        for v in latencies:
            w.histogram("proof_seconds", backend="sat").observe(v)
        worker_snaps.append(w.snapshot())

    for snap in worker_snaps:
        parent.merge_snapshot(snap)

    snap = parent.snapshot()
    assert snap["counters"]["proof_attempts{backend=sat}"] == 8
    assert snap["gauges"]["last_batch"] == 1   # last write wins
    h = snap["histograms"]["proof_seconds{backend=sat}"]
    assert h["count"] == 4
    assert h["min"] == 0.002 and h["max"] == 0.5
    assert abs(h["sum"] - (0.01 + 0.002 + 0.02 + 0.5)) < 1e-12
    assert sum(h["counts"]) == h["count"]


def test_merge_snapshot_mismatched_buckets_keeps_extremes():
    parent = MetricsRegistry()
    parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    other = MetricsRegistry()
    other.histogram("h", buckets=(10.0,)).observe(3.0)
    other.histogram("h", buckets=(10.0,)).observe(7.0)
    # The existing instrument keeps its bounds, so the incoming data
    # cannot merge bucket-wise; the fallback re-observes its min/max.
    parent.merge_snapshot(other.snapshot())
    snap = parent.snapshot()
    assert snap["histograms"]["h"]["count"] == 3
    assert snap["histograms"]["h"]["max"] == 7.0


def test_merge_snapshot_none_and_empty_are_noops():
    reg = MetricsRegistry()
    reg.merge_snapshot(None)
    reg.merge_snapshot({})
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


def test_disabled_registry_is_a_noop():
    assert not NULL_REGISTRY.enabled
    assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
    assert NULL_REGISTRY.gauge("x") is NULL_INSTRUMENT
    assert NULL_REGISTRY.histogram("x") is NULL_INSTRUMENT
    NULL_REGISTRY.counter("x", a=1).inc()
    NULL_REGISTRY.histogram("x").observe(1.0)
    NULL_REGISTRY.merge_snapshot({"counters": {"x": 5}})
    snap = NULL_REGISTRY.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_counter_value_accessor():
    reg = MetricsRegistry()
    assert reg.counter_value("missing") == 0
    reg.counter("hits", site="a").inc(4)
    assert reg.counter_value("hits", site="a") == 4
    assert reg.counter_value("hits", site="b") == 0


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
