"""Run journal: schema validation, JSONL round-trip, volatile strip."""

import json

import pytest

from repro.obs.journal import (
    NULL_JOURNAL, JournalSchemaError, RunJournal, VOLATILE_FIELDS,
    load_journal, strip_volatile, validate_journal, validate_record,
)


def _write_demo(journal):
    journal.record("run_begin", circuit="c", gates=10, seed=0, n_words=8)
    journal.record("phase_begin", phase="delay", round=1)
    journal.record("trial", phase="delay", kind="OS2", desc="g1<-g2")
    journal.record("refute", desc="g1<-g2", refuted=False)
    journal.record("verdict", obligation="ab12", verdict="valid",
                   cache_hit=False, wall_ms=3.5)
    journal.record("commit", phase="delay", kind="OS2", desc="g1<-g2",
                   delay_after=4.2, area_after=17.0)
    journal.record("reject", desc="g3<-g4", reason="timing")
    journal.record("run_end", delay_after=4.2, area_after=17.0,
                   mods=1, rounds=1)


def test_journal_roundtrip_through_jsonl(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(str(path))
    _write_demo(journal)
    journal.close()

    loaded = load_journal(str(path))
    validate_journal(loaded)
    assert loaded == journal.records
    # Disk form is one sorted-keys JSON object per line.
    lines = path.read_text().splitlines()
    assert len(lines) == len(loaded)
    first = json.loads(lines[0])
    assert list(first) == sorted(first)


def test_seq_is_monotonic_from_zero():
    journal = RunJournal()
    _write_demo(journal)
    assert [r["seq"] for r in journal.records] == list(range(8))
    validate_journal(journal.records)


def test_records_carry_no_timestamps():
    journal = RunJournal()
    _write_demo(journal)
    for rec in journal.records:
        for field in rec:
            assert field not in ("time", "timestamp", "ts", "when")


def test_unknown_record_type_rejected():
    journal = RunJournal()
    with pytest.raises(JournalSchemaError):
        journal.record("made_up", foo=1)
    assert journal.records == []


def test_missing_required_field_rejected():
    with pytest.raises(JournalSchemaError, match="missing"):
        validate_record({"seq": 0, "type": "trial", "phase": "delay"})


def test_bad_seq_rejected():
    with pytest.raises(JournalSchemaError, match="seq"):
        validate_record({"seq": -1, "type": "reject",
                         "desc": "d", "reason": "r"})
    with pytest.raises(JournalSchemaError, match="seq gap"):
        validate_journal([
            {"seq": 0, "type": "reject", "desc": "d", "reason": "r"},
            {"seq": 5, "type": "reject", "desc": "d", "reason": "r"},
        ])


def test_strip_volatile_removes_only_volatile_fields():
    journal = RunJournal()
    _write_demo(journal)
    stripped = strip_volatile(journal.records)
    for rec in stripped:
        assert not VOLATILE_FIELDS & rec.keys()
    # Nothing else is lost, and the originals are untouched.
    verdict = journal.records[4]
    assert "cache_hit" in verdict and "wall_ms" in verdict
    assert stripped[4] == {k: v for k, v in verdict.items()
                           if k not in VOLATILE_FIELDS}


def test_null_journal_is_inert():
    assert not NULL_JOURNAL.enabled
    assert NULL_JOURNAL.record("run_end", delay_after=1.0,
                               area_after=1.0, mods=0, rounds=0) is None
    assert NULL_JOURNAL.records == []
    NULL_JOURNAL.close()


def test_journal_context_manager_closes_file(tmp_path):
    path = tmp_path / "cm.jsonl"
    with RunJournal(str(path)) as journal:
        journal.record("phase_begin", phase="delay", round=1)
    assert journal._fh is None
    assert load_journal(str(path)) == journal.records
