"""Run journal: schema validation, JSONL round-trip, volatile strip."""

import json

import pytest

from repro.obs.journal import (
    NULL_JOURNAL, JournalSchemaError, RunJournal, VOLATILE_FIELDS,
    load_journal, strip_volatile, validate_journal, validate_record,
)


def _write_demo(journal):
    journal.record("run_begin", circuit="c", gates=10, seed=0, n_words=8)
    journal.record("phase_begin", phase="delay", round=1)
    journal.record("trial", phase="delay", kind="OS2", desc="g1<-g2")
    journal.record("refute", desc="g1<-g2", refuted=False)
    journal.record("verdict", obligation="ab12", verdict="valid",
                   cache_hit=False, wall_ms=3.5)
    journal.record("commit", phase="delay", kind="OS2", desc="g1<-g2",
                   delay_after=4.2, area_after=17.0)
    journal.record("reject", desc="g3<-g4", reason="timing")
    journal.record("run_end", delay_after=4.2, area_after=17.0,
                   mods=1, rounds=1)


def test_journal_roundtrip_through_jsonl(tmp_path):
    path = tmp_path / "run.jsonl"
    journal = RunJournal(str(path))
    _write_demo(journal)
    journal.close()

    loaded = load_journal(str(path))
    validate_journal(loaded)
    assert loaded == journal.records
    # Disk form is one sorted-keys JSON object per line.
    lines = path.read_text().splitlines()
    assert len(lines) == len(loaded)
    first = json.loads(lines[0])
    assert list(first) == sorted(first)


def test_seq_is_monotonic_from_zero():
    journal = RunJournal()
    _write_demo(journal)
    assert [r["seq"] for r in journal.records] == list(range(8))
    validate_journal(journal.records)


def test_records_carry_no_timestamps():
    journal = RunJournal()
    _write_demo(journal)
    for rec in journal.records:
        for field in rec:
            assert field not in ("time", "timestamp", "ts", "when")


def test_unknown_record_type_rejected():
    journal = RunJournal()
    with pytest.raises(JournalSchemaError):
        journal.record("made_up", foo=1)
    assert journal.records == []


def test_missing_required_field_rejected():
    with pytest.raises(JournalSchemaError, match="missing"):
        validate_record({"seq": 0, "type": "trial", "phase": "delay"})


def test_bad_seq_rejected():
    with pytest.raises(JournalSchemaError, match="seq"):
        validate_record({"seq": -1, "type": "reject",
                         "desc": "d", "reason": "r"})
    with pytest.raises(JournalSchemaError, match="seq gap"):
        validate_journal([
            {"seq": 0, "type": "reject", "desc": "d", "reason": "r"},
            {"seq": 5, "type": "reject", "desc": "d", "reason": "r"},
        ])


def test_strip_volatile_removes_only_volatile_fields():
    journal = RunJournal()
    _write_demo(journal)
    stripped = strip_volatile(journal.records)
    for rec in stripped:
        assert not VOLATILE_FIELDS & rec.keys()
    # Nothing else is lost, and the originals are untouched.
    verdict = journal.records[4]
    assert "cache_hit" in verdict and "wall_ms" in verdict
    assert stripped[4] == {k: v for k, v in verdict.items()
                           if k not in VOLATILE_FIELDS}


def test_null_journal_is_inert():
    assert not NULL_JOURNAL.enabled
    assert NULL_JOURNAL.record("run_end", delay_after=1.0,
                               area_after=1.0, mods=0, rounds=0) is None
    assert NULL_JOURNAL.records == []
    NULL_JOURNAL.close()


def test_journal_context_manager_closes_file(tmp_path):
    path = tmp_path / "cm.jsonl"
    with RunJournal(str(path)) as journal:
        journal.record("phase_begin", phase="delay", round=1)
    assert journal._fh is None
    assert load_journal(str(path)) == journal.records


# ----------------------------------------------------------------------
# crash tolerance: torn tails and the fault-injection hook
# ----------------------------------------------------------------------
def test_tolerant_load_accepts_torn_final_line(tmp_path):
    from repro.obs.journal import load_journal_tolerant

    path = tmp_path / "torn.jsonl"
    journal = RunJournal(str(path))
    _write_demo(journal)
    journal.close()
    intact = load_journal(str(path))

    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"seq": 99, "type": "tri')   # killed mid-write

    with pytest.raises(ValueError):
        load_journal(str(path))                # strict loader refuses
    records, dropped = load_journal_tolerant(str(path))
    assert records == intact
    assert dropped == 1


def test_tolerant_load_clean_file_drops_nothing(tmp_path):
    from repro.obs.journal import load_journal_tolerant

    path = tmp_path / "clean.jsonl"
    journal = RunJournal(str(path))
    _write_demo(journal)
    journal.close()
    records, dropped = load_journal_tolerant(str(path))
    assert records == journal.records
    assert dropped == 0


def test_tolerant_load_rejects_mid_file_corruption(tmp_path):
    from repro.obs.journal import load_journal_tolerant

    path = tmp_path / "bad.jsonl"
    path.write_text(
        '{"seq": 0, "type": "run_begin", "circuit": "c", "gates": 1, '
        '"seed": 0, "n_words": 8}\n'
        "garbage in the middle\n"
        '{"seq": 1, "type": "phase_begin", "phase": "delay", '
        '"round": 1}\n'
    )
    with pytest.raises(ValueError, match="line 2"):
        load_journal_tolerant(str(path))


def test_crash_hook_parsing():
    from repro.obs.journal import _parse_crash_hook

    assert _parse_crash_hook(None) is None
    assert _parse_crash_hook("") is None
    assert _parse_crash_hook("commit:3") == ("commit", 3, False)
    assert _parse_crash_hook("commit:2:partial") == ("commit", 2, True)
    assert _parse_crash_hook("nonsense") is None
    assert _parse_crash_hook("commit:zero") is None


def test_crash_hook_sigkills_after_nth_record(tmp_path):
    import multiprocessing
    import os as _os

    from repro.obs.journal import load_journal_tolerant

    path = str(tmp_path / "crash.jsonl")

    def victim():
        _os.environ["REPRO_CRASH_AFTER"] = "commit:1:partial"
        journal = RunJournal(path)
        _write_demo(journal)          # dies at the first commit
        raise AssertionError("unreachable")  # pragma: no cover

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=victim)
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == -9        # SIGKILL, not a clean exit

    records, dropped = load_journal_tolerant(path)
    assert dropped == 1               # the injected torn line
    assert records[-1]["type"] == "commit"
