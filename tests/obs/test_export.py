"""BENCH export: entry schemas and the keyed append/merge contract."""

import json

import pytest

from repro.obs.export import (
    ExportSchemaError, append_bench, bench_entry, funnel_counts, git_sha,
    load_bench, validate_bench_entry, validate_gdo_entry,
)


def _gdo_entry(key="abc123", circuit="C880"):
    return {
        "key": key, "circuit": circuit,
        "delay_before": 10.0, "delay_after": 8.5,
        "area_before": 100.0, "area_after": 99.0,
        "mods": 12, "rounds": 2, "seconds": 3.25,
        "phase_seconds": {"delay": 2.0, "area": 1.25},
        "hot_spans": [{"name": "gdo.prove", "count": 40, "wall_s": 1.5}],
        "broker": {"dispatched": 40, "cache_hits": 5,
                   "cache_misses": 35, "hit_rate": 0.125},
        "funnel": {"generated": 200, "static_proved": 3,
                   "static_refuted": 1, "to_bpfs": 196,
                   "bpfs_survived": 60, "proved": 40, "committed": 12},
        "flat": {"hits": 150, "fallbacks": 1},
    }


def test_git_sha_never_fails(tmp_path):
    # Outside any checkout it must still return a usable key.
    assert isinstance(git_sha(str(tmp_path)), str)
    assert git_sha(str(tmp_path))


def test_bench_entry_requires_key():
    entry = bench_entry(key="deadbeef", circuit="C432", seconds=1.0)
    validate_bench_entry(entry)
    with pytest.raises(ExportSchemaError):
        validate_bench_entry({"circuit": "C432"})
    with pytest.raises(ExportSchemaError):
        validate_bench_entry({"key": ""})


def test_gdo_entry_schema_enforced():
    validate_gdo_entry(_gdo_entry())
    for missing in ("circuit", "broker", "funnel", "hot_spans", "flat"):
        bad = _gdo_entry()
        del bad[missing]
        with pytest.raises(ExportSchemaError):
            validate_gdo_entry(bad)
    bad = _gdo_entry()
    bad["funnel"].pop("proved")
    with pytest.raises(ExportSchemaError):
        validate_gdo_entry(bad)
    bad = _gdo_entry()
    bad["flat"].pop("fallbacks")
    with pytest.raises(ExportSchemaError, match="flat"):
        validate_gdo_entry(bad)
    bad = _gdo_entry()
    bad["hot_spans"] = [{"count": 1}]
    with pytest.raises(ExportSchemaError, match="hot span"):
        validate_gdo_entry(bad)
    bad = _gdo_entry()
    bad["mods"] = "twelve"
    with pytest.raises(ExportSchemaError, match="mods"):
        validate_gdo_entry(bad)


def test_append_bench_appends_and_merges(tmp_path):
    path = str(tmp_path / "BENCH_x.json")
    append_bench(path, bench_entry(key="sha1", circuit="C432", seconds=1.0))
    append_bench(path, bench_entry(key="sha1", circuit="C880", seconds=2.0))
    append_bench(path, bench_entry(key="sha2", circuit="C432", seconds=3.0))
    assert len(load_bench(path)) == 3

    # Same (key, circuit) replaces its previous entry in place.
    append_bench(path, bench_entry(key="sha1", circuit="C432", seconds=9.0))
    entries = load_bench(path)
    assert len(entries) == 3
    by_key = {(e["key"], e["circuit"]): e for e in entries}
    assert by_key[("sha1", "C432")]["seconds"] == 9.0
    assert by_key[("sha1", "C880")]["seconds"] == 2.0

    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    assert set(data) == {"entries"}


def test_load_bench_tolerates_absent_and_corrupt_files(tmp_path):
    assert load_bench(str(tmp_path / "missing.json")) == []
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert load_bench(str(bad)) == []
    bare = tmp_path / "bare.json"
    bare.write_text(json.dumps([{"key": "a"}, "junk"]))
    assert load_bench(str(bare)) == [{"key": "a"}]


def test_funnel_counts_none_snapshot_is_zeros():
    assert funnel_counts(None) == {
        "generated": 0, "static_proved": 0, "static_refuted": 0,
        "to_bpfs": 0, "bpfs_survived": 0, "proved": 0, "committed": 0,
    }
