"""Trial-edit round-trip property: apply -> undo leaves the netlist
checker-clean and structurally identical.

This is the contract ``GdoConfig.check="paranoid"`` enforces at runtime;
here it is exercised directly over many candidate substitutions on the
C432/C880 circuits, including the failure path (a rejected candidate
must leave the netlist untouched).
"""

import pytest

from repro.analysis import check_netlist
from repro.circuits.registry import build
from repro.clauses.pvcc import Candidate
from repro.library import mcnc_like
from repro.netlist.edit import prune_dangling, structural_signature
from repro.opt import GdoConfig, gdo_optimize
from repro.transform.substitution import (
    TransformError, apply_candidate_inplace,
)


@pytest.fixture(scope="module")
def lib():
    return mcnc_like()


def _circuit(name, lib):
    net = build(name, small=True)
    prune_dangling(net)
    lib.rebind(net)
    return net


def _os2_candidates(net, limit=40):
    """Structurally plausible OS2 candidates (not permissibility-checked:
    the round-trip property must hold for *any* trial the optimizer may
    attempt, permissible or not)."""
    sigs = sorted(net.gates)
    out = []
    for i, tgt in enumerate(sigs):
        src = sigs[(i * 7 + 3) % len(sigs)]
        if src == tgt:
            continue
        out.append(Candidate(target=tgt, kind="OS2", sources=(src,)))
        out.append(Candidate(target=tgt, kind="OS2", sources=(src,),
                             inverted=True))
        if len(out) >= limit:
            break
    return out


def _is2_candidates(net, limit=20):
    fan = net.fanout_map()
    sigs = sorted(net.gates)
    out = []
    for i, stem in enumerate(sigs):
        branches = fan.get(stem, [])
        if len(branches) < 2:
            continue  # IS on a single-fanout branch is an OS move
        src = sigs[(i * 5 + 1) % len(sigs)]
        if src == stem:
            continue
        out.append(Candidate(target=branches[0], kind="IS2",
                             sources=(src,)))
        if len(out) >= limit:
            break
    return out


def _cyclic_candidates(net, limit=5):
    """Candidates whose source lies in the target's fanout cone — the
    transform must reject them (cycle) and leave the net untouched."""
    out = []
    for tgt in sorted(net.gates):
        cone = net.transitive_fanout(tgt, include_self=False)
        downstream = sorted(s for s in cone if s != tgt)
        if not downstream:
            continue
        out.append(Candidate(target=tgt, kind="OS2",
                             sources=(downstream[-1],)))
        if len(out) >= limit:
            break
    return out


@pytest.mark.parametrize("name", ["C432", "C880"])
def test_trial_undo_roundtrip_is_clean_and_identical(name, lib):
    net = _circuit(name, lib)
    baseline = structural_signature(net)
    assert check_netlist(net, lib).ok()

    applied = rejected = 0
    for cand in (_os2_candidates(net) + _is2_candidates(net)
                 + _cyclic_candidates(net)):
        try:
            edit = apply_candidate_inplace(net, cand, lib)
        except TransformError:
            rejected += 1
            assert structural_signature(net) == baseline, (
                f"rejected candidate {cand.describe()} mutated the net")
            continue
        applied += 1
        # Mid-trial: the scoped dirty-region check must hold.
        scope = (edit.dirty | edit.removed) & set(net.gates)
        assert check_netlist(net, lib, scope=scope).ok(), cand.describe()
        edit.undo(net)
        assert structural_signature(net) == baseline, (
            f"undo of {cand.describe()} did not round-trip")
    assert applied > 0, "no candidate applied; round-trip test is vacuous"
    assert rejected > 0, "no candidate rejected; failure path untested"
    # After the full battery: still checker-clean in full mode.
    report = check_netlist(net, lib)
    assert report.ok() and not report.warnings, report.format()


def test_paranoid_gdo_run_is_checker_clean(lib):
    """A whole GDO run on C880 with check="paranoid" raises nothing:
    every trial, undo, and commit leaves a clean netlist."""
    net = _circuit("C880", lib)
    cfg = GdoConfig(
        n_words=8, verify_final=False, max_rounds=2,
        max_passes_per_phase=6, max_trials_per_pass=48,
        max_proofs_per_pass=32, check="paranoid",
    )
    result = gdo_optimize(net, lib, cfg)
    assert result.stats.checks_run > 0
    report = check_netlist(result.net, lib)
    assert report.ok(), report.format()


def test_check_sample_thins_paranoid_checks(lib):
    net = _circuit("C880", lib)
    cfg = GdoConfig(
        n_words=8, verify_final=False, max_rounds=1,
        max_passes_per_phase=4, max_trials_per_pass=32,
        max_proofs_per_pass=16, check="paranoid", check_sample=4,
    )
    sampled = gdo_optimize(net.copy(), lib, cfg)
    cfg_full = GdoConfig(
        n_words=8, verify_final=False, max_rounds=1,
        max_passes_per_phase=4, max_trials_per_pass=32,
        max_proofs_per_pass=16, check="paranoid",
    )
    full = gdo_optimize(net.copy(), lib, cfg_full)
    assert 0 < sampled.stats.checks_run < full.stats.checks_run


def test_check_off_runs_no_checks(lib):
    net = _circuit("C432", lib)
    cfg = GdoConfig(
        n_words=8, verify_final=False, max_rounds=1,
        max_passes_per_phase=4, max_trials_per_pass=32,
        max_proofs_per_pass=16,
    )
    result = gdo_optimize(net, lib, cfg)
    assert result.stats.checks_run == 0
